//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros — backed by a deliberately small timing loop: each benchmark body
//! is warmed up once and then timed over a handful of iterations, printing
//! `<group>/<id>: <mean>` lines. No statistics, no HTML reports; the point
//! is that `cargo bench` compiles and produces comparable wall-clock
//! numbers without crates.io access.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after one warm-up call).
const TIMED_ITERS: u32 = 5;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Times a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&id.to_string(), &mut f);
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API parity; the stand-in ignores sample sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the stand-in ignores throughput metadata.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API parity; the stand-in ignores measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), &mut f);
    }

    /// Times `f` with an input reference under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id), &mut |b: &mut Bencher| {
            f(b, input)
        });
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / b.iters
    };
    println!("bench {label}: {mean:?}/iter ({} iters)", b.iters);
}

/// Passed to benchmark bodies; [`Bencher::iter`] runs and times the closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `f` once warm, then `TIMED_ITERS` (5) timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += TIMED_ITERS;
    }
}

/// Identifies one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput metadata (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a benchmark group entry point, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("fixed", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }

    crate::criterion_group!(demo_group, sample_bench);

    #[test]
    fn harness_runs() {
        demo_group();
    }
}
