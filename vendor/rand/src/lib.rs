//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of `rand` 0.9 the workspace uses: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits, integer/float range
//! sampling (`random_range`, `random`), and Fisher–Yates [`SliceRandom`].
//!
//! Distributions are uniform (Lemire multiply-shift reduction for integer
//! ranges, 53-bit mantissa fill for `f64`), and everything is deterministic
//! given the underlying generator — which is all the workspace's seeded
//! generator families require.

#![forbid(unsafe_code)]

/// Core generator interface: a source of random 32/64-bit words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, most importantly [`SeedableRng::seed_from_u64`].
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (as upstream
    /// `rand` does).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, byte) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the whole value domain via
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Uniform in [0, 1): 53 mantissa bits.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's multiply-shift reduction.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(i8, i16, i32, i64, isize);

/// The user-facing generator extension trait.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its full domain (`f64` ∈ [0, 1)).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling (Fisher–Yates), as in `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element (`None` on an empty slice).
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// Seedable generators module (upstream parity).
pub mod rngs {
    /// A small, fast xoshiro256** generator as the stand-in `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Everything a caller usually wants.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.random_range(3..=9);
            assert!((3..=9).contains(&x));
            let y: usize = r.random_range(0..5);
            assert!(y < 5);
            let z: i64 = r.random_range(-4..=4);
            assert!((-4..=4).contains(&z));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
