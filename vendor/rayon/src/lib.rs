//! Offline stand-in for `rayon`: the `par_iter`/`into_par_iter` entry points
//! backed by a *real* parallel scheduler with a **persistent worker pool**.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the rayon API the workspace uses on top of `std::sync` only
//! (no `unsafe`). Earlier revisions spawned scoped OS threads for every
//! parallel operation; this revision keeps a process-wide pool of
//! **long-lived parked workers** that pick up chunked jobs from each
//! operation's atomic-cursor shared queue, so a parallel call costs a few
//! queue pushes and condvar wakes instead of thread spawns — the difference
//! is tens of microseconds per call, which dominates tiny batches.
//!
//! ## Architecture
//!
//! * **Workers are global and lazy.** The first operation that wants `k`
//!   helper threads grows the pool to `k` (capped at [`MAX_WORKERS`]);
//!   workers park on a condvar between jobs and are never torn down. The
//!   per-*operation* thread budget is still honoured exactly: an operation
//!   asking for `t` threads enqueues `t - 1` helper tickets, no matter how
//!   many workers exist.
//! * **Operations stay chunked.** Each operation owns its shared state —
//!   the deterministic chunk queue, an atomic steal cursor, per-chunk
//!   result slots, and a completion latch. Helper tickets are `'static` closures
//!   holding an `Arc` of that state — which is why the public API requires
//!   `'static` task data (safe Rust cannot hand borrowed stack data to a
//!   persistent thread; callers share state via `Arc` instead). The calling
//!   thread always participates in the steal loop, so an operation
//!   completes even if every worker is busy elsewhere.
//! * **Panics propagate.** A panic inside a task is caught on the worker,
//!   carried through the operation state, and resumed on the calling
//!   thread, mirroring `std::thread::scope` semantics.
//!
//! ## Determinism guarantees
//!
//! The engine's batch reports are required to be bit-identical across thread
//! counts, so the scheduler is deterministic by construction:
//!
//! * **Chunk boundaries depend only on the input length** (never on the
//!   thread count, the worker count, or timing), so the shape of every
//!   reduction tree is fixed.
//! * `collect`, `map`, `filter`, and `filter_map` are **order-preserving**:
//!   each chunk writes into its own result slot and the slots are
//!   concatenated in chunk order.
//! * [`ParIter::fold`] / [`ParIter::reduce`] fold each chunk sequentially
//!   (left to right) and then combine the per-chunk accumulators in chunk
//!   order — the same tree regardless of how many threads executed it, so
//!   even non-associative floating-point rounding is reproducible.
//!
//! Thread-count selection: `ThreadPoolBuilder::build_global` >
//! `MSRS_THREADS` environment variable > `std::thread::available_parallelism`.
//! [`ThreadPool::install`] overrides it for one call tree, and tasks running
//! *inside* a parallel operation default to sequential nested execution so
//! workers are never oversubscribed (and nested node-budgeted searches stay
//! deterministic).
//!
//! ## Observability
//!
//! The pool records its events — worker spawns, condvar parks, task
//! steal-backs, idle reclaims, operations, helper jobs, caller chunks —
//! straight into the process-global `msrs_telemetry` registry; per-worker
//! chunk counts stay in the worker slots and are exported to telemetry
//! snapshots through a registered source. [`pool_stats`] snapshots it all
//! as one [`PoolStats`].

#![forbid(unsafe_code)]

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

// ---------------------------------------------------------------------------
// Thread-count plumbing
// ---------------------------------------------------------------------------

/// Global default thread count, set once by [`ThreadPoolBuilder::build_global`].
static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`] and by the
    /// scheduler itself (workers run nested parallel ops sequentially).
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The environment-derived default: `MSRS_THREADS` if set and positive,
/// else the available parallelism.
fn env_default_threads() -> usize {
    std::env::var("MSRS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn default_threads() -> usize {
    *GLOBAL_THREADS.get_or_init(env_default_threads)
}

/// The number of threads the *current* context parallelizes over: an
/// [`install`](ThreadPool::install)ed pool's size, else the global default.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS
        .with(Cell::get)
        .unwrap_or_else(default_threads)
}

/// Runs `op` with the calling thread's thread-count override set to `n`,
/// restoring the previous value afterwards (panic-safe via a drop guard).
fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            CURRENT_THREADS.with(|c| c.set(prev));
        }
    }
    let _guard = Restore(CURRENT_THREADS.with(|c| c.replace(Some(n))));
    op()
}

/// Locks a mutex, ignoring poison: every panic that can occur while a pool
/// lock is held is already routed through the operation's panic slot, so a
/// poisoned flag carries no extra information here.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder
// ---------------------------------------------------------------------------

/// Error returned by [`ThreadPoolBuilder::build_global`] when a global pool
/// was already installed.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    reason: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.reason)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures a [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker-thread count; `0` (the default) means "use the
    /// environment default" (`MSRS_THREADS` or the available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle with this configuration.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }

    /// Installs this configuration as the process-wide default. Errors if a
    /// global pool (or any parallel op that latched the default) exists.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            env_default_threads()
        } else {
            self.num_threads
        };
        GLOBAL_THREADS
            .set(threads)
            .map_err(|_| ThreadPoolBuildError {
                reason: "the global thread pool has already been initialized",
            })
    }
}

/// A handle carrying a thread count. The worker threads themselves are
/// process-global and shared (see the crate docs); the handle only decides
/// how many of them one call tree may use, so it is trivially cheap,
/// `Send + Sync`, and never shuts anything down.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count governing every parallel
    /// operation in its call tree (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        with_threads(self.threads, op)
    }
}

// ---------------------------------------------------------------------------
// The persistent worker pool
// ---------------------------------------------------------------------------

/// Hard cap on spawned workers — an operation never needs more helpers than
/// its thread budget, and budgets are small multiples of the core count.
pub const MAX_WORKERS: usize = 256;

/// A helper ticket: a boxed closure holding an `Arc` of one operation's
/// shared state (or a one-shot `join`/`scope` task).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the job queue's producers and the parked workers.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when jobs arrive; workers park here between jobs.
    available: Condvar,
}

/// Bookkeeping of one spawned worker thread. Slots are never removed (their
/// chunk counters are cumulative per-worker statistics); a reclaimed
/// worker's slot merely flips `alive` off, and a later spawn appends a
/// fresh slot.
struct WorkerSlot {
    chunks: AtomicU64,
    alive: std::sync::atomic::AtomicBool,
}

/// The process-wide persistent pool.
///
/// Scalar event counters (ops, helper jobs, caller chunks, spawns, parks,
/// steal-backs, reclaims) live in the process-global `msrs_telemetry`
/// registry — the pool is itself process-global, so the registry is their
/// natural home and [`pool_stats`] reads them back from there. Per-worker
/// chunk attribution stays in the dynamically grown [`WorkerSlot`] list and
/// is exported to telemetry snapshots via a registered source function.
struct Pool {
    shared: Arc<PoolShared>,
    /// One slot per worker *spawned so far* (alive or reclaimed).
    workers: Mutex<Vec<Arc<WorkerSlot>>>,
    /// Idle timeout in milliseconds; `0` disables reclamation (workers
    /// park forever, the pre-reclamation behaviour). Initialized from the
    /// `MSRS_POOL_IDLE_MS` environment variable, overridable at runtime via
    /// [`set_pool_idle_timeout`].
    idle_timeout_ms: AtomicU64,
}

/// The `MSRS_POOL_IDLE_MS` default: unset, empty, unparsable, or `0` all
/// mean "never reclaim".
fn env_idle_timeout_ms() -> u64 {
    std::env::var("MSRS_POOL_IDLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        // Telemetry snapshots carry per-worker chunk counts; the registry
        // cannot preallocate slots for dynamically spawned workers, so it
        // pulls the vector through this function pointer at snapshot time.
        msrs_telemetry::set_pool_worker_chunks_source(worker_chunks_vec);
        Pool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            idle_timeout_ms: AtomicU64::new(env_idle_timeout_ms()),
        }
    })
}

/// Cumulative chunk counts per spawned worker, in spawn order (the
/// per-worker source registered with `msrs_telemetry`).
fn worker_chunks_vec() -> Vec<u64> {
    lock(&pool().workers)
        .iter()
        .map(|s| s.chunks.load(Ordering::Relaxed))
        .collect()
}

/// Sets (or, with `None`, disables) the idle-worker reclamation timeout at
/// runtime: a worker that stays parked with an empty queue for this long
/// exits, and the pool respawns workers lazily on the next operation that
/// wants them. Defaults to the `MSRS_POOL_IDLE_MS` environment variable
/// (unset/`0` = never reclaim). A zero-duration timeout is clamped to 1 ms.
pub fn set_pool_idle_timeout(timeout: Option<std::time::Duration>) {
    let ms = timeout.map_or(0, |d| (d.as_millis() as u64).max(1));
    pool().idle_timeout_ms.store(ms, Ordering::Relaxed);
    // Wake parked workers so a newly shortened timeout takes effect without
    // waiting out a previous (possibly infinite) park.
    pool().shared.available.notify_all();
}

thread_local! {
    /// Set once per worker thread: its slot. `None` on every non-worker
    /// thread, whose chunks are counted in `caller_chunks`.
    static WORKER_SLOT: RefCell<Option<Arc<WorkerSlot>>> = const { RefCell::new(None) };
}

/// Records one executed chunk against the current thread's counter.
fn note_chunk() {
    WORKER_SLOT.with(|slot| match &*slot.borrow() {
        Some(s) => {
            s.chunks.fetch_add(1, Ordering::Relaxed);
        }
        None => {
            msrs_telemetry::registry().pool_caller_chunks_total.inc();
        }
    });
}

fn worker_main(shared: Arc<PoolShared>, slot: Arc<WorkerSlot>) {
    WORKER_SLOT.with(|s| *s.borrow_mut() = Some(Arc::clone(&slot)));
    loop {
        // `None` = the idle timeout fired with an empty queue: reclaim.
        let job: Option<Job> = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                // Each condvar wait (including waits resumed after a
                // spurious wakeup) is one park event.
                msrs_telemetry::registry().pool_parks_total.inc();
                let timeout_ms = pool().idle_timeout_ms.load(Ordering::Relaxed);
                if timeout_ms == 0 {
                    queue = shared
                        .available
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                } else {
                    let (guard, result) = shared
                        .available
                        .wait_timeout(queue, std::time::Duration::from_millis(timeout_ms))
                        .unwrap_or_else(PoisonError::into_inner);
                    queue = guard;
                    if result.timed_out() && queue.is_empty() {
                        break None;
                    }
                }
            }
        };
        let Some(job) = job else {
            // Exit after releasing the queue lock. A submit racing this
            // store may briefly over-count alive workers; its tickets are
            // drained by the next (lazily respawned) worker, and every
            // operation completes regardless because the calling thread
            // always participates in the steal loop.
            slot.alive.store(false, Ordering::Release);
            let reg = msrs_telemetry::registry();
            reg.pool_reclaims_total.inc();
            reg.pool_workers_alive.sub(1);
            return;
        };
        msrs_telemetry::registry().pool_helper_jobs_total.inc();
        // Jobs route task panics through their operation's panic slot, so a
        // payload ever reaching this frame would be a scheduler bug; either
        // way the worker survives and keeps serving.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

impl Pool {
    /// Grows the pool so at least `want` workers are **alive** (up to
    /// [`MAX_WORKERS`]); returns how many alive workers exist afterwards.
    /// Reclaimed workers respawn lazily here. Spawn failures degrade
    /// gracefully — submitted work is still completed by the calling
    /// thread's steal loop.
    fn ensure_workers(&self, want: usize) -> usize {
        let mut workers = lock(&self.workers);
        let want = want.min(MAX_WORKERS);
        let mut alive = workers
            .iter()
            .filter(|s| s.alive.load(Ordering::Acquire))
            .count();
        while alive < want {
            let slot = Arc::new(WorkerSlot {
                chunks: AtomicU64::new(0),
                alive: std::sync::atomic::AtomicBool::new(true),
            });
            let shared = Arc::clone(&self.shared);
            let their_slot = Arc::clone(&slot);
            let spawned = std::thread::Builder::new()
                .name(format!("msrs-pool-{}", workers.len()))
                .spawn(move || worker_main(shared, their_slot));
            if spawned.is_err() {
                break;
            }
            let reg = msrs_telemetry::registry();
            reg.pool_spawns_total.inc();
            reg.pool_workers_alive.add(1);
            workers.push(slot);
            alive += 1;
        }
        alive
    }

    /// Publishes helper jobs and wakes workers. If no worker could ever be
    /// spawned, the jobs run inline so nothing is stranded in the queue.
    fn submit(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        if self.ensure_workers(jobs.len()) == 0 {
            for job in jobs {
                job();
            }
            return;
        }
        let wake_all = jobs.len() > 1;
        {
            let mut queue = lock(&self.shared.queue);
            queue.extend(jobs);
        }
        if wake_all {
            self.shared.available.notify_all();
        } else {
            self.shared.available.notify_one();
        }
    }
}

/// Counter snapshot of the persistent worker pool (process-global).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently alive (parked or busy).
    pub workers: usize,
    /// Worker threads spawned over the process lifetime (alive plus
    /// reclaimed).
    pub spawned: usize,
    /// Workers that exited after sitting idle past the reclamation timeout
    /// (see [`set_pool_idle_timeout`]; 0 while reclamation is off).
    pub reclaimed: u64,
    /// Parallel operations that engaged the pool (> 1 effective thread).
    pub ops: u64,
    /// Helper jobs executed by pool workers.
    pub helper_jobs: u64,
    /// Chunks executed by calling threads (callers always participate).
    pub caller_chunks: u64,
    /// Times a worker parked on the pool condvar waiting for work.
    pub parks: u64,
    /// Tasks stolen back and run inline by their submitter (`join`
    /// caller-take, `scope` waiter-drain) instead of by a pool worker.
    pub stealbacks: u64,
    /// Chunks stolen and executed per spawned worker, in spawn order
    /// (reclaimed workers keep their final counts).
    pub worker_chunks: Vec<u64>,
}

impl PoolStats {
    /// Total chunks executed across workers and callers.
    pub fn total_chunks(&self) -> u64 {
        self.caller_chunks + self.worker_chunks.iter().sum::<u64>()
    }
}

/// Snapshots the persistent pool's counters. All counters are cumulative
/// for the process lifetime; diff two snapshots to meter one workload.
///
/// Scalar counters are read back from the process-global `msrs_telemetry`
/// registry (the pool records straight into it); worker liveness and
/// per-worker chunk counts come from the pool's own slot list.
pub fn pool_stats() -> PoolStats {
    let pool = pool();
    let reg = msrs_telemetry::registry();
    let workers = lock(&pool.workers);
    PoolStats {
        workers: workers
            .iter()
            .filter(|s| s.alive.load(Ordering::Acquire))
            .count(),
        spawned: workers.len(),
        reclaimed: reg.pool_reclaims_total.get(),
        ops: reg.pool_ops_total.get(),
        helper_jobs: reg.pool_helper_jobs_total.get(),
        caller_chunks: reg.pool_caller_chunks_total.get(),
        parks: reg.pool_parks_total.get(),
        stealbacks: reg.pool_stealbacks_total.get(),
        worker_chunks: workers
            .iter()
            .map(|s| s.chunks.load(Ordering::Relaxed))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Per-operation state: the atomic-cursor chunk queue
// ---------------------------------------------------------------------------

/// Everything one parallel operation shares between the calling thread and
/// the helper tickets it enqueued: the task queue (claimed through an atomic
/// cursor), order-preserving result slots, and a completion latch.
struct OpState<In, Out, F> {
    tasks: Vec<Mutex<Option<In>>>,
    slots: Vec<Mutex<Option<Out>>>,
    cursor: AtomicUsize,
    /// Tasks not yet completed; the thread that takes it to zero trips the
    /// `done` latch.
    pending: AtomicUsize,
    f: F,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic payload raised by a task, resumed on the calling thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<In, Out, F> OpState<In, Out, F>
where
    In: Send,
    Out: Send,
    F: Fn(In) -> Out + Sync,
{
    /// The steal loop: claim tasks through the cursor until the queue is
    /// drained. Runs with nested parallelism pinned off, on workers and on
    /// the calling thread alike, so a task's result never depends on which
    /// thread executed it.
    fn work(&self) {
        with_threads(1, || loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks.len() {
                break;
            }
            note_chunk();
            let task = lock(&self.tasks[i])
                .take()
                .expect("each task is claimed exactly once");
            match catch_unwind(AssertUnwindSafe(|| (self.f)(task))) {
                Ok(out) => *lock(&self.slots[i]) = Some(out),
                Err(payload) => {
                    let mut slot = lock(&self.panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                *lock(&self.done) = true;
                self.done_cv.notify_all();
            }
        })
    }
}

/// Core executor: applies `f` to every task, returning results in task
/// order. With more than one effective thread, `threads - 1` helper tickets
/// are enqueued on the persistent pool and the calling thread participates
/// in the steal loop until every task completed. Tasks always run with
/// nested parallel operations disabled — on the sequential path too, so a
/// task's result never depends on how many workers executed the operation
/// (no oversubscription, and nested node-budgeted searches stay
/// deterministic across thread counts).
fn run_tasks<In, Out, F>(tasks: Vec<In>, f: F) -> Vec<Out>
where
    In: Send + 'static,
    Out: Send + 'static,
    F: Fn(In) -> Out + Send + Sync + 'static,
{
    let n = tasks.len();
    let threads = current_num_threads().clamp(1, n.max(1));
    if threads <= 1 {
        return with_threads(1, || tasks.into_iter().map(f).collect());
    }
    let state = Arc::new(OpState {
        slots: (0..n).map(|_| Mutex::new(None)).collect(),
        tasks: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
        cursor: AtomicUsize::new(0),
        pending: AtomicUsize::new(n),
        f,
        done: Mutex::new(false),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    });
    let pool = pool();
    msrs_telemetry::registry().pool_ops_total.inc();
    let tickets: Vec<Job> = (0..threads - 1)
        .map(|_| {
            let state = Arc::clone(&state);
            Box::new(move || state.work()) as Job
        })
        .collect();
    pool.submit(tickets);
    state.work();
    // Wait for helpers still mid-task (the cursor being drained does not
    // mean every claimed task has finished).
    {
        let mut done = lock(&state.done);
        while !*done {
            done = state
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    if let Some(payload) = lock(&state.panic).take() {
        resume_unwind(payload);
    }
    state
        .slots
        .iter()
        .map(|slot| lock(slot).take().expect("every task index was processed"))
        .collect()
}

// ---------------------------------------------------------------------------
// join / scope
// ---------------------------------------------------------------------------

/// Runs `a` and `b`, potentially in parallel (`b` offered to the persistent
/// pool), and returns both results. The current thread budget is split
/// between the two sides, so nested `join` trees fan out to at most
/// `current_num_threads()` threads total. Requires `'static` closures —
/// share borrowed state via `Arc`, as with every pool-executed task.
///
/// Deadlock-free by *steal-back*: `b` is published in a claim slot, and if
/// no worker has claimed it by the time `a` finishes, the calling thread
/// takes it back and runs it inline — so `join` never parks behind an
/// unstarted job, no matter how busy (or blocked) the pool's workers are.
///
/// Both closures are guaranteed to have completed before `join` returns or
/// unwinds — a panic in `a` still steals back / waits out `b` first (as
/// `std::thread::scope` and real rayon do), and `a`'s payload is re-raised
/// preferentially when both sides panicked.
pub fn join<RA, RB>(
    a: impl FnOnce() -> RA + Send + 'static,
    b: impl FnOnce() -> RB + Send + 'static,
) -> (RA, RB)
where
    RA: Send + 'static,
    RB: Send + 'static,
{
    let threads = current_num_threads();
    if threads <= 1 {
        return (a(), b());
    }
    let (ta, tb) = (threads - threads / 2, threads / 2);
    struct JoinState<B, RB> {
        /// The unstarted `b` closure; whoever `take`s it runs it. Holding
        /// the closure itself (not a flag) makes the claim race-free.
        task: Mutex<Option<B>>,
        result: Mutex<Option<std::thread::Result<RB>>>,
        cv: Condvar,
    }
    let state = Arc::new(JoinState {
        task: Mutex::new(Some(b)),
        result: Mutex::new(None),
        cv: Condvar::new(),
    });
    let their_state = Arc::clone(&state);
    pool().submit(vec![Box::new(move || {
        let Some(b) = lock(&their_state.task).take() else {
            return; // the caller stole it back
        };
        let result = catch_unwind(AssertUnwindSafe(|| with_threads(tb, b)));
        *lock(&their_state.result) = Some(result);
        their_state.cv.notify_all();
    })]);
    // `a` runs under catch_unwind so that `b` is joined (stolen back or
    // waited out) even when `a` panics — no task may outlive the call.
    let ra = catch_unwind(AssertUnwindSafe(|| with_threads(ta, a)));
    let rb = if let Some(b) = lock(&state.task).take() {
        // No worker got to `b` yet — run it here instead of parking.
        msrs_telemetry::registry().pool_stealbacks_total.inc();
        catch_unwind(AssertUnwindSafe(|| with_threads(tb, b)))
    } else {
        let mut slot = lock(&state.result);
        while slot.is_none() {
            slot = state.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
        slot.take().expect("join result published")
    };
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => resume_unwind(payload),
        (_, Err(payload)) => resume_unwind(payload),
    }
}

/// A boxed scope task closure.
type ScopeTask = Box<dyn FnOnce(&Scope) + Send + 'static>;

/// A spawned-but-not-yet-started scope task; whoever `take`s the closure
/// runs it (a pool worker, or the scope's waiter stealing it back).
struct SpawnSlot {
    task: Mutex<Option<ScopeTask>>,
}

/// Shared bookkeeping of one [`scope`]: outstanding task count, reclaimable
/// unstarted tasks, and the first panic payload.
struct ScopeState {
    /// Slots of tasks offered to the pool; the waiter drains unstarted
    /// ones before parking, which makes nested scopes deadlock-free.
    unclaimed: Mutex<Vec<Arc<SpawnSlot>>>,
    pending: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    /// Records a finished task: panic payload (first wins) and the
    /// completion count.
    fn finish_task(&self, result: std::thread::Result<()>) {
        if let Err(payload) = result {
            let mut slot = lock(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done_cv.notify_all();
        }
    }
}

/// A scope for spawning pool tasks (mirrors `rayon::Scope`, modulo the
/// `'static` bound the persistent pool imposes). All spawned tasks are
/// joined before [`scope`] returns; spawned tasks run nested parallel ops
/// sequentially and may themselves spawn onto the same scope.
pub struct Scope {
    state: Arc<ScopeState>,
}

impl Scope {
    /// Spawns a task onto the scope. With an effective thread count of 1
    /// the task runs inline (still with nested parallelism disabled).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope) + Send + 'static,
    {
        if current_num_threads() <= 1 {
            with_threads(1, || f(self));
            return;
        }
        *lock(&self.state.pending) += 1;
        let slot = Arc::new(SpawnSlot {
            task: Mutex::new(Some(Box::new(f))),
        });
        lock(&self.state.unclaimed).push(Arc::clone(&slot));
        let state = Arc::clone(&self.state);
        let child = Scope {
            state: Arc::clone(&self.state),
        };
        pool().submit(vec![Box::new(move || {
            let Some(f) = lock(&slot.task).take() else {
                return; // the waiter stole it back
            };
            let result = catch_unwind(AssertUnwindSafe(|| with_threads(1, || f(&child))));
            state.finish_task(result);
        })]);
    }
}

/// Creates a scope in which tasks can be spawned onto the persistent pool;
/// returns once all spawned tasks (including transitively spawned ones)
/// have completed — also when the scope closure itself panics (tasks are
/// joined first, then the closure's payload is re-raised, exactly as
/// `std::thread::scope` behaves). Panics from tasks are resumed here.
///
/// Deadlock-free by *steal-back*: before parking, the waiter reclaims and
/// runs every spawned task no worker has started yet (including tasks those
/// tasks spawn), so completion never depends on pool workers being
/// available.
pub fn scope<F, R>(f: F) -> R
where
    F: FnOnce(&Scope) -> R,
{
    let scope = Scope {
        state: Arc::new(ScopeState {
            unclaimed: Mutex::new(Vec::new()),
            pending: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }),
    };
    // The closure runs under catch_unwind so spawned tasks are joined even
    // when it panics — no task may outlive the scope call.
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    // Drain unstarted tasks inline; tasks run here may spawn more, which
    // lands back in `unclaimed` and is picked up by this same loop.
    loop {
        let Some(slot) = lock(&scope.state.unclaimed).pop() else {
            break;
        };
        let Some(task) = lock(&slot.task).take() else {
            continue; // a worker already ran this one
        };
        msrs_telemetry::registry().pool_stealbacks_total.inc();
        let run = catch_unwind(AssertUnwindSafe(|| with_threads(1, || task(&scope))));
        scope.state.finish_task(run);
    }
    // Park only for tasks a worker actually started (it is running them).
    {
        let mut pending = lock(&scope.state.pending);
        while *pending > 0 {
            pending = scope
                .state
                .done_cv
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    // The scope closure's own panic wins over task panics, as with
    // std::thread::scope.
    let task_panic = lock(&scope.state.panic).take();
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(result) => {
            if let Some(payload) = task_panic {
                resume_unwind(payload);
            }
            result
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic chunking
// ---------------------------------------------------------------------------

/// Upper bound on the number of chunks a parallel operation is split into.
/// Fixed (never derived from the thread count) so reduction trees and chunk
/// boundaries are identical for every thread count.
const MAX_CHUNKS: usize = 64;

/// Deterministic chunk size for `len` items: depends on `len` only.
fn chunk_size(len: usize) -> usize {
    len.div_ceil(MAX_CHUNKS).max(1)
}

/// Splits `items` into order-preserving chunks of [`chunk_size`] in one
/// pass (each element is moved exactly once).
fn split_chunks<S>(items: Vec<S>) -> Vec<Vec<S>> {
    let size = chunk_size(items.len());
    let mut chunks = Vec::with_capacity(items.len().div_ceil(size.max(1)));
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<S> = iter.by_ref().take(size).collect();
        if chunk.is_empty() {
            return chunks;
        }
        chunks.push(chunk);
    }
}

// ---------------------------------------------------------------------------
// Parallel iterators
// ---------------------------------------------------------------------------

/// The pipeline type of a freshly created parallel iterator (identity).
pub type IdentityPipeline<S> = fn(S) -> Option<S>;

/// A base parallel iterator over `S` items with no adapters applied.
pub type BaseParIter<S> = ParIter<S, S, IdentityPipeline<S>>;

/// A parallel iterator: an ordered item source plus a per-item pipeline
/// (`map`s and `filter`s composed into one closure). Terminal operations
/// split the items into deterministic chunks and run them on the persistent
/// pool. Items and pipeline closures must be `'static` (pool jobs outlive
/// any stack frame); share borrowed context via `Arc` clones captured by
/// `move` closures.
pub struct ParIter<S, T, F>
where
    S: Send + 'static,
    T: Send + 'static,
    F: Fn(S) -> Option<T> + Sync + Send + 'static,
{
    items: Vec<S>,
    pipeline: F,
    _result: PhantomData<fn() -> T>,
}

fn base_par_iter<S: Send + 'static>(items: Vec<S>) -> BaseParIter<S> {
    ParIter {
        items,
        pipeline: Some,
        _result: PhantomData,
    }
}

impl<S, T, F> ParIter<S, T, F>
where
    S: Send + 'static,
    T: Send + 'static,
    F: Fn(S) -> Option<T> + Sync + Send + 'static,
{
    /// Number of source items (before any `filter`).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maps each item through `g`.
    pub fn map<U: Send + 'static>(
        self,
        g: impl Fn(T) -> U + Sync + Send + 'static,
    ) -> ParIter<S, U, impl Fn(S) -> Option<U> + Sync + Send + 'static> {
        let f = self.pipeline;
        ParIter {
            items: self.items,
            pipeline: move |s| f(s).map(&g),
            _result: PhantomData,
        }
    }

    /// Keeps the items for which `pred` holds.
    pub fn filter(
        self,
        pred: impl Fn(&T) -> bool + Sync + Send + 'static,
    ) -> ParIter<S, T, impl Fn(S) -> Option<T> + Sync + Send + 'static> {
        let f = self.pipeline;
        ParIter {
            items: self.items,
            pipeline: move |s| f(s).filter(|t| pred(t)),
            _result: PhantomData,
        }
    }

    /// Maps and filters in one step.
    pub fn filter_map<U: Send + 'static>(
        self,
        g: impl Fn(T) -> Option<U> + Sync + Send + 'static,
    ) -> ParIter<S, U, impl Fn(S) -> Option<U> + Sync + Send + 'static> {
        let f = self.pipeline;
        ParIter {
            items: self.items,
            pipeline: move |s| f(s).and_then(&g),
            _result: PhantomData,
        }
    }

    /// Evaluates the pipeline over deterministic chunks, preserving order.
    fn drive(self) -> Vec<T> {
        let ParIter {
            items, pipeline, ..
        } = self;
        if items.is_empty() {
            return Vec::new();
        }
        let chunks = split_chunks(items);
        run_tasks(chunks, move |chunk| {
            chunk.into_iter().filter_map(&pipeline).collect::<Vec<T>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Collects into any [`FromIterator`] container, in source order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Runs `g` on every item (in parallel; no ordering guarantee between
    /// chunks for side effects).
    pub fn for_each(self, g: impl Fn(T) + Sync + Send + 'static) {
        let ParIter {
            items, pipeline, ..
        } = self;
        if items.is_empty() {
            return;
        }
        let chunks = split_chunks(items);
        run_tasks(chunks, move |chunk| {
            chunk.into_iter().filter_map(&pipeline).for_each(&g);
        });
    }

    /// Folds all items with `op`, seeding every chunk with a clone of
    /// `init`. `init` must be an identity of `op` (as with
    /// [`ParIter::reduce`]); the fold tree — sequential within each chunk,
    /// chunk accumulators combined in chunk order — is deterministic for
    /// every thread count.
    pub fn fold(self, init: T, op: impl Fn(T, T) -> T + Sync + Send + 'static) -> T
    where
        T: Clone + Sync,
    {
        self.reduce(move || init.clone(), op)
    }

    /// Reduces all items with `op`, seeding every chunk with `identity()`
    /// (mirrors `rayon`'s `reduce`). Deterministic: see [`ParIter::fold`].
    pub fn reduce(
        self,
        identity: impl Fn() -> T + Sync + Send + 'static,
        op: impl Fn(T, T) -> T + Sync + Send + 'static,
    ) -> T {
        let ParIter {
            items, pipeline, ..
        } = self;
        if items.is_empty() {
            return identity();
        }
        // `identity`/`op` are needed both inside the pool tasks and for the
        // final chunk-order combine on this thread; share them via `Arc`.
        let identity = Arc::new(identity);
        let op = Arc::new(op);
        let chunks = split_chunks(items);
        let accs = run_tasks(chunks, {
            let identity = Arc::clone(&identity);
            let op = Arc::clone(&op);
            move |chunk: Vec<S>| {
                chunk
                    .into_iter()
                    .filter_map(&pipeline)
                    .fold((*identity)(), &*op)
            }
        });
        accs.into_iter().fold((*identity)(), |a, b| (*op)(a, b))
    }

    /// Sums the items. Deterministic: per-chunk sums are combined in chunk
    /// order.
    pub fn sum<U>(self) -> U
    where
        U: std::iter::Sum<T> + std::iter::Sum<U> + Send + 'static,
    {
        let ParIter {
            items, pipeline, ..
        } = self;
        let chunks = split_chunks(items);
        run_tasks(chunks, move |chunk| {
            chunk.into_iter().filter_map(&pipeline).sum::<U>()
        })
        .into_iter()
        .sum()
    }

    /// Counts the items surviving the pipeline.
    pub fn count(self) -> usize {
        let ParIter {
            items, pipeline, ..
        } = self;
        let chunks = split_chunks(items);
        run_tasks(chunks, move |chunk| {
            chunk.into_iter().filter_map(&pipeline).count()
        })
        .into_iter()
        .sum()
    }

    /// The minimum item (`None` when empty). Ties resolve to the earliest
    /// item, as with `Iterator::min`.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.drive().into_iter().min()
    }

    /// The maximum item (`None` when empty). Ties resolve to the latest
    /// item, as with `Iterator::max`.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.drive().into_iter().max()
    }

    /// Whether any item satisfies `pred`.
    pub fn any(self, pred: impl Fn(T) -> bool + Sync + Send + 'static) -> bool {
        self.map(pred).drive().into_iter().any(|b| b)
    }

    /// Whether all items satisfy `pred`.
    pub fn all(self, pred: impl Fn(T) -> bool + Sync + Send + 'static) -> bool {
        self.map(pred).drive().into_iter().all(|b| b)
    }
}

// ---------------------------------------------------------------------------
// Conversion traits (the rayon prelude surface)
// ---------------------------------------------------------------------------

/// `IntoParallelIterator`: `into_par_iter()` consumes a collection.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send + 'static;
    /// The parallel iterator type.
    type Iter;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send + 'static,
{
    type Item = I::Item;
    type Iter = BaseParIter<I::Item>;

    fn into_par_iter(self) -> Self::Iter {
        base_par_iter(self.into_iter().collect())
    }
}

/// `IntoParallelRefIterator`: `par_iter()` iterates a collection without
/// consuming it. Because pool tasks are `'static`, the items are **cloned
/// up front** (rayon yields `&T` here): cheap for the `Copy`/small types
/// this workspace fans out, and explicit `Arc`-sharing over indices is the
/// right tool for heavyweight items (see `msrs-engine`'s batch paths).
pub trait IntoParallelRefIterator<'data> {
    /// Element type (owned — cloned from the collection).
    type Item: Send + 'static;
    /// The parallel iterator type.
    type Iter;

    /// Iterate by cloning each element.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C, T> IntoParallelRefIterator<'data> for C
where
    C: ?Sized + 'data,
    &'data C: IntoIterator<Item = &'data T>,
    T: Clone + Send + 'static,
{
    type Item = T;
    type Iter = BaseParIter<T>;

    fn par_iter(&'data self) -> BaseParIter<T> {
        base_par_iter(self.into_iter().cloned().collect())
    }
}

/// Matches `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn for_each_observes_every_item() {
        let seen = Arc::new(AtomicUsize::new(0));
        let their_seen = Arc::clone(&seen);
        vec![11, 12, 13].into_par_iter().for_each(move |x| {
            their_seen.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn collect_is_order_preserving_across_thread_counts() {
        let input: Vec<u64> = (0..1000).collect();
        let reference: Vec<u64> = input.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let out: Vec<u64> = pool(threads).install(|| input.par_iter().map(|x| x * x).collect());
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn filter_and_filter_map_preserve_order() {
        let input: Vec<i64> = (0..500).collect();
        for threads in [1, 4] {
            let evens: Vec<i64> =
                pool(threads).install(|| input.par_iter().filter(|x| x % 2 == 0).collect());
            assert_eq!(evens.len(), 250);
            assert!(evens.windows(2).all(|w| w[0] < w[1]));
            let odds: Vec<i64> = pool(threads).install(|| {
                input
                    .par_iter()
                    .filter_map(|x| (x % 2 == 1).then_some(x * 10))
                    .collect()
            });
            assert_eq!(odds[0], 10);
            assert_eq!(odds.len(), 250);
        }
    }

    #[test]
    fn float_reduction_tree_is_bit_identical_across_thread_counts() {
        // Floating-point addition is not associative, so bit-identical sums
        // across thread counts prove the reduction tree shape is fixed.
        let input: Vec<f64> = (1..=3000).map(|i| 1.0 / i as f64).collect();
        let reference = pool(1).install(|| input.par_iter().fold(0.0f64, |a, b| a + b));
        for threads in [2, 3, 8] {
            let sum = pool(threads).install(|| input.par_iter().fold(0.0f64, |a, b| a + b));
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn reduce_and_fold_agree() {
        let input: Vec<u64> = (0..100).collect();
        let a = input.par_iter().reduce(|| 0, u64::max);
        let b = input.par_iter().fold(0, u64::max);
        assert_eq!(a, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn count_min_max_any_all() {
        let v: Vec<i32> = (0..257).collect();
        assert_eq!(v.par_iter().filter(|&x| x % 2 == 0).count(), 129);
        assert_eq!(v.par_iter().min(), Some(0));
        assert_eq!(v.par_iter().max(), Some(256));
        assert!(v.par_iter().any(|x| x == 256));
        assert!(v.par_iter().all(|x| x < 257));
        let empty: Vec<i32> = vec![];
        assert_eq!(empty.into_par_iter().min(), None);
    }

    #[test]
    fn work_actually_distributes_across_threads() {
        use std::collections::HashSet;
        let ids = Arc::new(Mutex::new(HashSet::new()));
        let their_ids = Arc::clone(&ids);
        pool(4).install(|| {
            (0..256).into_par_iter().for_each(move |_| {
                lock(&their_ids).insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        });
        // 256 items → 64 chunks; with 4 workers and a sleep per item, more
        // than one OS thread must have participated.
        assert!(lock(&ids).len() > 1);
    }

    #[test]
    fn pool_counters_advance_per_operation() {
        let before = pool_stats();
        let out: Vec<u32> = pool(4).install(|| (0..256u32).into_par_iter().collect());
        assert_eq!(out.len(), 256);
        let after = pool_stats();
        // Cumulative, monotone counters (other tests run concurrently, so
        // only lower bounds are meaningful): our op engaged the pool and
        // executed its 64 chunks somewhere.
        assert!(after.ops > before.ops);
        assert!(after.total_chunks() >= before.total_chunks() + 64);
        assert!(after.workers <= MAX_WORKERS);
        assert_eq!(after.worker_chunks.len(), after.spawned);
        assert!(after.workers <= after.spawned);
    }

    #[test]
    fn idle_workers_are_reclaimed_and_respawned() {
        use std::time::{Duration, Instant};
        // Warm the pool so at least one worker exists and then parks.
        let out: Vec<u32> = pool(4).install(|| (0..256u32).into_par_iter().collect());
        assert_eq!(out.len(), 256);
        let before = pool_stats();
        set_pool_idle_timeout(Some(Duration::from_millis(5)));
        // Other tests may keep some workers busy; wait until at least one
        // parked worker gives up (bounded, generous for loaded machines).
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool_stats().reclaimed == before.reclaimed && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        set_pool_idle_timeout(None);
        let after = pool_stats();
        assert!(
            after.reclaimed > before.reclaimed,
            "no worker was reclaimed within the deadline"
        );
        // Lazy respawn: the next operation that wants workers gets them and
        // completes correctly; cumulative per-worker stats are retained.
        let sum: u64 = pool(4).install(|| (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499500);
        let regrown = pool_stats();
        assert!(regrown.spawned >= after.spawned);
        assert_eq!(regrown.worker_chunks.len(), regrown.spawned);
    }

    #[test]
    fn workers_persist_across_operations() {
        // Warm the pool, then check repeated operations do not grow it
        // beyond what their thread budget ever requires.
        let p = pool(4);
        let _: Vec<u32> = p.install(|| (0..128u32).into_par_iter().collect());
        let baseline = pool_stats().workers;
        for _ in 0..16 {
            let out: Vec<u32> = p.install(|| (0..128u32).into_par_iter().map(|x| x + 1).collect());
            assert_eq!(out.len(), 128);
        }
        let grown = pool_stats().workers;
        // Other test threads may grow the pool concurrently (up to their
        // own budgets), but 16 repeats of a 4-thread op must not: the same
        // parked workers are reused.
        assert!(grown <= baseline.max(8), "pool grew to {grown} workers");
    }

    #[test]
    fn panics_propagate_and_the_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                (0..100u32).into_par_iter().for_each(|i| {
                    if i == 37 {
                        panic!("boom at {i}");
                    }
                });
            })
        });
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool keeps serving afterwards.
        let sum: u64 = pool(4).install(|| (0..100u64).into_par_iter().sum());
        assert_eq!(sum, 4950);
    }

    #[test]
    fn join_runs_both_and_propagates_results() {
        let (a, b) = pool(4).install(|| join(|| 6 * 7, || "ok"));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
        let (a, b) = pool(1).install(|| join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn nested_join_on_pool_threads_does_not_deadlock() {
        // Regression: the b-side of a join runs with a multi-thread budget;
        // a nested join inside it used to park behind a queue no free
        // worker would ever drain. Steal-back must complete it regardless
        // of worker availability.
        let (a, (b, c)) = pool(4).install(|| join(|| 1, || join(|| 2, || 3)));
        assert_eq!((a, b, c), (1, 2, 3));
        // Deeper and wider, on a tiny budget.
        let (x, (y, z)) = pool(2).install(|| join(|| join(|| 10, || 11), || join(|| 12, || 13)));
        assert_eq!((x, (y, z)), ((10, 11), (12, 13)));
    }

    #[test]
    fn scope_waiter_steals_back_unstarted_tasks() {
        // Even with every worker busy elsewhere, a scope must finish: the
        // waiter reclaims unstarted spawns (and the spawns they spawn).
        let counter = Arc::new(AtomicUsize::new(0));
        pool(2).install(|| {
            scope(|s| {
                for _ in 0..4 {
                    let c = Arc::clone(&counter);
                    s.spawn(move |s| {
                        c.fetch_add(1, Ordering::Relaxed);
                        let c2 = Arc::clone(&c);
                        s.spawn(move |_| {
                            c2.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join_completes_the_other_side_before_unwinding() {
        // A panic in `a` must not let `b` outlive the join call: by the
        // time catch_unwind observes the payload, `b` has run to completion.
        let b_done = Arc::new(AtomicUsize::new(0));
        let their_b_done = Arc::clone(&b_done);
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                join(
                    || -> u32 { panic!("left side") },
                    move || {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        their_b_done.fetch_add(1, Ordering::SeqCst);
                    },
                )
            })
        });
        assert!(result.is_err());
        assert_eq!(b_done.load(Ordering::SeqCst), 1, "b joined before unwind");
    }

    #[test]
    fn scope_joins_spawned_tasks_before_resuming_a_closure_panic() {
        let ran = Arc::new(AtomicUsize::new(0));
        let their_ran = Arc::clone(&ran);
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                scope(|s| {
                    for _ in 0..4 {
                        let ran = Arc::clone(&their_ran);
                        s.spawn(move |_| {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            ran.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    panic!("scope closure");
                })
            })
        });
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 4, "all tasks joined first");
    }

    #[test]
    fn join_propagates_panics_from_the_pool_side() {
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| join(|| 1u32, || -> u32 { panic!("right side") }))
        });
        assert!(result.is_err());
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        for threads in [1usize, 4] {
            let counter = Arc::new(AtomicUsize::new(0));
            pool(threads).install(|| {
                scope(|s| {
                    for _ in 0..8 {
                        let counter = Arc::clone(&counter);
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
            assert_eq!(counter.load(Ordering::Relaxed), 8, "threads = {threads}");
        }
    }

    #[test]
    fn scope_tasks_can_spawn_nested_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        pool(4).install(|| {
            scope(|s| {
                let outer = Arc::clone(&counter);
                s.spawn(move |s| {
                    outer.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..3 {
                        let inner = Arc::clone(&outer);
                        s.spawn(move |_| {
                            inner.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_parallelism_is_sequential_inside_workers() {
        // A worker's nested parallel op must not fan out further; it
        // still produces correct, ordered results.
        let out: Vec<Vec<u32>> = pool(4).install(|| {
            (0u32..8)
                .into_par_iter()
                .map(|i| (0..4).into_par_iter().map(move |j| i * 10 + j).collect())
                .collect()
        });
        assert_eq!(out[3], vec![30, 31, 32, 33]);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn sequential_fast_path_also_disables_nested_parallelism() {
        // A single-task operation takes the sequential fast path; the task
        // must still see nested parallelism disabled, exactly as it would
        // on a pool worker — otherwise a task's result could depend on how
        // many workers executed the surrounding operation.
        let seen: Vec<usize> = pool(8).install(|| {
            vec![()]
                .into_par_iter()
                .map(|()| current_num_threads())
                .collect()
        });
        assert_eq!(seen, vec![1]);
    }

    #[test]
    fn install_overrides_and_restores() {
        let outer = current_num_threads();
        pool(3).install(|| {
            assert_eq!(current_num_threads(), 3);
            pool(2).install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn builder_zero_means_default() {
        let p = ThreadPoolBuilder::new().build().unwrap();
        assert!(p.current_num_threads() >= 1);
        assert_eq!(pool(5).current_num_threads(), 5);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u8> = vec![];
        let out: Vec<u8> = empty.par_iter().collect();
        assert!(out.is_empty());
        let sum: u32 = Vec::<u32>::new().into_par_iter().sum();
        assert_eq!(sum, 0);
        assert_eq!(Vec::<u32>::new().into_par_iter().fold(7, u32::max), 7);
    }

    #[test]
    #[ignore = "timing-sensitive; needs a multi-core machine (run with --ignored)"]
    fn multicore_speedup_over_sequential() {
        // CPU-bound task: fixed-iteration spin so both runs do identical
        // work. Requires ≥ 4 physical cores to show a robust speedup.
        fn spin() -> u64 {
            let mut acc = 0u64;
            for i in 0..20_000_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc)
        }
        let tasks: Vec<u32> = (0..8).collect();
        let run = |threads: usize| {
            let start = std::time::Instant::now();
            let out: Vec<u64> =
                pool(threads).install(|| tasks.par_iter().map(|_| spin()).collect());
            assert_eq!(out.len(), 8);
            start.elapsed()
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(
            t4 < t1.mul_f64(0.75),
            "expected ≥ 1.33× speedup at 4 threads: t1 = {t1:?}, t4 = {t4:?}"
        );
    }

    #[test]
    fn chunk_boundaries_depend_only_on_length() {
        for len in [0usize, 1, 63, 64, 65, 1000, 4097] {
            let items: Vec<usize> = (0..len).collect();
            let chunks = split_chunks(items);
            assert!(chunks.len() <= MAX_CHUNKS);
            let rebuilt: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(rebuilt, (0..len).collect::<Vec<_>>());
        }
    }
}
