//! Offline stand-in for `rayon`: the `par_iter`/`into_par_iter` entry points
//! mapped onto *sequential* standard iterators.
//!
//! The build environment has no crates.io access, so this crate keeps the
//! workspace compiling without the real work-stealing pool. Sequential
//! execution is deliberate: it makes the exact branch-and-bound and the
//! experiment harness fully deterministic, which the engine subsystem relies
//! on for reproducible batch reports. Real parallelism in this workspace
//! lives in `msrs-engine`, which drives portfolio members and batch items on
//! `std::thread` scopes instead.
//!
//! Because the returned "parallel" iterators *are* `std::iter` iterators,
//! every adapter (`map`, `filter`, `for_each`, `collect`, `sum`, …) is
//! available with identical semantics.

#![forbid(unsafe_code)]

/// `IntoParallelIterator` facade: `into_par_iter()` = `into_iter()`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Convert into a "parallel" (here: sequential) iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `IntoParallelRefIterator` facade: `par_iter()` = `iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item;
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterate by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// `IntoParallelRefMutIterator` facade: `par_iter_mut()` = `iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type (a mutable reference).
    type Item;
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterate by mutable reference.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Matches `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn for_each_and_mut() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
        let mut seen = 0;
        v.par_iter().for_each(|&x| seen += x);
        assert_eq!(seen, 36);
    }
}
