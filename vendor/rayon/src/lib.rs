//! Offline stand-in for `rayon`: the `par_iter`/`into_par_iter` entry points
//! backed by a *real* parallel scheduler.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the rayon API the workspace uses on top of `std::sync` only
//! (no `unsafe`): a **chunked shared-queue scheduler**. Every parallel
//! operation splits its input into chunks, publishes them in a shared queue,
//! and lets `N` scoped worker threads *steal* chunks through an atomic
//! cursor until the queue is drained — dynamic load balancing with the
//! work-distribution granularity of a deque-based pool, minus the unsafe
//! lifetime erasure a persistent-thread pool would require.
//!
//! ## Determinism guarantees
//!
//! The engine's batch reports are required to be bit-identical across thread
//! counts, so the scheduler is deterministic by construction:
//!
//! * **Chunk boundaries depend only on the input length** (never on the
//!   thread count or timing), so the shape of every reduction tree is fixed.
//! * `collect`, `map`, `filter`, and `filter_map` are **order-preserving**:
//!   each chunk writes into its own result slot and the slots are
//!   concatenated in chunk order.
//! * [`ParIter::fold`] / [`ParIter::reduce`] fold each chunk sequentially
//!   (left to right) and then combine the per-chunk accumulators in chunk
//!   order — the same tree regardless of how many threads executed it, so
//!   even non-associative floating-point rounding is reproducible.
//!
//! Thread-count selection: `ThreadPoolBuilder::build_global` >
//! `MSRS_THREADS` environment variable > `std::thread::available_parallelism`.
//! [`ThreadPool::install`] overrides it for one call tree, and tasks running
//! *inside* a parallel operation default to sequential nested execution so
//! workers are never oversubscribed (and nested node-budgeted searches stay
//! deterministic).

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Thread-count plumbing
// ---------------------------------------------------------------------------

/// Global default thread count, set once by [`ThreadPoolBuilder::build_global`].
static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`] and by the
    /// scheduler itself (workers run nested parallel ops sequentially).
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The environment-derived default: `MSRS_THREADS` if set and positive,
/// else the available parallelism.
fn env_default_threads() -> usize {
    std::env::var("MSRS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn default_threads() -> usize {
    *GLOBAL_THREADS.get_or_init(env_default_threads)
}

/// The number of threads the *current* context parallelizes over: an
/// [`install`](ThreadPool::install)ed pool's size, else the global default.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS
        .with(Cell::get)
        .unwrap_or_else(default_threads)
}

/// Runs `op` with the calling thread's thread-count override set to `n`,
/// restoring the previous value afterwards (panic-safe via a drop guard).
fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            CURRENT_THREADS.with(|c| c.set(prev));
        }
    }
    let _guard = Restore(CURRENT_THREADS.with(|c| c.replace(Some(n))));
    op()
}

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder
// ---------------------------------------------------------------------------

/// Error returned by [`ThreadPoolBuilder::build_global`] when a global pool
/// was already installed.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    reason: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.reason)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures a [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker-thread count; `0` (the default) means "use the
    /// environment default" (`MSRS_THREADS` or the available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle with this configuration.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }

    /// Installs this configuration as the process-wide default. Errors if a
    /// global pool (or any parallel op that latched the default) exists.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            env_default_threads()
        } else {
            self.num_threads
        };
        GLOBAL_THREADS
            .set(threads)
            .map_err(|_| ThreadPoolBuildError {
                reason: "the global thread pool has already been initialized",
            })
    }
}

/// A handle carrying a thread count. Scheduling state lives per-operation
/// (scoped workers + shared chunk queue), so the handle itself is trivially
/// cheap, `Send + Sync`, and never shuts down.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count governing every parallel
    /// operation in its call tree (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        with_threads(self.threads, op)
    }
}

// ---------------------------------------------------------------------------
// The chunked shared-queue scheduler
// ---------------------------------------------------------------------------

/// Upper bound on the number of chunks a parallel operation is split into.
/// Fixed (never derived from the thread count) so reduction trees and chunk
/// boundaries are identical for every thread count.
const MAX_CHUNKS: usize = 64;

/// Deterministic chunk size for `len` items: depends on `len` only.
fn chunk_size(len: usize) -> usize {
    len.div_ceil(MAX_CHUNKS).max(1)
}

/// Splits `items` into order-preserving chunks of [`chunk_size`] in one
/// pass (each element is moved exactly once).
fn split_chunks<S>(items: Vec<S>) -> Vec<Vec<S>> {
    let size = chunk_size(items.len());
    let mut chunks = Vec::with_capacity(items.len().div_ceil(size.max(1)));
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<S> = iter.by_ref().take(size).collect();
        if chunk.is_empty() {
            return chunks;
        }
        chunks.push(chunk);
    }
}

/// Core executor: applies `f` to every task, returning results in task
/// order. With more than one effective thread, tasks are published in a
/// shared queue and stolen by scoped workers through an atomic cursor; the
/// calling thread participates as a worker. Tasks always run with nested
/// parallel operations disabled — on the sequential path too, so a task's
/// result never depends on how many workers executed the operation (no
/// oversubscription, and nested node-budgeted searches stay deterministic
/// across thread counts).
fn run_tasks<In: Send, Out: Send>(tasks: Vec<In>, f: impl Fn(In) -> Out + Sync) -> Vec<Out> {
    let n = tasks.len();
    let threads = current_num_threads().clamp(1, n.max(1));
    if threads <= 1 {
        return with_threads(1, || tasks.into_iter().map(f).collect());
    }
    let queue: Vec<Mutex<Option<In>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<Out>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let worker = || {
        with_threads(1, || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let task = queue[i]
                .lock()
                .expect("task queue poisoned")
                .take()
                .expect("each task is claimed exactly once");
            *slots[i].lock().expect("result slot poisoned") = Some(f(task));
        })
    };
    std::thread::scope(|s| {
        let worker = &worker;
        for _ in 1..threads {
            s.spawn(worker);
        }
        worker();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task index was processed")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// join / scope
// ---------------------------------------------------------------------------

/// Runs `a` and `b`, potentially in parallel, and returns both results.
/// The current thread budget is split between the two sides, so nested
/// `join` trees fan out to at most `current_num_threads()` threads total.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let threads = current_num_threads();
    if threads <= 1 {
        return (a(), b());
    }
    let (ta, tb) = (threads - threads / 2, threads / 2);
    std::thread::scope(|s| {
        let hb = s.spawn(move || with_threads(tb, b));
        let ra = with_threads(ta, a);
        let rb = hb
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (ra, rb)
    })
}

/// A scope for spawning borrowed tasks (mirrors `rayon::Scope`). Each
/// spawned task runs on its own scoped thread; all tasks are joined before
/// [`scope`] returns. Spawned tasks run nested parallel ops sequentially.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || {
            with_threads(1, || f(&Scope { inner }));
        });
    }
}

/// Creates a scope in which borrowed tasks can be spawned; returns once all
/// spawned tasks have completed.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

// ---------------------------------------------------------------------------
// Parallel iterators
// ---------------------------------------------------------------------------

/// The pipeline type of a freshly created parallel iterator (identity).
pub type IdentityPipeline<S> = fn(S) -> Option<S>;

/// A base parallel iterator over `S` items with no adapters applied.
pub type BaseParIter<S> = ParIter<S, S, IdentityPipeline<S>>;

/// A parallel iterator: an ordered item source plus a per-item pipeline
/// (`map`s and `filter`s composed into one closure). Terminal operations
/// split the items into deterministic chunks and run them on the scheduler.
pub struct ParIter<S: Send, T: Send, F: Fn(S) -> Option<T> + Sync + Send> {
    items: Vec<S>,
    pipeline: F,
    _result: PhantomData<fn() -> T>,
}

fn base_par_iter<S: Send>(items: Vec<S>) -> BaseParIter<S> {
    ParIter {
        items,
        pipeline: Some,
        _result: PhantomData,
    }
}

impl<S: Send, T: Send, F: Fn(S) -> Option<T> + Sync + Send> ParIter<S, T, F> {
    /// Number of source items (before any `filter`).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maps each item through `g`.
    pub fn map<U: Send>(
        self,
        g: impl Fn(T) -> U + Sync + Send,
    ) -> ParIter<S, U, impl Fn(S) -> Option<U> + Sync + Send> {
        let f = self.pipeline;
        ParIter {
            items: self.items,
            pipeline: move |s| f(s).map(&g),
            _result: PhantomData,
        }
    }

    /// Keeps the items for which `pred` holds.
    pub fn filter(
        self,
        pred: impl Fn(&T) -> bool + Sync + Send,
    ) -> ParIter<S, T, impl Fn(S) -> Option<T> + Sync + Send> {
        let f = self.pipeline;
        ParIter {
            items: self.items,
            pipeline: move |s| f(s).filter(|t| pred(t)),
            _result: PhantomData,
        }
    }

    /// Maps and filters in one step.
    pub fn filter_map<U: Send>(
        self,
        g: impl Fn(T) -> Option<U> + Sync + Send,
    ) -> ParIter<S, U, impl Fn(S) -> Option<U> + Sync + Send> {
        let f = self.pipeline;
        ParIter {
            items: self.items,
            pipeline: move |s| f(s).and_then(&g),
            _result: PhantomData,
        }
    }

    /// Evaluates the pipeline over deterministic chunks, preserving order.
    fn drive(self) -> Vec<T> {
        let ParIter {
            items, pipeline, ..
        } = self;
        if items.is_empty() {
            return Vec::new();
        }
        let chunks = split_chunks(items);
        run_tasks(chunks, |chunk| {
            chunk.into_iter().filter_map(&pipeline).collect::<Vec<T>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Collects into any [`FromIterator`] container, in source order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Runs `g` on every item (in parallel; no ordering guarantee between
    /// chunks for side effects).
    pub fn for_each(self, g: impl Fn(T) + Sync + Send) {
        let ParIter {
            items, pipeline, ..
        } = self;
        if items.is_empty() {
            return;
        }
        let chunks = split_chunks(items);
        run_tasks(chunks, |chunk| {
            chunk.into_iter().filter_map(&pipeline).for_each(&g);
        });
    }

    /// Folds all items with `op`, seeding every chunk with a clone of
    /// `init`. `init` must be an identity of `op` (as with
    /// [`ParIter::reduce`]); the fold tree — sequential within each chunk,
    /// chunk accumulators combined in chunk order — is deterministic for
    /// every thread count.
    pub fn fold(self, init: T, op: impl Fn(T, T) -> T + Sync + Send) -> T
    where
        T: Clone + Sync,
    {
        self.reduce(move || init.clone(), op)
    }

    /// Reduces all items with `op`, seeding every chunk with `identity()`
    /// (mirrors `rayon`'s `reduce`). Deterministic: see [`ParIter::fold`].
    pub fn reduce(
        self,
        identity: impl Fn() -> T + Sync + Send,
        op: impl Fn(T, T) -> T + Sync + Send,
    ) -> T {
        let ParIter {
            items, pipeline, ..
        } = self;
        if items.is_empty() {
            return identity();
        }
        let chunks = split_chunks(items);
        let accs = run_tasks(chunks, |chunk| {
            chunk
                .into_iter()
                .filter_map(&pipeline)
                .fold(identity(), &op)
        });
        accs.into_iter().fold(identity(), op)
    }

    /// Sums the items. Deterministic: per-chunk sums are combined in chunk
    /// order.
    pub fn sum<U>(self) -> U
    where
        U: std::iter::Sum<T> + std::iter::Sum<U> + Send,
    {
        let ParIter {
            items, pipeline, ..
        } = self;
        let chunks = split_chunks(items);
        run_tasks(chunks, |chunk| {
            chunk.into_iter().filter_map(&pipeline).sum::<U>()
        })
        .into_iter()
        .sum()
    }

    /// Counts the items surviving the pipeline.
    pub fn count(self) -> usize {
        let ParIter {
            items, pipeline, ..
        } = self;
        let chunks = split_chunks(items);
        run_tasks(chunks, |chunk| {
            chunk.into_iter().filter_map(&pipeline).count()
        })
        .into_iter()
        .sum()
    }

    /// The minimum item (`None` when empty). Ties resolve to the earliest
    /// item, as with `Iterator::min`.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.drive().into_iter().min()
    }

    /// The maximum item (`None` when empty). Ties resolve to the latest
    /// item, as with `Iterator::max`.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.drive().into_iter().max()
    }

    /// Whether any item satisfies `pred`.
    pub fn any(self, pred: impl Fn(T) -> bool + Sync + Send) -> bool {
        self.map(pred).drive().into_iter().any(|b| b)
    }

    /// Whether all items satisfy `pred`.
    pub fn all(self, pred: impl Fn(T) -> bool + Sync + Send) -> bool {
        self.map(pred).drive().into_iter().all(|b| b)
    }
}

// ---------------------------------------------------------------------------
// Conversion traits (the rayon prelude surface)
// ---------------------------------------------------------------------------

/// `IntoParallelIterator`: `into_par_iter()` consumes a collection.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = BaseParIter<I::Item>;

    fn into_par_iter(self) -> Self::Iter {
        base_par_iter(self.into_iter().collect())
    }
}

/// `IntoParallelRefIterator`: `par_iter()` borrows a collection.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter;

    /// Iterate by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = BaseParIter<Self::Item>;

    fn par_iter(&'data self) -> Self::Iter {
        base_par_iter(self.into_iter().collect())
    }
}

/// `IntoParallelRefMutIterator`: `par_iter_mut()` borrows mutably. The
/// exclusive references are distributed across workers (each item visits
/// exactly one worker), which is safe by construction.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type (a mutable reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter;

    /// Iterate by mutable reference.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
    <&'data mut C as IntoIterator>::Item: Send,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = BaseParIter<Self::Item>;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        base_par_iter(self.into_iter().collect())
    }
}

/// Matches `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn for_each_and_mut() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
        let seen = AtomicUsize::new(0);
        v.par_iter().for_each(|&x| {
            seen.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(seen.into_inner(), 36);
    }

    #[test]
    fn collect_is_order_preserving_across_thread_counts() {
        let input: Vec<u64> = (0..1000).collect();
        let reference: Vec<u64> = input.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let out: Vec<u64> =
                pool(threads).install(|| input.par_iter().map(|&x| x * x).collect());
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn filter_and_filter_map_preserve_order() {
        let input: Vec<i64> = (0..500).collect();
        for threads in [1, 4] {
            let evens: Vec<i64> = pool(threads).install(|| {
                input
                    .par_iter()
                    .map(|&x| x)
                    .filter(|x| x % 2 == 0)
                    .collect()
            });
            assert_eq!(evens.len(), 250);
            assert!(evens.windows(2).all(|w| w[0] < w[1]));
            let odds: Vec<i64> = pool(threads).install(|| {
                input
                    .par_iter()
                    .filter_map(|&x| (x % 2 == 1).then_some(x * 10))
                    .collect()
            });
            assert_eq!(odds[0], 10);
            assert_eq!(odds.len(), 250);
        }
    }

    #[test]
    fn float_reduction_tree_is_bit_identical_across_thread_counts() {
        // Floating-point addition is not associative, so bit-identical sums
        // across thread counts prove the reduction tree shape is fixed.
        let input: Vec<f64> = (1..=3000).map(|i| 1.0 / i as f64).collect();
        let reference = pool(1).install(|| input.par_iter().map(|&x| x).fold(0.0f64, |a, b| a + b));
        for threads in [2, 3, 8] {
            let sum =
                pool(threads).install(|| input.par_iter().map(|&x| x).fold(0.0f64, |a, b| a + b));
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn reduce_and_fold_agree() {
        let input: Vec<u64> = (0..100).collect();
        let a = input.par_iter().map(|&x| x).reduce(|| 0, u64::max);
        let b = input.par_iter().map(|&x| x).fold(0, u64::max);
        assert_eq!(a, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn count_min_max_any_all() {
        let v: Vec<i32> = (0..257).collect();
        assert_eq!(v.par_iter().filter(|&&x| x % 2 == 0).count(), 129);
        assert_eq!(v.par_iter().map(|&x| x).min(), Some(0));
        assert_eq!(v.par_iter().map(|&x| x).max(), Some(256));
        assert!(v.par_iter().any(|&x| x == 256));
        assert!(v.par_iter().all(|&x| x < 257));
        let empty: Vec<i32> = vec![];
        assert_eq!(empty.into_par_iter().min(), None);
    }

    #[test]
    fn work_actually_distributes_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        pool(4).install(|| {
            (0..256).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        });
        // 256 items → 64 chunks; with 4 workers and a sleep per item, more
        // than one OS thread must have participated.
        assert!(ids.into_inner().unwrap().len() > 1);
    }

    #[test]
    fn join_runs_both_and_propagates_results() {
        let (a, b) = pool(4).install(|| join(|| 6 * 7, || "ok"));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
        let (a, b) = pool(1).install(|| join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.into_inner(), 8);
    }

    #[test]
    fn nested_parallelism_is_sequential_inside_workers() {
        // A worker's nested parallel op must not spawn further threads; it
        // still produces correct, ordered results.
        let out: Vec<Vec<u32>> = pool(4).install(|| {
            (0u32..8)
                .into_par_iter()
                .map(|i| (0..4).into_par_iter().map(move |j| i * 10 + j).collect())
                .collect()
        });
        assert_eq!(out[3], vec![30, 31, 32, 33]);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn sequential_fast_path_also_disables_nested_parallelism() {
        // A single-task operation takes the sequential fast path; the task
        // must still see nested parallelism disabled, exactly as it would
        // on a pool worker — otherwise a task's result could depend on how
        // many workers executed the surrounding operation.
        let seen: Vec<usize> = pool(8).install(|| {
            vec![()]
                .into_par_iter()
                .map(|()| current_num_threads())
                .collect()
        });
        assert_eq!(seen, vec![1]);
    }

    #[test]
    fn install_overrides_and_restores() {
        let outer = current_num_threads();
        pool(3).install(|| {
            assert_eq!(current_num_threads(), 3);
            pool(2).install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn builder_zero_means_default() {
        let p = ThreadPoolBuilder::new().build().unwrap();
        assert!(p.current_num_threads() >= 1);
        assert_eq!(pool(5).current_num_threads(), 5);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u8> = vec![];
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let sum: u32 = Vec::<u32>::new().into_par_iter().sum();
        assert_eq!(sum, 0);
        assert_eq!(Vec::<u32>::new().into_par_iter().fold(7, u32::max), 7);
    }

    #[test]
    #[ignore = "timing-sensitive; needs a multi-core machine (run with --ignored)"]
    fn multicore_speedup_over_sequential() {
        // CPU-bound task: fixed-iteration spin so both runs do identical
        // work. Requires ≥ 4 physical cores to show a robust speedup.
        fn spin() -> u64 {
            let mut acc = 0u64;
            for i in 0..20_000_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc)
        }
        let tasks: Vec<u32> = (0..8).collect();
        let run = |threads: usize| {
            let start = std::time::Instant::now();
            let out: Vec<u64> =
                pool(threads).install(|| tasks.par_iter().map(|_| spin()).collect());
            assert_eq!(out.len(), 8);
            start.elapsed()
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(
            t4 < t1.mul_f64(0.75),
            "expected ≥ 1.33× speedup at 4 threads: t1 = {t1:?}, t4 = {t4:?}"
        );
    }

    #[test]
    fn chunk_boundaries_depend_only_on_length() {
        for len in [0usize, 1, 63, 64, 65, 1000, 4097] {
            let items: Vec<usize> = (0..len).collect();
            let chunks = split_chunks(items);
            assert!(chunks.len() <= MAX_CHUNKS);
            let rebuilt: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(rebuilt, (0..len).collect::<Vec<_>>());
        }
    }
}
