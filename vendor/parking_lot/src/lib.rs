//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing the parking_lot calling convention (`lock()` returns
//! the guard directly, `into_inner()` returns the value directly; poisoning
//! is transparently swallowed, matching parking_lot's no-poisoning design).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a `Result` (parking_lot convention).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, returning the guard (ignores poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with the parking_lot convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
