//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream generator
//! implementing the vendored [`rand`] traits.
//!
//! This is the reference ChaCha quarter-round construction (Bernstein) with 8
//! double-rounds, a 256-bit key derived from the seed, and a 64-bit block
//! counter. It is *not* guaranteed to be bit-identical to the upstream
//! `rand_chacha` stream (the workspace never pins exact draws — only
//! determinism per seed and distribution shape), but it is a high-quality,
//! fully deterministic generator.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha with 8 rounds, seeded; implements [`RngCore`] + [`SeedableRng`].
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    /// Current 16-word output block and the next word index within it.
    block: [u32; 16],
    index: usize,
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (word, inp) in s.iter_mut().zip(input) {
            *word = word.wrapping_add(inp);
        }
        self.block = s;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks(4).enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(chunk);
            key[i] = u32::from_le_bytes(b);
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        };
        rng.refill();
        rng.index = 0;
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut c = ChaCha8Rng::seed_from_u64(10);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_looks_uniform() {
        // Crude sanity: mean of 10k f64 draws is near 0.5.
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zero_quarter_round_vector() {
        // ChaCha core on the all-zero key must differ from the input and be
        // stable across calls (regression pin of our own implementation).
        let mut a = ChaCha8Rng::from_seed([0; 32]);
        let first = a.next_u32();
        let mut b = ChaCha8Rng::from_seed([0; 32]);
        assert_eq!(first, b.next_u32());
        assert_ne!(first, 0x6170_7865);
    }
}
