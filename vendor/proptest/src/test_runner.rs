//! The deterministic generator driving strategy sampling.

/// A fast xoshiro256**-based generator, seeded from the test's full path so
/// every property test has its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a into SplitMix64 expansion).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed_u64(h)
    }

    /// Seeds from a `u64`.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix(&mut sm);
        }
        if s.iter().all(|&w| w == 0) {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next uniform 64-bit word (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, span)` (Lemire reduction); `span > 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_name_streams_differ_and_repeat() {
        let mut a = TestRng::for_test("a::b");
        let mut a2 = TestRng::for_test("a::b");
        let mut c = TestRng::for_test("a::c");
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..32).map(|_| a2.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..32).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::from_seed_u64(5);
        for span in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(r.below(span) < span);
            }
        }
    }
}
