//! Strategies: deterministic value generators with the proptest combinator
//! surface (`prop_map`, `prop_flat_map`, `prop_filter`, tuples, ranges,
//! collections, sampling).

use crate::test_runner::TestRng;

/// How many resamples `prop_filter` attempts before giving up.
const FILTER_MAX_TRIES: usize = 10_000;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strat: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { strat: self, f }
    }

    /// Resample until `pred` accepts (up to an internal retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            strat: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strat.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.strat.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    strat: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_TRIES {
            let v = self.strat.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}): predicate rejected {FILTER_MAX_TRIES} samples",
            self.whence
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain.
#[derive(Debug, Clone)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Inclusive length bounds for [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// `prop::collection::vec(elem, len)`: vectors of `elem` samples with length
/// drawn from `len`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// `prop::sample::select(options)`: a uniformly chosen element.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prop_assert, prop_assert_eq};

    fn rng() -> TestRng {
        TestRng::from_seed_u64(11)
    }

    #[test]
    fn ranges_tuples_and_maps() {
        let mut r = rng();
        let s = (1usize..=5, 0u64..10).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..200 {
            let v = s.sample(&mut r);
            assert!(v <= 14);
        }
    }

    #[test]
    fn vec_and_select_and_filter() {
        let mut r = rng();
        let s = vec(select(vec![2u64, 4, 6]), 1..=4).prop_filter("nonempty", |v| !v.is_empty());
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|x| [2, 4, 6].contains(x)));
        }
    }

    #[test]
    fn flat_map_threads_dependencies() {
        let mut r = rng();
        let s = (2usize..=8).prop_flat_map(|n| (Just(n), vec(0usize..n, 1..=3)));
        for _ in 0..100 {
            let (n, idxs) = s.sample(&mut r);
            assert!(idxs.iter().all(|&i| i < n));
        }
    }

    crate::proptest! {
        #![proptest_config(crate::ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_multiple_args(x in 0u64..100, ys in vec(1u32..=3, 0..=5)) {
            prop_assert!(x < 100);
            prop_assert!(ys.len() <= 5);
            prop_assert_eq!(ys.iter().filter(|&&y| y > 3).count(), 0);
        }
    }
}
