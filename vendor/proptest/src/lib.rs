//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map` / `prop_filter`;
//! * range strategies (`1usize..=5`, `0u64..20`, …) and tuple strategies;
//! * [`Just`](strategy::Just), [`any`](strategy::any), `prop::collection::vec`, `prop::sample::select`;
//! * the [`proptest!`] macro with `#![proptest_config(..)]` headers and
//!   `prop_assert!` / `prop_assert_eq!` assertions.
//!
//! Differences from the real crate: no shrinking (failures report the raw
//! counterexample case number and values via the panic message), and
//! generation is driven by a fixed-per-test deterministic generator, so runs
//! are bit-reproducible without a persistence file. Case counts honour
//! `ProptestConfig::with_cases`, overridable downward with the
//! `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `prop::collection` / `prop::sample` namespace, mirroring `proptest::prop`
/// as re-exported by the real prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// Run-time configuration: number of generated cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of test cases to generate.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (possibly capped by the
    /// `PROPTEST_CASES` environment variable).
    pub fn with_cases(cases: u32) -> Self {
        let cap = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(u32::MAX);
        ProptestConfig {
            cases: cases.min(cap),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// The common import surface.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Generates each `#[test]` property as a plain test running `cases`
/// deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { { $crate::ProptestConfig::default() }; $($rest)* }
    };
}

/// Internal: expands the test items of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ({ $cfg:expr }; ) => {};
    ({ $cfg:expr };
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut __proptest_rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                // Each case runs in a closure so `prop_assume!` can reject
                // the whole case (early `return None`) from any nesting depth.
                #[allow(clippy::redundant_closure_call)]
                let _ = (|| -> ::core::option::Option<()> {
                    $crate::__proptest_bind!(__proptest_rng; $($args)*);
                    $body
                    ::core::option::Option::Some(())
                })();
            }
        }
        $crate::__proptest_items! { { $cfg }; $($rest)* }
    };
}

/// Internal: binds `pat in strategy` argument lists.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Proptest-style assumption: silently rejects the current case when the
/// condition does not hold (an early return from the generated case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
}

/// Proptest-style assertion (here: a plain panic on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Proptest-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Proptest-style inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
