//! §5 end-to-end: SAT substrate → reduction gadget → schedules → extraction,
//! including the erratum certificate of the text-faithful gadget.

use msrs::multires::model::MultiMakespan;
use msrs::multires::{dpll, validate_multi, Fidelity, Monotone3Sat22, Reduction};

#[test]
fn reduction_realizes_lemma24_for_satisfiable_formulas() {
    let mut satisfiable = 0;
    for seed in 0..10u64 {
        let f = Monotone3Sat22::random(seed, 9);
        let red = Reduction::build(f.clone(), Fidelity::Repaired);

        // Always-feasible 5-schedule.
        let s5 = red.schedule_makespan5();
        assert_eq!(validate_multi(&red.instance, &s5), Ok(()));
        assert_eq!(s5.makespan_multi(&red.instance), 5);

        // 4-schedule exactly when a satisfying assignment exists.
        if let Some(asg) = dpll(&f.cnf) {
            satisfiable += 1;
            let s4 = red.schedule_makespan4(&asg).expect("constructible");
            assert_eq!(validate_multi(&red.instance, &s4), Ok(()));
            assert_eq!(s4.makespan_multi(&red.instance), 4);
            let extracted = red.extract_assignment(&s4);
            assert!(
                f.cnf.is_satisfied_by(&extracted),
                "round trip must satisfy φ"
            );
        }
    }
    assert!(
        satisfiable >= 5,
        "sampled formulas suspiciously unsatisfiable"
    );
}

#[test]
fn text_gadget_erratum_certificate() {
    for seed in 0..5u64 {
        for nx in [3usize, 6, 12] {
            let f = Monotone3Sat22::random(seed, nx);
            let red = Reduction::build(f, Fidelity::Text);
            // deficit = |C| − |X| = |X|/3 exactly.
            assert_eq!(red.capacity_deficit(), (nx / 3) as i64);
            // The 5-schedule still exists and verifies.
            let s5 = red.schedule_makespan5();
            assert_eq!(validate_multi(&red.instance, &s5), Ok(()));
        }
    }
}

#[test]
fn theorem23_shape_invariants() {
    let f = Monotone3Sat22::random(3, 12);
    for fidelity in [Fidelity::Text, Fidelity::Repaired] {
        let red = Reduction::build(f.clone(), fidelity);
        // Sizes in {1,2,3}; ≤ 3 resources per job; 2|C|+2|X| machines.
        assert!(red
            .instance
            .jobs()
            .iter()
            .all(|j| (1..=3).contains(&j.size)));
        assert!(red.instance.max_resources_per_job() <= 3);
        assert_eq!(
            red.instance.machines(),
            2 * f.num_clauses() + 2 * f.num_vars()
        );
    }
}

#[test]
fn greedy_multi_scheduler_handles_reduction_instances() {
    use msrs::multires::model::greedy_multi;
    let f = Monotone3Sat22::random(1, 6);
    let red = Reduction::build(f, Fidelity::Repaired);
    let s = greedy_multi(&red.instance);
    assert_eq!(validate_multi(&red.instance, &s), Ok(()));
    // Greedy has no guarantee here, but must stay within a small factor of
    // the 5-schedule on these structured instances.
    assert!(s.makespan_multi(&red.instance) <= 25);
}
