//! Cross-crate integration: generators → algorithms → validator → bounds →
//! exact ground truth, exercising every public entry point together.

use msrs::prelude::*;

#[test]
fn full_pipeline_over_all_generator_families() {
    let families: Vec<(&str, Instance)> = vec![
        ("uniform", msrs::gen::uniform(1, 4, 60, 10, 1, 50)),
        ("zipf", msrs::gen::zipf_classes(2, 3, 50, 8, 1, 40)),
        ("satellite", msrs::gen::satellite(3, 3, 9, 8)),
        ("photolitho", msrs::gen::photolithography(4, 4, 10, 6)),
        ("adversarial", msrs::gen::adversarial_merged_lpt(4, 25)),
        ("boundary", msrs::gen::boundary_stress(5, 3, 9, 60)),
        ("huge", msrs::gen::huge_heavy(6, 4, 4, 6, 48)),
    ];
    for (name, inst) in families {
        let t = lower_bound(&inst);
        for (algo, r) in [
            ("5/3", five_thirds(&inst)),
            ("3/2", three_halves(&inst)),
            ("merged", merged_lpt(&inst)),
            ("hebrard", hebrard_greedy(&inst)),
            ("list", list_scheduler(&inst)),
        ] {
            assert_eq!(
                validate(&inst, &r.schedule),
                Ok(()),
                "{name}/{algo} invalid"
            );
            assert!(
                r.schedule.makespan(&inst) >= t,
                "{name}/{algo} beat the lower bound"
            );
        }
        let r53 = five_thirds(&inst);
        let r32 = three_halves(&inst);
        assert!(
            3 * r53.schedule.makespan(&inst) <= (5 * r53.lower_bound.max(1)) + 5 * r53.lower_bound,
            "{name} 5/3 horizon violated"
        );
        assert!(
            2 * r32.schedule.makespan(&inst)
                <= 3 * r32.lower_bound.max(r32.schedule.makespan(&inst)),
            "{name} 3/2 horizon violated"
        );
    }
}

#[test]
fn approximations_vs_exact_on_small_random_instances() {
    for seed in 0..12u64 {
        let inst = msrs::gen::uniform(seed, 2, 7, 3, 1, 20);
        let exact = optimal(&inst, SolveLimits::default()).expect("small");
        let r53 = five_thirds(&inst);
        let r32 = three_halves(&inst);
        assert!(r53.lower_bound <= exact.makespan);
        assert!(r32.lower_bound <= exact.makespan);
        assert!(3 * r53.schedule.makespan(&inst) <= 5 * exact.makespan);
        assert!(2 * r32.schedule.makespan(&inst) <= 3 * exact.makespan);
        assert_eq!(validate(&inst, &exact.schedule), Ok(()));
    }
}

#[test]
fn eptas_pipeline_respects_exact_optimum() {
    let inst = Instance::from_classes(2, &[vec![80, 40], vec![60, 60], vec![100]]).unwrap();
    let exact = optimal(&inst, SolveLimits::default()).expect("small");
    for k in [2u64, 4] {
        let out = eptas_fixed_m(
            &inst,
            EptasConfig {
                eps_k: k,
                node_budget: 1_000_000,
            },
        );
        assert_eq!(validate(&out.instance, &out.schedule), Ok(()));
        assert!(out.makespan() >= exact.makespan);
        assert!(out.t_star <= exact.makespan || !out.guarantee_intact);
    }
    let out = eptas_augmented(
        &inst,
        EptasConfig {
            eps_k: 2,
            node_budget: 1_000_000,
        },
    );
    assert_eq!(out.instance.machines(), 3); // m + ⌊m/2⌋
    assert_eq!(validate(&out.instance, &out.schedule), Ok(()));
}

#[test]
fn gantt_rendering_works_on_pipeline_output() {
    let inst = msrs::gen::satellite(0, 3, 6, 5);
    let r = three_halves(&inst);
    let g = render_gantt(&inst, &r.schedule, 60);
    assert!(g.lines().count() >= inst.machines());
}

#[test]
fn trivial_and_degenerate_instances_across_algorithms() {
    // Empty, zero-load, single-job, per-class-machines.
    let cases = vec![
        Instance::new(2, vec![]).unwrap(),
        Instance::from_classes(3, &[vec![0, 0], vec![0]]).unwrap(),
        Instance::from_classes(1, &[vec![7]]).unwrap(),
        Instance::from_classes(5, &[vec![3, 2], vec![4]]).unwrap(),
    ];
    for inst in cases {
        for r in [
            five_thirds(&inst),
            three_halves(&inst),
            merged_lpt(&inst),
            hebrard_greedy(&inst),
            list_scheduler(&inst),
        ] {
            assert_eq!(validate(&inst, &r.schedule), Ok(()));
        }
        let out = eptas_fixed_m(&inst, EptasConfig::default());
        assert_eq!(validate(&out.instance, &out.schedule), Ok(()));
    }
}
