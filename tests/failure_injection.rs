//! Failure injection: corrupt real algorithm outputs in every way the
//! validator must catch, and check the builders' invariant panics.

use msrs::prelude::*;
use msrs_core::{Assignment, ValidationError};

fn corrupt_base() -> (Instance, Schedule) {
    let inst = msrs::gen::uniform(9, 3, 20, 5, 2, 15);
    let r = three_halves(&inst);
    assert_eq!(validate(&inst, &r.schedule), Ok(()));
    (inst, r.schedule)
}

#[test]
fn detects_injected_machine_overlap() {
    let (inst, sched) = corrupt_base();
    // Move every job to machine 0 at time 0 — guaranteed overlaps.
    let bad = Schedule::new(vec![
        Assignment {
            machine: 0,
            start: 0
        };
        inst.num_jobs()
    ]);
    assert!(matches!(
        validate(&inst, &bad),
        Err(ValidationError::MachineOverlap { .. } | ValidationError::ClassConflict { .. })
    ));
    drop(sched);
}

#[test]
fn detects_injected_class_conflict() {
    let (inst, sched) = corrupt_base();
    // Find two jobs of one class and force them concurrent on two machines.
    let class = (0..inst.num_classes())
        .find(|&c| inst.class_jobs(c).len() >= 2)
        .expect("some class has two jobs");
    let (a, b) = (inst.class_jobs(class)[0], inst.class_jobs(class)[1]);
    let mut asg = sched.assignments().to_vec();
    asg[a] = Assignment {
        machine: 0,
        start: 1_000_000,
    };
    asg[b] = Assignment {
        machine: 1,
        start: 1_000_000,
    };
    let bad = Schedule::new(asg);
    assert!(matches!(
        validate(&inst, &bad),
        Err(ValidationError::ClassConflict { .. })
    ));
}

#[test]
fn detects_out_of_range_machine() {
    let (inst, sched) = corrupt_base();
    let mut asg = sched.assignments().to_vec();
    asg[0] = Assignment {
        machine: inst.machines(),
        start: 0,
    };
    assert!(matches!(
        validate(&inst, &Schedule::new(asg)),
        Err(ValidationError::MachineOutOfRange { .. })
    ));
}

#[test]
fn detects_missing_assignments() {
    let (inst, sched) = corrupt_base();
    let mut asg = sched.assignments().to_vec();
    asg.pop();
    assert!(matches!(
        validate(&inst, &Schedule::new(asg)),
        Err(ValidationError::WrongJobCount { .. })
    ));
}

#[test]
fn builder_panics_on_horizon_overflow() {
    let inst = Instance::from_classes(1, &[vec![10, 10]]).unwrap();
    let result = std::panic::catch_unwind(|| {
        let mut b = msrs_core::ScheduleBuilder::new(&inst, 15);
        b.push_bottom(0, msrs_core::Block::whole_class(&inst, 0));
    });
    assert!(result.is_err(), "overfull push must panic");
}

#[test]
fn multires_validator_catches_resource_conflicts() {
    use msrs::multires::{validate_multi, MultiInstance, MultiJob, MultiValidationError};
    let inst = MultiInstance::new(
        2,
        vec![MultiJob::new(5, vec![0, 1]), MultiJob::new(5, vec![1, 2])],
    );
    let bad = Schedule::new(vec![
        Assignment {
            machine: 0,
            start: 0,
        },
        Assignment {
            machine: 1,
            start: 2,
        },
    ]);
    assert!(matches!(
        validate_multi(&inst, &bad),
        Err(MultiValidationError::ResourceConflict { resource: 1, .. })
    ));
}
