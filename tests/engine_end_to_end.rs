//! Facade-level engine integration: the portfolio through `msrs::prelude`,
//! cross-checked against the individual solver crates it orchestrates.

use msrs::prelude::*;

#[test]
fn engine_beats_or_matches_every_single_solver() {
    let engine = Engine::default();
    let families: Vec<(&str, Instance)> = vec![
        ("uniform", msrs::gen::uniform(21, 4, 60, 10, 1, 50)),
        ("zipf", msrs::gen::zipf_classes(22, 3, 50, 8, 1, 40)),
        ("satellite", msrs::gen::satellite(23, 3, 9, 8)),
        ("photolitho", msrs::gen::photolithography(24, 4, 10, 6)),
        ("adversarial", msrs::gen::adversarial_merged_lpt(4, 25)),
        ("boundary", msrs::gen::boundary_stress(25, 3, 9, 60)),
        ("huge", msrs::gen::huge_heavy(26, 4, 4, 6, 48)),
    ];
    for (name, inst) in families {
        let report = engine.solve_instance(&inst);
        assert_eq!(validate(&inst, &report.schedule), Ok(()), "{name}");
        for (solver, r) in [
            ("5/3", five_thirds(&inst)),
            ("3/2", three_halves(&inst)),
            ("merged", merged_lpt(&inst)),
            ("hebrard", hebrard_greedy(&inst)),
            ("list", list_scheduler(&inst)),
        ] {
            assert!(
                report.makespan <= r.schedule.makespan(&inst),
                "{name}: engine ({}) worse than {solver}",
                report.makespan
            );
        }
        assert!(report.makespan <= report.certified_horizon, "{name}");
        assert!(
            report.certified_horizon as u128 * 2 <= 3 * report.lower_bound as u128,
            "{name}: certificate looser than 1.5T"
        );
    }
}

#[test]
fn engine_matches_exact_optimum_on_small_instances() {
    let engine = Engine::default();
    let mut proven = 0;
    for (i, inst) in msrs::gen::SmallInstances::new(2, 5, 3, 3)
        .take(80)
        .enumerate()
    {
        let report = engine.solve_instance(&inst);
        let opt = optimal(&inst, SolveLimits::default())
            .expect("tiny instance")
            .makespan;
        assert_eq!(validate(&inst, &report.schedule), Ok(()), "instance {i}");
        assert_eq!(
            report.makespan, opt,
            "instance {i}: portfolio must find OPT"
        );
        if report.proven_optimal {
            proven += 1;
        }
    }
    assert!(
        proven >= 40,
        "exact member should usually finish ({proven}/80)"
    );
}

#[test]
fn jsonl_corpus_flows_through_the_engine() {
    use msrs::engine::jsonl;
    let reqs: Vec<SolveRequest> = (0..10)
        .map(|s| SolveRequest::with_id(format!("p-{s}"), msrs::gen::photolithography(s, 3, 6, 5)))
        .collect();
    let corpus = jsonl::write_corpus(&reqs);
    let parsed = jsonl::read_corpus(&corpus).expect("round trip");
    let reports = Engine::default().solve_batch(&parsed);
    assert_eq!(reports.len(), 10);
    for (req, report) in parsed.iter().zip(&reports) {
        assert_eq!(report.id, req.id);
        assert_eq!(validate(&req.instance, &report.schedule), Ok(()));
    }
}
