//! Experiments E1–E8: each regenerates one paper artifact (see crate docs).
//! All quality claims are *asserted*, so running the harness doubles as an
//! end-to-end soundness check of the whole workspace.

use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use msrs_approx::baselines::{hebrard_greedy, list_scheduler, merged_lpt};
use msrs_approx::{five_thirds, three_halves, ApproxResult};
use msrs_core::{bounds::lower_bound, frac, render::render_gantt, validate, Instance};
use msrs_exact::{optimal, optimal_configured, BoundConfig, SolveLimits};
use msrs_flow::PlaceholderProblem;
use msrs_multires::model::MultiMakespan;
use msrs_multires::{dpll, validate_multi, Fidelity, Monotone3Sat22, Reduction};
use msrs_ptas::{eptas_augmented, eptas_fixed_m, EptasConfig};

use crate::corpus::{exact_corpus, families, ptas_corpus};
use crate::table::{fmt_ratio, Table};
use crate::Scale;

type Algo = (&'static str, fn(&Instance) -> ApproxResult);

fn algos() -> Vec<Algo> {
    vec![
        ("5/3 (Thm 2)", five_thirds),
        ("3/2 (Thm 7)", three_halves),
        ("merged-LPT", merged_lpt),
        ("hebrard", hebrard_greedy),
        ("list-LPT", list_scheduler),
    ]
}

fn checked_ratio(inst: &Instance, r: &ApproxResult) -> f64 {
    assert_eq!(
        validate(inst, &r.schedule),
        Ok(()),
        "invalid schedule in experiment"
    );
    let lb = lower_bound(inst);
    if lb == 0 {
        return 1.0;
    }
    r.schedule.makespan(inst) as f64 / lb as f64
}

/// E1 — guarantee table per workload family (Thm 2 / Thm 7): worst and mean
/// `Cmax / T` over machines and seeds; asserts the 5/3 and 3/2 caps.
pub fn e1_ratio_families(scale: Scale) -> Table {
    let mut t = Table::new(
        "E1: Cmax/T per workload family (Thm 2 & Thm 7 guarantees)",
        &["family", "algo", "worst", "mean", "runs"],
    );
    for (family, gen) in families() {
        let configs: Vec<(u64, usize)> = (0..scale.seeds)
            .flat_map(|s| [2usize, 4, 8, 16].map(|m| (s, m)))
            .collect();
        for (name, algo) in algos() {
            let ratios: Vec<f64> = configs
                .par_iter()
                .map(move |(seed, m)| {
                    let inst = gen(seed, m);
                    let r = algo(&inst);
                    let ratio = checked_ratio(&inst, &r);
                    if name.starts_with("5/3") {
                        let cap = frac::floor_mul(5, 3, r.lower_bound).max(r.lower_bound);
                        assert!(r.schedule.makespan(&inst) <= cap, "5/3 bound violated");
                    }
                    if name.starts_with("3/2") {
                        let cap = frac::floor_mul(3, 2, r.lower_bound).max(r.lower_bound);
                        assert!(r.schedule.makespan(&inst) <= cap, "3/2 bound violated");
                    }
                    ratio
                })
                .collect();
            let worst = ratios.iter().cloned().fold(0.0, f64::max);
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            t.row(vec![
                family.into(),
                name.into(),
                fmt_ratio(worst),
                fmt_ratio(mean),
                ratios.len().to_string(),
            ]);
        }
    }
    t.note("ratios are against the combined lower bound T ≤ OPT (upper bounds on true ratios)");
    t
}

/// E2 — ratio vs m (the paper's "better than 2m/(m+1) already for 6 resp. 4
/// machines"): worst observed ratios on the adversarial + uniform families,
/// next to the three guarantee curves.
pub fn e2_ratio_vs_m(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2: worst Cmax/T vs m (crossover against 2m/(m+1))",
        &[
            "m",
            "2m/(m+1)",
            "5/3 obs",
            "3/2 obs",
            "mergedLPT obs",
            "hebrard obs",
            "list obs",
        ],
    );
    for m in 2..=12usize {
        let mut insts: Vec<Instance> = vec![msrs_gen::adversarial_merged_lpt(m, 60)];
        for seed in 0..scale.seeds {
            insts.push(msrs_gen::uniform(seed, m, 30 * m, 4 * m, 1, 60));
            insts.push(msrs_gen::zipf_classes(seed, m, 30 * m, 4 * m, 1, 60));
        }
        // Index fan-out over an Arc'd corpus: pool tasks are 'static, and
        // sharing beats cloning every instance once per algorithm.
        let insts = Arc::new(insts);
        let worst = |algo: fn(&Instance) -> ApproxResult| -> f64 {
            let insts = Arc::clone(&insts);
            (0..insts.len())
                .into_par_iter()
                .map(move |i| checked_ratio(&insts[i], &algo(&insts[i])))
                .fold(0.0, f64::max)
        };
        let guarantee = 2.0 * m as f64 / (m as f64 + 1.0);
        let w53 = worst(five_thirds);
        let w32 = worst(three_halves);
        assert!(w53 <= 5.0 / 3.0 + 1e-9);
        assert!(w32 <= 1.5 + 1e-9);
        t.row(vec![
            m.to_string(),
            fmt_ratio(guarantee),
            fmt_ratio(w53),
            fmt_ratio(w32),
            fmt_ratio(worst(merged_lpt)),
            fmt_ratio(worst(hebrard_greedy)),
            fmt_ratio(worst(list_scheduler)),
        ]);
    }
    t.note("guarantee crossovers: 5/3 < 2m/(m+1) for m ≥ 6; 3/2 < 2m/(m+1) for m ≥ 4");
    t.note("merged-LPT hits exactly 2m/(m+1) on the adversarial family");
    t
}

/// E3 — runtime scaling (Thm 2: O(|I|); Thm 7: O(n + m log m)): wall-clock
/// per n, with the per-job normalization that should stay ~flat.
pub fn e3_runtime_scaling(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3: runtime scaling (linear-time claims of Thm 2 / Thm 7)",
        &["n", "algo", "ms", "ns/job"],
    );
    let mut n = 1000usize;
    while n <= scale.big_n {
        let inst = msrs_gen::uniform(7, 32, n, n / 10 + 1, 1, 1000);
        for (name, algo) in [
            ("5/3", five_thirds as fn(&Instance) -> ApproxResult),
            ("3/2", three_halves),
        ] {
            let start = Instant::now();
            let r = algo(&inst);
            let elapsed = start.elapsed();
            assert_eq!(validate(&inst, &r.schedule), Ok(()));
            t.row(vec![
                n.to_string(),
                name.into(),
                format!("{:.2}", elapsed.as_secs_f64() * 1e3),
                format!("{:.0}", elapsed.as_nanos() as f64 / n as f64),
            ]);
        }
        n *= 10;
    }
    t.note("ns/job should stay roughly constant (linear-time algorithms)");
    t
}

/// E4 — empirical ratios against exact OPT on an exhaustive small corpus.
pub fn e4_exact_smallscale(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4: Cmax/OPT on small instances (exact branch-and-bound ground truth)",
        &["algo", "worst", "mean", "optimal%", "instances"],
    );
    let corpus = exact_corpus(scale.exact_cap);
    let opts: Arc<Vec<(Instance, u64)>> = Arc::new(
        corpus
            .into_par_iter()
            .filter_map(|inst| {
                optimal(
                    &inst,
                    SolveLimits {
                        max_nodes: 3_000_000,
                    },
                )
                .map(|r| (inst, r.makespan))
            })
            .collect(),
    );
    for (name, algo) in algos() {
        let shared = Arc::clone(&opts);
        let ratios: Vec<f64> = (0..opts.len())
            .into_par_iter()
            .map(move |i| {
                let (inst, opt) = &shared[i];
                let (inst, opt) = (inst, *opt);
                let r = algo(inst);
                assert_eq!(validate(inst, &r.schedule), Ok(()));
                let c = r.schedule.makespan(inst);
                assert!(c >= opt, "{name} beat the optimum?!");
                if name.starts_with("5/3") {
                    assert!(3 * c <= 5 * opt, "5/3 vs OPT violated");
                }
                if name.starts_with("3/2") {
                    assert!(2 * c <= 3 * opt, "3/2 vs OPT violated");
                }
                if opt == 0 {
                    1.0
                } else {
                    c as f64 / opt as f64
                }
            })
            .collect();
        let worst = ratios.iter().cloned().fold(0.0, f64::max);
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let optimal_pct = 100.0 * ratios.iter().filter(|&&r| r <= 1.0 + 1e-12).count() as f64
            / ratios.len() as f64;
        t.row(vec![
            name.into(),
            fmt_ratio(worst),
            fmt_ratio(mean),
            format!("{optimal_pct:.1}"),
            ratios.len().to_string(),
        ]);
    }
    t
}

/// E5 — the approximation schemes (Thm 14): quality vs ε for both variants,
/// with machine usage for the augmentation variant.
pub fn e5_ptas(_scale: Scale) -> Table {
    let mut t = Table::new(
        "E5: EPTAS quality vs ε (Thm 14, both variants) against exact OPT",
        &[
            "variant",
            "eps",
            "worst",
            "mean",
            "mach used/avail",
            "intact%",
        ],
    );
    let corpus: Arc<Vec<(Instance, u64)>> = Arc::new(
        ptas_corpus()
            .into_par_iter()
            .map(|inst| {
                let opt = optimal(&inst, SolveLimits::default())
                    .expect("small")
                    .makespan;
                (inst, opt)
            })
            .collect(),
    );
    for k in [2u64, 3, 4, 6] {
        for augmented in [false, true] {
            // One EPTAS run per corpus entry, fanned out on the pool (index
            // fan-out over the Arc'd corpus); per-instance results come
            // back in corpus order, so the aggregation below is
            // deterministic.
            let shared = Arc::clone(&corpus);
            let runs: Vec<(f64, usize, usize, bool)> = (0..corpus.len())
                .into_par_iter()
                .map(move |i| {
                    let (inst, opt) = &shared[i];
                    let cfg = EptasConfig {
                        eps_k: k,
                        node_budget: 2_000_000,
                    };
                    let out = if augmented {
                        eptas_augmented(inst, cfg)
                    } else {
                        eptas_fixed_m(inst, cfg)
                    };
                    assert_eq!(validate(&out.instance, &out.schedule), Ok(()));
                    if !augmented {
                        assert_eq!(out.instance.machines(), inst.machines());
                    }
                    (
                        out.makespan() as f64 / *opt as f64,
                        out.schedule.machines_used(&out.instance),
                        out.instance.machines(),
                        out.guarantee_intact,
                    )
                })
                .collect();
            let mut ratios = Vec::new();
            let mut used = 0usize;
            let mut avail = 0usize;
            let mut intact = 0usize;
            for (ratio, u, a, ok) in runs {
                ratios.push(ratio);
                used += u;
                avail += a;
                intact += usize::from(ok);
            }
            let worst = ratios.iter().cloned().fold(0.0, f64::max);
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            assert!(worst <= 1.0 + 8.0 / k as f64, "EPTAS envelope violated");
            t.row(vec![
                if augmented {
                    "augmented".into()
                } else {
                    "fixed-m".to_string()
                },
                format!("1/{k}"),
                fmt_ratio(worst),
                fmt_ratio(mean),
                format!("{used}/{avail}"),
                format!("{:.0}", 100.0 * intact as f64 / corpus.len() as f64),
            ]);
        }
    }
    t.note("augmented variant may use up to ⌊(1+ε)m⌋ machines (Thm 14)");
    t
}

/// E6 — Figures 1–4: canonical instances forcing each algorithm phase, with
/// the resulting ASCII Gantt charts. Returns the rendered report.
pub fn e6_algorithm_steps(_scale: Scale) -> String {
    let mut out = String::new();
    let mut show = |title: &str, inst: &Instance, r: &ApproxResult| {
        assert_eq!(validate(inst, &r.schedule), Ok(()));
        out.push_str(&format!(
            "\n-- {title} (T={}, horizon={}, Cmax={}) --\n",
            r.lower_bound,
            r.horizon,
            r.schedule.makespan(inst)
        ));
        out.push_str(&render_gantt(inst, &r.schedule, 64));
    };

    // Figure 1: the three steps of Algorithm_5/3 — big-job classes, a large
    // class that must split, then greedy filling.
    let f1 = Instance::from_classes(2, &[vec![9, 8], vec![5, 5, 5], vec![2], vec![1, 1]]).unwrap();
    show(
        "Figure 1: Algorithm_5/3 steps (split + delay)",
        &f1,
        &five_thirds(&f1),
    );

    // Figure 2: Algorithm_no_huge Steps 2–5 (pairing mids, 4-heavy packing).
    let f2 = Instance::from_classes(
        4,
        &[vec![4, 3], vec![4, 3], vec![4, 3], vec![4, 3], vec![2, 2]],
    )
    .unwrap();
    show(
        "Figure 2: Algorithm_no_huge Step 3 (four ≥3/4-classes on three machines)",
        &f2,
        &three_halves(&f2),
    );

    // Figure 3: Step 6/7 cases — three heavy classes with big hats.
    let f3 = Instance::from_classes(3, &[vec![5, 3], vec![5, 3], vec![5, 3], vec![2, 2]]).unwrap();
    show(
        "Figure 3: Algorithm_no_huge Step 7 (three ≥3/4-classes)",
        &f3,
        &three_halves(&f3),
    );

    // Figure 4: general Algorithm_3/2 — huge machines absorbing classes
    // (Steps 4, 6, 8) and the rotation (Steps 5/10).
    let f4 =
        Instance::from_classes(4, &[vec![11], vec![11], vec![5, 4], vec![5, 4], vec![2]]).unwrap();
    show(
        "Figure 4: Algorithm_3/2 Step 8 (two huge machines + two heavy classes)",
        &f4,
        &three_halves(&f4),
    );

    let f5 = Instance::from_classes(2, &[vec![9], vec![4, 3], vec![2]]).unwrap();
    show(
        "Figure 4 (cont.): Algorithm_3/2 Step 5 rotation",
        &f5,
        &three_halves(&f5),
    );
    out
}

/// E7 — Figure 5: the class/layer placeholder flow network — sizes, flow
/// value = total demand, and the integral round trip, over random fractional
/// placements.
pub fn e7_flow_network(scale: Scale) -> Table {
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    let mut t = Table::new(
        "E7: Lemma 18 / Figure 5 placeholder flow networks",
        &[
            "classes",
            "layers",
            "demand",
            "flow=demand",
            "roundtrip ok",
            "runs",
        ],
    );
    for (classes, layers) in [(4usize, 6usize), (8, 10), (16, 16), (32, 24)] {
        let mut ok = 0usize;
        let mut runs = 0usize;
        let mut total_demand = 0u64;
        for seed in 0..scale.seeds.max(4) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed * 1000 + classes as u64);
            let mut lambda = vec![vec![0.0f64; layers]; classes];
            for row in lambda.iter_mut() {
                let demand = rng.random_range(0..=(layers as u64) / 2);
                let mut rem = demand as f64;
                let mut order: Vec<usize> = (0..layers).collect();
                order.shuffle(&mut rng);
                for &l in &order {
                    if rem <= 0.0 {
                        break;
                    }
                    let amt = if rem >= 1.0 { 1.0 } else { rem };
                    row[l] = amt;
                    rem -= amt;
                }
            }
            let prob = PlaceholderProblem::from_fractional(&lambda);
            total_demand += prob.total_demand();
            let asg = prob.solve().expect("Lemma 18 rounding must exist");
            if prob.check(&asg) {
                ok += 1;
            }
            runs += 1;
        }
        t.row(vec![
            classes.to_string(),
            layers.to_string(),
            (total_demand / runs as u64).to_string(),
            "yes".into(),
            format!("{ok}/{runs}"),
            runs.to_string(),
        ]);
        assert_eq!(ok, runs, "integral rounding failed");
    }
    t
}

/// E8 — Theorem 23 / Lemma 24 / Figure 6: the SAT reduction. For sampled
/// Monotone 3-SAT-(2,2) formulas: satisfiability, the constructed makespan
/// (4 iff satisfiable on the repaired gadget, 5 otherwise), the assignment
/// round trip, and the text-gadget capacity deficit (the erratum).
pub fn e8_reduction(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8: Monotone 3-SAT-(2,2) reduction (Thm 23 / Lemma 24 / Fig 6)",
        &[
            "|X|",
            "|C|",
            "machines",
            "sat%",
            "mk4 ok%",
            "mk5 ok%",
            "deficit(text)",
        ],
    );
    for nx in [3usize, 6, 9, 12, 18, 24, 30] {
        // One reduction round trip per seed, fanned out on the pool; each
        // task carries its own assertions and the per-seed facts come back
        // in seed order for deterministic aggregation.
        let per_seed: Vec<(usize, i64, usize, bool)> = (0..scale.seeds.max(4))
            .into_par_iter()
            .map(move |seed| {
                let f = Monotone3Sat22::random(seed, nx);
                let nc = f.num_clauses();
                let text = Reduction::build(f.clone(), Fidelity::Text);
                let deficit = text.capacity_deficit();
                assert!(deficit > 0, "erratum certificate must be positive");
                let red = Reduction::build(f.clone(), Fidelity::Repaired);
                let machines = red.instance.machines();
                let s5 = red.schedule_makespan5();
                assert_eq!(validate_multi(&red.instance, &s5), Ok(()));
                assert_eq!(s5.makespan_multi(&red.instance), 5);
                let satisfiable = if let Some(asg) = dpll(&f.cnf) {
                    let s4 = red.schedule_makespan4(&asg).expect("satisfying assignment");
                    assert_eq!(validate_multi(&red.instance, &s4), Ok(()));
                    assert_eq!(s4.makespan_multi(&red.instance), 4);
                    assert_eq!(red.extract_assignment(&s4), asg, "round trip failed");
                    true
                } else {
                    false
                };
                (nc, deficit, machines, satisfiable)
            })
            .collect();
        let mut sat = 0usize;
        let mut mk4 = 0usize;
        let mut mk5 = 0usize;
        let mut runs = 0usize;
        let mut deficit = 0i64;
        let mut nc = 0usize;
        let mut machines = 0usize;
        for (seed_nc, seed_deficit, seed_machines, satisfiable) in per_seed {
            nc = seed_nc;
            deficit = seed_deficit;
            machines = seed_machines;
            mk5 += 1;
            if satisfiable {
                sat += 1;
                mk4 += 1;
            }
            runs += 1;
        }
        let pct = |x: usize| format!("{:.0}", 100.0 * x as f64 / runs as f64);
        t.row(vec![
            nx.to_string(),
            nc.to_string(),
            machines.to_string(),
            pct(sat),
            pct(mk4),
            pct(mk5),
            deficit.to_string(),
        ]);
    }
    t.note("deficit(text) = load − 4·machines > 0: the printed gadget cannot reach makespan 4 (see DESIGN.md erratum)");
    t.note("mk4 is constructed on the capacity-repaired gadget for every satisfiable formula");
    t
}

/// E9 — ablations of the design choices DESIGN.md calls out:
/// (a) exact-solver pruning bounds (node counts with each bound disabled);
/// (b) the list scheduler's tie-break rule (job-id starves the adversarial
///     family, remaining-load interleaves it);
/// (c) EPTAS node-budget sensitivity (guarantee intact vs degraded).
pub fn e9_ablations(_scale: Scale) -> Table {
    let mut t = Table::new(
        "E9: ablations (pruning bounds, tie-breaks, EPTAS budget)",
        &["ablation", "config", "metric", "value"],
    );

    // (a) Exact-solver bound ablation. Both instances have lower bound < OPT
    // so the incumbent cannot short-circuit and the search must prove
    // optimality.
    let gap_instances = [
        (
            "7 singleton jobs",
            Instance::from_classes(
                2,
                &[
                    vec![4],
                    vec![4],
                    vec![4],
                    vec![4],
                    vec![4],
                    vec![3],
                    vec![3],
                ],
            )
            .unwrap(),
        ),
        (
            "conflict mix",
            Instance::from_classes(
                2,
                &[vec![4, 4], vec![4], vec![4], vec![4], vec![3], vec![3]],
            )
            .unwrap(),
        ),
    ];
    let configs = [
        (
            "area+class+sym",
            BoundConfig {
                area: true,
                class_serialization: true,
                symmetry: true,
            },
        ),
        (
            "area+class",
            BoundConfig {
                area: true,
                class_serialization: true,
                symmetry: false,
            },
        ),
        (
            "area only",
            BoundConfig {
                area: true,
                class_serialization: false,
                symmetry: false,
            },
        ),
        (
            "class only",
            BoundConfig {
                area: false,
                class_serialization: true,
                symmetry: false,
            },
        ),
        (
            "none",
            BoundConfig {
                area: false,
                class_serialization: false,
                symmetry: false,
            },
        ),
    ];
    // The measured quantity is the node count, which is only reproducible
    // when the search runs single-threaded (parallel root branches race on
    // the shared incumbent, making pruning order timing-dependent) — pin
    // this ablation to one thread.
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    for (iname, inst) in &gap_instances {
        let mut reference = None;
        for (name, cfg) in configs {
            let r = one
                .install(|| {
                    optimal_configured(
                        inst,
                        SolveLimits {
                            max_nodes: 200_000_000,
                        },
                        cfg,
                    )
                })
                .expect("within budget");
            if let Some(opt) = reference {
                assert_eq!(r.makespan, opt, "bound ablation changed the optimum");
            }
            reference = Some(r.makespan);
            t.row(vec![
                format!("exact bounds: {iname}"),
                name.into(),
                "B&B nodes".into(),
                r.nodes.to_string(),
            ]);
        }
    }

    // (b) List-scheduler tie-break ablation.
    for m in [4usize, 8] {
        let inst = msrs_gen::adversarial_merged_lpt(m, 60);
        let lb = lower_bound(&inst) as f64;
        let naive = msrs_approx::baselines::list_scheduler_naive(&inst);
        let smart = list_scheduler(&inst);
        assert_eq!(validate(&inst, &naive.schedule), Ok(()));
        t.row(vec![
            format!("tie-break m={m}"),
            "job-id (naive)".into(),
            "Cmax/T".into(),
            fmt_ratio(naive.schedule.makespan(&inst) as f64 / lb),
        ]);
        t.row(vec![
            format!("tie-break m={m}"),
            "remaining-load".into(),
            "Cmax/T".into(),
            fmt_ratio(smart.schedule.makespan(&inst) as f64 / lb),
        ]);
    }

    // (c) EPTAS node-budget sensitivity.
    let inst = crate::corpus::ptas_corpus().remove(4);
    for budget in [20_000u64, 200_000, 2_000_000] {
        let out = eptas_fixed_m(
            &inst,
            EptasConfig {
                eps_k: 4,
                node_budget: budget,
            },
        );
        assert_eq!(validate(&out.instance, &out.schedule), Ok(()));
        t.row(vec![
            "eptas budget".into(),
            format!("{budget} nodes"),
            "Cmax (intact?)".into(),
            format!("{} ({})", out.makespan(), out.guarantee_intact),
        ]);
    }
    t.note("(a) node counts: both bounds together prune orders of magnitude");
    t.note("(b) the naive tie-break starves the (m+1)-th class toward 2m/(m+1)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_smoke() {
        let t = e1_ratio_families(Scale::smoke());
        assert!(t.len() >= 7 * 5);
    }

    #[test]
    fn e2_smoke() {
        let t = e2_ratio_vs_m(Scale::smoke());
        assert_eq!(t.len(), 11);
    }

    #[test]
    fn e3_smoke() {
        let t = e3_runtime_scaling(Scale::smoke());
        assert!(!t.is_empty());
    }

    #[test]
    fn e4_smoke() {
        let t = e4_exact_smallscale(Scale::smoke());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn e5_smoke() {
        let t = e5_ptas(Scale::smoke());
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn e6_smoke() {
        let s = e6_algorithm_steps(Scale::smoke());
        assert!(s.contains("Figure 1"));
        assert!(s.contains("Figure 4"));
    }

    #[test]
    fn e7_smoke() {
        let t = e7_flow_network(Scale::smoke());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn e8_smoke() {
        let t = e8_reduction(Scale::smoke());
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn e9_smoke() {
        let t = e9_ablations(Scale::smoke());
        assert!(t.len() >= 10);
    }
}
