//! Named instance corpora shared by the experiments.

use msrs_core::Instance;

/// A named generator family (seeded, parameterized by machine count).
pub type Family = (&'static str, fn(u64, usize) -> Instance);

/// The generator families of E1: the engine's canonical family registry
/// (`msrs_engine::families::FAMILIES`), so the experiments, the `msrs` CLI,
/// and the engine tests all measure the same corpora under the same names.
pub fn families() -> Vec<Family> {
    msrs_engine::families::FAMILIES
        .iter()
        .map(|spec| (spec.name, spec.generate))
        .collect()
}

/// Small-instance corpus for the exact-OPT experiment (E4): an exhaustive
/// canonical sweep capped at `cap` instances per machine count.
pub fn exact_corpus(cap: usize) -> Vec<Instance> {
    let mut out = Vec::new();
    for m in [2usize, 3] {
        out.extend(msrs_gen::SmallInstances::new(m, 6, 4, 3).take(cap / 2));
    }
    // Plus random small instances with larger sizes.
    for seed in 0..(cap / 20).max(4) as u64 {
        out.push(msrs_gen::uniform(seed, 2, 7, 3, 1, 30));
        out.push(msrs_gen::uniform(seed, 3, 8, 4, 1, 25));
    }
    out
}

/// Structured instances for the PTAS experiment (E5): sizes large enough
/// that the additive layer slack is second-order, small enough for the exact
/// ground truth.
pub fn ptas_corpus() -> Vec<Instance> {
    vec![
        Instance::from_classes(2, &[vec![80, 40], vec![60, 60], vec![100]]).unwrap(),
        Instance::from_classes(2, &[vec![120], vec![90, 30], vec![60, 60]]).unwrap(),
        Instance::from_classes(3, &[vec![100], vec![100], vec![100], vec![50, 50]]).unwrap(),
        Instance::from_classes(2, &[vec![70, 70], vec![70], vec![70]]).unwrap(),
        Instance::from_classes(3, &[vec![90, 30], vec![80, 40], vec![60, 60], vec![120]]).unwrap(),
        Instance::from_classes(
            3,
            &[vec![110, 10], vec![60, 60], vec![40, 40, 40], vec![90]],
        )
        .unwrap(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_generate_nonempty_instances() {
        for (name, f) in families() {
            let inst = f(1, 4);
            assert!(inst.num_jobs() > 0, "{name} generated an empty instance");
            assert_eq!(inst.machines(), 4, "{name} wrong machine count");
        }
    }

    #[test]
    fn exact_corpus_is_bounded_and_small() {
        let c = exact_corpus(100);
        assert!(!c.is_empty());
        assert!(c.iter().all(|i| i.num_jobs() <= 8));
    }

    #[test]
    fn ptas_corpus_is_well_formed() {
        for inst in ptas_corpus() {
            assert!(inst.num_jobs() >= 3);
            assert!(inst.machines() >= 2);
        }
    }
}
