//! Minimal aligned-text table formatting for the experiment reports.

/// A simple text table with a title, a header row, and data rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a free-form note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().max(4)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

/// Formats a ratio with three decimals.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1.000".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(1.5), "1.500");
        assert_eq!(fmt_ratio(2.0 / 3.0), "0.667");
    }
}
