//! Experiment runner: regenerates every paper artifact as a table.
//!
//! ```text
//! cargo run -p msrs-bench --bin experiments --release            # all
//! cargo run -p msrs-bench --bin experiments --release -- e2 e5  # subset
//! cargo run -p msrs-bench --bin experiments --release -- --smoke
//! ```

use msrs_bench::{experiments as ex, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let wanted: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| a.starts_with('e'))
        .collect();
    let run = |name: &str| wanted.is_empty() || wanted.contains(&name);

    println!("msrs experiment harness — reproduces the artifacts of");
    println!("\"Scheduling with Many Shared Resources\" (Deppert et al., 2023)");

    if run("e1") {
        println!("{}", ex::e1_ratio_families(scale).render());
    }
    if run("e2") {
        println!("{}", ex::e2_ratio_vs_m(scale).render());
    }
    if run("e3") {
        println!("{}", ex::e3_runtime_scaling(scale).render());
    }
    if run("e4") {
        println!("{}", ex::e4_exact_smallscale(scale).render());
    }
    if run("e5") {
        println!("{}", ex::e5_ptas(scale).render());
    }
    if run("e6") {
        println!("\n== E6: algorithm-step anatomy (Figures 1–4) ==");
        println!("{}", ex::e6_algorithm_steps(scale));
    }
    if run("e7") {
        println!("{}", ex::e7_flow_network(scale).render());
    }
    if run("e8") {
        println!("{}", ex::e8_reduction(scale).render());
    }
    if run("e9") {
        println!("{}", ex::e9_ablations(scale).render());
    }
    println!("\nall requested experiments completed (all embedded assertions held)");
}
