//! # msrs-bench — the experiment harness
//!
//! The paper is a theory paper: its "evaluation" is the set of proven
//! guarantees plus six structural figures. This crate regenerates each of
//! them empirically (experiments E1–E8, see DESIGN.md §4):
//!
//! | Exp | Paper artifact | Harness output |
//! |-----|----------------|----------------|
//! | E1  | Thm 2 / Thm 7 guarantees | ratio tables per workload family |
//! | E2  | "beats 2m/(m+1) from m = 6 / m = 4 on" | ratio-vs-m series |
//! | E3  | `O(|I|)` and `O(n + m log m)` running times | runtime scaling |
//! | E4  | approximation ratios | ratios vs exact OPT (small instances) |
//! | E5  | Thm 14 (EPTAS variants) | quality vs ε, machines used |
//! | E6  | Figures 1–4 | per-step schedule anatomy (ASCII Gantt) |
//! | E7  | Figure 5 | placeholder flow-network statistics |
//! | E8  | Thm 23 / Lemma 24 / Fig 6 | reduction: SAT ⇒ 4 vs 5 tables |
//!
//! Run `cargo run -p msrs-bench --bin experiments --release [-- e1 e5 …]`
//! for the tables and `cargo bench -p msrs-bench` for the Criterion timings.

#![forbid(unsafe_code)]

pub mod corpus;
pub mod experiments;
pub mod table;

/// Scale knob so the test-suite can exercise every experiment cheaply while
/// the binary runs the full size.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Random seeds per configuration.
    pub seeds: u64,
    /// "Large" instance size used by scaling experiments.
    pub big_n: usize,
    /// Exact-solver corpus cap.
    pub exact_cap: usize,
}

impl Scale {
    /// Full experiment scale (the binary).
    pub fn full() -> Self {
        Scale {
            seeds: 12,
            big_n: 200_000,
            exact_cap: 4000,
        }
    }

    /// Smoke-test scale (CI).
    pub fn smoke() -> Self {
        Scale {
            seeds: 2,
            big_n: 5_000,
            exact_cap: 120,
        }
    }
}
