//! E1 (timing side): throughput of the 5/3- and 3/2-approximations across
//! the workload families of the quality table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_families");
    group.sample_size(20);
    for (family, gen) in msrs_bench::corpus::families() {
        let inst = gen(7, 8);
        group.bench_with_input(BenchmarkId::new("five_thirds", family), &inst, |b, i| {
            b.iter(|| msrs_approx::five_thirds(black_box(i)))
        });
        group.bench_with_input(BenchmarkId::new("three_halves", family), &inst, |b, i| {
            b.iter(|| msrs_approx::three_halves(black_box(i)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
