//! E6 (timing side): schedule-construction substrate throughput — exact
//! validation at scale (the machinery behind the Figure 1–4 anatomy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msrs_core::validate;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_substrate");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let inst = msrs_gen::uniform(3, 16, n, n / 8 + 1, 1, 50);
        let sched = msrs_approx::three_halves(&inst).schedule;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("validate", n),
            &(&inst, &sched),
            |b, (i, s)| b.iter(|| validate(black_box(i), black_box(s))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
