//! E4 (timing side): the exact branch-and-bound on representative small
//! instances (the ground-truth generator of the ratio table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msrs_core::Instance;
use msrs_exact::{optimal, SolveLimits};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_exact");
    group.sample_size(10);
    let instances = vec![
        (
            "6 jobs tight",
            Instance::from_classes(2, &[vec![4, 3], vec![5, 2], vec![3, 3]]).unwrap(),
        ),
        (
            "8 jobs",
            Instance::from_classes(2, &[vec![7, 5], vec![6, 4], vec![5, 3], vec![4, 2]]).unwrap(),
        ),
        (
            "9 jobs 3m",
            Instance::from_classes(3, &[vec![5, 4], vec![5, 3], vec![4, 3], vec![6, 2, 1]])
                .unwrap(),
        ),
    ];
    for (name, inst) in &instances {
        group.bench_with_input(BenchmarkId::new("bnb", name), inst, |b, i| {
            b.iter(|| optimal(black_box(i), SolveLimits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
