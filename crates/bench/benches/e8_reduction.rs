//! E8 (timing side): reduction construction, DPLL, and the makespan-4
//! schedule build at growing formula sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msrs_multires::{dpll, Fidelity, Monotone3Sat22, Reduction};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_reduction");
    group.sample_size(10);
    for nx in [12usize, 30, 60] {
        let f = Monotone3Sat22::random(5, nx);
        group.bench_with_input(BenchmarkId::new("dpll", nx), &f, |b, f| {
            b.iter(|| dpll(black_box(&f.cnf)))
        });
        group.bench_with_input(BenchmarkId::new("build", nx), &f, |b, f| {
            b.iter(|| Reduction::build(black_box(f.clone()), Fidelity::Repaired))
        });
        if let Some(asg) = dpll(&f.cnf) {
            let red = Reduction::build(f.clone(), Fidelity::Repaired);
            group.bench_with_input(
                BenchmarkId::new("makespan4", nx),
                &(red, asg),
                |b, (red, asg)| b.iter(|| red.schedule_makespan4(black_box(asg))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
