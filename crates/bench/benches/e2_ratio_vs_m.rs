//! E2 (timing side): all five algorithms on the adversarial `2m/(m+1)`
//! family at m = 8.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = msrs_gen::adversarial_merged_lpt(8, 60);
    let mut group = c.benchmark_group("e2_adversarial_m8");
    group.sample_size(20);
    group.bench_function("five_thirds", |b| {
        b.iter(|| msrs_approx::five_thirds(black_box(&inst)))
    });
    group.bench_function("three_halves", |b| {
        b.iter(|| msrs_approx::three_halves(black_box(&inst)))
    });
    group.bench_function("merged_lpt", |b| {
        b.iter(|| msrs_approx::baselines::merged_lpt(black_box(&inst)))
    });
    group.bench_function("hebrard_greedy", |b| {
        b.iter(|| msrs_approx::baselines::hebrard_greedy(black_box(&inst)))
    });
    group.bench_function("list_scheduler", |b| {
        b.iter(|| msrs_approx::baselines::list_scheduler(black_box(&inst)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
