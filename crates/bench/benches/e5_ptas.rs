//! E5 (timing side): the EPTAS pipeline end-to-end at several ε, both
//! variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msrs_ptas::{eptas_augmented, eptas_fixed_m, EptasConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_eptas");
    group.sample_size(10);
    let inst = msrs_bench::corpus::ptas_corpus().remove(0);
    for k in [2u64, 3, 4] {
        let cfg = EptasConfig {
            eps_k: k,
            node_budget: 500_000,
        };
        group.bench_with_input(BenchmarkId::new("fixed_m", k), &inst, |b, i| {
            b.iter(|| eptas_fixed_m(black_box(i), cfg))
        });
        group.bench_with_input(BenchmarkId::new("augmented", k), &inst, |b, i| {
            b.iter(|| eptas_augmented(black_box(i), cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
