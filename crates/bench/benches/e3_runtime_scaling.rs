//! E3: the linear-time claims — runtime vs n for Theorem 2 (`O(|I|)`) and
//! Theorem 7 (`O(n + m log m)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_scaling");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let inst = msrs_gen::uniform(7, 32, n, n / 10 + 1, 1, 1000);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("five_thirds", n), &inst, |b, i| {
            b.iter(|| msrs_approx::five_thirds(black_box(i)))
        });
        group.bench_with_input(BenchmarkId::new("three_halves", n), &inst, |b, i| {
            b.iter(|| msrs_approx::three_halves(black_box(i)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
