//! E7 (timing side): Dinic on Figure 5 placeholder networks of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msrs_flow::PlaceholderProblem;
use std::hint::black_box;

fn make(classes: usize, layers: usize) -> PlaceholderProblem {
    // Dense allowed-matrix with demand ~ layers/2 per class.
    PlaceholderProblem {
        demand: vec![(layers / 2) as u64; classes],
        allowed: vec![vec![true; layers]; classes],
        slots: vec![classes as u64; layers],
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_flow");
    group.sample_size(20);
    for (classes, layers) in [(8usize, 12usize), (32, 24), (128, 48)] {
        let prob = make(classes, layers);
        let id = format!("{classes}x{layers}");
        group.bench_with_input(BenchmarkId::new("solve", id), &prob, |b, p| {
            b.iter(|| black_box(p).solve())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
