//! # msrs-gen — workload generators for MSRS
//!
//! Deterministic (seeded) instance families used by the test suite and the
//! experiment harness:
//!
//! * [`uniform`] — jobs with uniform sizes spread over `k` classes.
//! * [`zipf_classes`] — heavy-tailed class cardinalities (a few hot resources).
//! * [`satellite`] — the Earth-observation download scenario motivating the
//!   problem in Hebrard et al.: satellites are the shared resources, ground
//!   stations the machines, and each satellite holds a burst of downloads.
//! * [`photolithography`] — the semiconductor scenario of Janssen et al.:
//!   reticles are the shared resources, steppers the machines; bimodal
//!   (setup/exposure) processing times.
//! * [`adversarial_merged_lpt`] — the classic family on which class-merging +
//!   LPT degenerates towards its `2m/(m+1)` worst case while OPT interleaves.
//! * [`boundary_stress`] — sizes planted exactly on the `T/4, T/2, 2T/3, 3T/4`
//!   thresholds of the 5/3- and 3/2-algorithms' case analysis.
//! * [`huge_heavy`] — many classes containing a job `> (3/4)·T` to exercise
//!   the `Algorithm_3/2` general-case steps.
//! * [`traffic`] — duplicate-heavy repeated traffic: seeds quantized into
//!   buckets of identical canonical instances, relabelled per seed, for
//!   exercising the engine's canonical-form result cache and intra-batch
//!   dedup.
//! * [`SmallInstances`] — an exhaustive enumerator of tiny instances for
//!   comparisons against the exact solver.
//!
//! Every generator takes an explicit seed and uses ChaCha8, so every table in
//! EXPERIMENTS.md is bit-reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use msrs_core::{Instance, Job, Time};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Uniform family: `n` jobs with sizes drawn from `lo..=hi`, each assigned to
/// one of `k` classes uniformly at random.
pub fn uniform(seed: u64, m: usize, n: usize, k: usize, lo: Time, hi: Time) -> Instance {
    assert!(k >= 1 && m >= 1 && lo <= hi);
    let mut r = rng(seed);
    let jobs: Vec<Job> = (0..n)
        .map(|_| Job::new(r.random_range(lo..=hi), r.random_range(0..k)))
        .collect();
    Instance::new(m, jobs).expect("valid generator parameters")
}

/// Zipf-like family: class `c` receives a number of jobs proportional to
/// `1/(c+1)` (heavy head), sizes uniform in `lo..=hi`. Models a few highly
/// contended resources plus a long tail.
pub fn zipf_classes(seed: u64, m: usize, n: usize, k: usize, lo: Time, hi: Time) -> Instance {
    assert!(k >= 1 && m >= 1 && lo <= hi);
    let mut r = rng(seed);
    let weights: Vec<f64> = (0..k).map(|c| 1.0 / (c as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut jobs = Vec::with_capacity(n);
    for _ in 0..n {
        let mut x = r.random::<f64>() * total;
        let mut class = k - 1;
        for (c, w) in weights.iter().enumerate() {
            if x < *w {
                class = c;
                break;
            }
            x -= w;
        }
        jobs.push(Job::new(r.random_range(lo..=hi), class));
    }
    Instance::new(m, jobs).expect("valid generator parameters")
}

/// Satellite-downlink family (Hebrard et al. motivation): `sats` satellites
/// (classes) each hold `burst` download jobs whose sizes follow a skewed
/// two-point mixture (mostly short telemetry, occasionally a long image
/// dump); `m` ground stations (machines).
pub fn satellite(seed: u64, m: usize, sats: usize, burst: usize) -> Instance {
    assert!(sats >= 1 && m >= 1 && burst >= 1);
    let mut r = rng(seed);
    let mut classes: Vec<Vec<Time>> = Vec::with_capacity(sats);
    for _ in 0..sats {
        let mut sizes = Vec::with_capacity(burst);
        for _ in 0..burst {
            let size = if r.random::<f64>() < 0.2 {
                // long image dump
                r.random_range(60..=140)
            } else {
                // short telemetry window
                r.random_range(5..=25)
            };
            sizes.push(size);
        }
        classes.push(sizes);
    }
    Instance::from_classes(m, &classes).expect("valid generator parameters")
}

/// Photolithography family (Janssen et al. motivation): `reticles` classes.
/// Each reticle runs `lots` lots on the steppers; a lot is either a fast
/// metrology step or a long exposure.
pub fn photolithography(seed: u64, m: usize, reticles: usize, lots: usize) -> Instance {
    assert!(reticles >= 1 && m >= 1 && lots >= 1);
    let mut r = rng(seed);
    let mut classes: Vec<Vec<Time>> = Vec::with_capacity(reticles);
    for _ in 0..reticles {
        let mut sizes = Vec::with_capacity(lots);
        for _ in 0..lots {
            let size = if r.random::<f64>() < 0.5 {
                r.random_range(3..=8) // metrology / alignment
            } else {
                r.random_range(20..=45) // exposure run
            };
            sizes.push(size);
        }
        classes.push(sizes);
    }
    Instance::from_classes(m, &classes).expect("valid generator parameters")
}

/// Adversarial family for class-merging baselines: `m+1` classes, each a bag
/// of `per_class` unit jobs. Any algorithm that keeps classes contiguous must
/// put two classes on one machine (makespan `≈ 2·per_class`), while an
/// interleaved optimum achieves `≈ (m+1)·per_class/m`, approaching the
/// `2m/(m+1)` gap the paper cites for the prior algorithms.
pub fn adversarial_merged_lpt(m: usize, per_class: usize) -> Instance {
    assert!(m >= 1 && per_class >= 1);
    let classes: Vec<Vec<Time>> = (0..=m).map(|_| vec![1; per_class]).collect();
    Instance::from_classes(m, &classes).expect("valid generator parameters")
}

/// Boundary-stress family: sizes planted exactly on (and one unit around) the
/// rational thresholds `T/4, T/2, 2T/3, 3T/4` of the case analyses, for a
/// nominal `t0` (use a multiple of 12 to make every threshold integral).
pub fn boundary_stress(seed: u64, m: usize, k: usize, t0: Time) -> Instance {
    assert!(m >= 1 && k >= 1 && t0 >= 12);
    let mut r = rng(seed);
    let anchors = [
        t0 / 4,
        t0 / 4 + 1,
        t0 / 2 - 1,
        t0 / 2,
        t0 / 2 + 1,
        2 * t0 / 3,
        2 * t0 / 3 + 1,
        3 * t0 / 4 - 1,
        3 * t0 / 4,
        3 * t0 / 4 + 1,
    ];
    let mut classes: Vec<Vec<Time>> = vec![Vec::new(); k];
    for (i, class) in classes.iter_mut().enumerate() {
        // Each class gets one anchored job plus filler, capped at t0 total so
        // the class bound stays at t0.
        let a = anchors[(i + r.random_range(0..anchors.len())) % anchors.len()];
        class.push(a);
        let mut rest = t0 - a;
        while rest > 0 {
            let s = r.random_range(1..=rest.min(t0 / 6).max(1));
            class.push(s);
            rest -= s;
            if r.random::<f64>() < 0.3 {
                break;
            }
        }
    }
    Instance::from_classes(m, &classes).expect("valid generator parameters")
}

/// Huge-job-heavy family: `h` classes each led by a job `> (3/4)·t0` (plus
/// light tails), and `k` filler classes of small jobs — exercises Steps 2–10
/// of `Algorithm_3/2`.
pub fn huge_heavy(seed: u64, m: usize, h: usize, k: usize, t0: Time) -> Instance {
    assert!(m >= 1 && t0 >= 8);
    let mut r = rng(seed);
    let mut classes: Vec<Vec<Time>> = Vec::with_capacity(h + k);
    for _ in 0..h {
        let huge = r.random_range((3 * t0 / 4 + 1)..=t0.saturating_sub(1).max(3 * t0 / 4 + 1));
        let mut c = vec![huge];
        let mut rest = t0 - huge;
        while rest > 0 && r.random::<f64>() < 0.7 {
            let s = r.random_range(1..=rest);
            c.push(s);
            rest -= s;
        }
        classes.push(c);
    }
    for _ in 0..k {
        let jobs = r.random_range(1..=4);
        classes.push((0..jobs).map(|_| r.random_range(1..=t0 / 4)).collect());
    }
    Instance::from_classes(m, &classes).expect("valid generator parameters")
}

/// Duplicate-heavy "traffic" family: models heavy repeated production
/// traffic, where the same workload shapes arrive over and over with
/// meaningless identifier churn. Seeds are quantized into buckets of
/// `dup_factor` — every seed in a bucket describes the *same canonical
/// instance* — and the raw instance is then relabelled per seed (class ids
/// permuted, job order shuffled), so duplicates are only detectable by
/// canonicalization, never by raw equality. A corpus of `n` consecutive
/// seeds therefore contains exactly `⌈n / dup_factor⌉` distinct canonical
/// forms (a `dup_factor = 10` corpus is 90% duplicates).
pub fn traffic(seed: u64, m: usize, dup_factor: u64) -> Instance {
    assert!(dup_factor >= 1 && m >= 1);
    let base_seed = seed - seed % dup_factor;
    let base = uniform(base_seed, m, 40 * m, 6 * m, 1, 100);
    let mut r = rng(seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
    // Permute class labels and job order; the canonical form is invariant.
    let mut class_perm: Vec<usize> = (0..base.num_classes()).collect();
    class_perm.shuffle(&mut r);
    let mut job_order: Vec<usize> = (0..base.num_jobs()).collect();
    job_order.shuffle(&mut r);
    let jobs: Vec<Job> = job_order
        .iter()
        .map(|&j| Job::new(base.size(j), class_perm[base.class_of(j)]))
        .collect();
    Instance::new(m, jobs).expect("relabelling preserves validity")
}

/// Parity-gap partition: `items` distinct even sizes `2·(101+i)` in
/// singleton classes on two machines. Subset sums are dense near `S/2`,
/// and whenever `S/2` is odd (e.g. `items = 21`, the canonical hard size)
/// no perfect split exists, so `OPT = T + 1` and an exact proof must sweep
/// every near-balanced prefix — with all-distinct sizes giving the
/// branch-and-bound's class-symmetry dominance no purchase. The
/// workspace's standard "hard for the exact solver" instance (cancellation
/// and deadline tests, the `BENCH_3.json` node-throughput workload).
pub fn parity_gap_partition(items: usize) -> Instance {
    let classes: Vec<Vec<Time>> = (0..items).map(|i| vec![2 * (101 + i as Time)]).collect();
    Instance::from_classes(2, &classes).expect("valid construction")
}

/// Returns the same instance with every processing time multiplied by `k`
/// (sensitivity tool: all algorithms in this workspace are scale-equivariant
/// up to rounding of the lower bound, which the test-suite checks).
pub fn rescale(inst: &Instance, k: Time) -> Instance {
    let jobs: Vec<Job> = inst
        .jobs()
        .iter()
        .map(|j| Job::new(j.size * k, j.class))
        .collect();
    Instance::new(inst.machines(), jobs).expect("same machine count")
}

/// Returns the same jobs on a different machine count (for machine-scaling
/// sweeps like E2).
pub fn with_machines(inst: &Instance, machines: usize) -> Instance {
    Instance::new(machines, inst.jobs().to_vec()).expect("machines ≥ 1")
}

/// Disjoint union of two instances on the same machine count: classes of
/// `b` are renumbered after `a`'s.
pub fn concat(a: &Instance, b: &Instance) -> Instance {
    assert_eq!(a.machines(), b.machines(), "machine counts must match");
    let offset = a.num_classes();
    let mut jobs = a.jobs().to_vec();
    jobs.extend(b.jobs().iter().map(|j| Job::new(j.size, j.class + offset)));
    Instance::new(a.machines(), jobs).expect("machines ≥ 1")
}

/// Exhaustive enumerator over tiny instances: all multisets of up to
/// `max_jobs` jobs with sizes in `1..=max_size`, split into up to
/// `max_classes` classes, on `machines` machines. Intended for ground-truth
/// comparisons against the exact solver (E4) and for edge-case hunting.
///
/// Enumeration is canonical-form based (non-increasing sizes within a class,
/// classes in non-increasing lexicographic order) so no two yielded instances
/// are isomorphic.
pub struct SmallInstances {
    machines: usize,
    max_jobs: usize,
    max_size: Time,
    max_classes: usize,
    stack: Vec<Vec<Vec<Time>>>,
}

impl SmallInstances {
    /// Creates the enumerator.
    pub fn new(machines: usize, max_jobs: usize, max_size: Time, max_classes: usize) -> Self {
        SmallInstances {
            machines,
            max_jobs,
            max_size,
            max_classes,
            stack: vec![vec![]],
        }
    }

    fn class_candidates(&self, budget: usize, le: &[Time]) -> Vec<Vec<Time>> {
        // All non-increasing size vectors of length 1..=budget, lexicographically
        // ≤ `le` (for canonical class ordering), sizes in 1..=max_size.
        fn rec(
            max_size: Time,
            budget: usize,
            cur: &mut Vec<Time>,
            out: &mut Vec<Vec<Time>>,
            le: &[Time],
        ) {
            if !cur.is_empty() {
                if !le.is_empty() && cur.as_slice() > le {
                    return;
                }
                out.push(cur.clone());
            }
            if cur.len() == budget {
                return;
            }
            let hi = cur.last().copied().unwrap_or(max_size);
            for s in (1..=hi).rev() {
                cur.push(s);
                rec(max_size, budget, cur, out, le);
                cur.pop();
            }
        }
        let mut out = Vec::new();
        let mut cur: Vec<Time> = Vec::new();
        rec(self.max_size, budget, &mut cur, &mut out, le);
        out
    }
}

impl Iterator for SmallInstances {
    type Item = Instance;

    fn next(&mut self) -> Option<Instance> {
        while let Some(classes) = self.stack.pop() {
            let used: usize = classes.iter().map(Vec::len).sum();
            // Children: extend with one more class (canonical: ≤ previous).
            if classes.len() < self.max_classes && used < self.max_jobs {
                let le = classes.last().cloned().unwrap_or_default();
                for cand in self.class_candidates(self.max_jobs - used, &le) {
                    let mut next = classes.clone();
                    next.push(cand);
                    self.stack.push(next);
                }
            }
            if !classes.is_empty() {
                return Some(
                    Instance::from_classes(self.machines, &classes)
                        .expect("valid enumerated instance"),
                );
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrs_core::lower_bound;

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform(7, 4, 50, 10, 1, 20);
        let b = uniform(7, 4, 50, 10, 1, 20);
        let c = uniform(8, 4, 50, 10, 1, 20);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_jobs(), 50);
        assert_eq!(a.machines(), 4);
        assert!(a
            .jobs()
            .iter()
            .all(|j| (1..=20).contains(&j.size) && j.class < 10));
    }

    #[test]
    fn zipf_front_classes_are_heavier() {
        let inst = zipf_classes(3, 4, 2000, 20, 1, 5);
        let head: usize = (0..2).map(|c| inst.class_jobs(c).len()).sum();
        let tail: usize = (18..20).map(|c| inst.class_jobs(c).len()).sum();
        assert!(head > 3 * tail, "head {head} tail {tail}");
    }

    #[test]
    fn satellite_shape() {
        let inst = satellite(1, 3, 8, 12);
        assert_eq!(inst.num_classes(), 8);
        assert_eq!(inst.num_jobs(), 96);
        assert!(inst.jobs().iter().all(|j| (5..=140).contains(&j.size)));
    }

    #[test]
    fn photolithography_shape() {
        let inst = photolithography(2, 5, 10, 6);
        assert_eq!(inst.num_classes(), 10);
        assert_eq!(inst.num_jobs(), 60);
        assert!(inst.jobs().iter().all(|j| (3..=45).contains(&j.size)));
    }

    #[test]
    fn adversarial_has_m_plus_one_unit_classes() {
        let inst = adversarial_merged_lpt(4, 30);
        assert_eq!(inst.num_classes(), 5);
        assert_eq!(inst.num_jobs(), 150);
        assert!(inst.jobs().iter().all(|j| j.size == 1));
        // Lower bound is the area bound ⌈150/4⌉ = 38.
        assert_eq!(lower_bound(&inst), 38);
    }

    #[test]
    fn boundary_classes_capped_by_t0() {
        let inst = boundary_stress(9, 3, 12, 60);
        for c in 0..inst.num_classes() {
            assert!(inst.class_load(c) <= 60);
        }
    }

    #[test]
    fn huge_heavy_has_huge_leaders() {
        let inst = huge_heavy(4, 6, 5, 3, 40);
        let mut huge_classes = 0;
        for c in 0..inst.num_classes() {
            if inst.class_max_job(c) * 4 > 3 * 40 {
                huge_classes += 1;
            }
        }
        assert_eq!(huge_classes, 5);
    }

    #[test]
    fn small_instances_enumerates_canonical_forms() {
        let all: Vec<Instance> = SmallInstances::new(2, 3, 2, 2).collect();
        // No duplicates.
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Single class [1] must be present; class sizes non-increasing.
        assert!(all.iter().any(|i| i.num_jobs() == 1 && i.size(0) == 1));
        assert!(!all.is_empty());
        for inst in &all {
            assert!(inst.num_jobs() <= 3);
            for c in 0..inst.num_classes() {
                let sizes: Vec<_> = inst.class_jobs(c).iter().map(|&j| inst.size(j)).collect();
                assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
            }
        }
    }

    #[test]
    fn rescale_multiplies_sizes_and_bound() {
        let inst = uniform(3, 2, 10, 4, 1, 9);
        let scaled = rescale(&inst, 7);
        assert_eq!(scaled.num_jobs(), inst.num_jobs());
        for j in 0..inst.num_jobs() {
            assert_eq!(scaled.size(j), 7 * inst.size(j));
            assert_eq!(scaled.class_of(j), inst.class_of(j));
        }
        // The combined bound scales exactly (all three terms are homogeneous
        // once the area term has no rounding; with rounding it can only be
        // tighter).
        assert!(lower_bound(&scaled) <= 7 * lower_bound(&inst));
        assert!(lower_bound(&scaled) >= 7 * lower_bound(&inst) - 7);
    }

    #[test]
    fn with_machines_changes_only_m() {
        let inst = uniform(3, 2, 10, 4, 1, 9);
        let wider = with_machines(&inst, 6);
        assert_eq!(wider.machines(), 6);
        assert_eq!(wider.jobs(), inst.jobs());
    }

    #[test]
    fn concat_renumbers_classes() {
        let a = Instance::from_classes(2, &[vec![3], vec![4]]).unwrap();
        let b = Instance::from_classes(2, &[vec![5, 5]]).unwrap();
        let c = concat(&a, &b);
        assert_eq!(c.num_classes(), 3);
        assert_eq!(c.num_jobs(), 4);
        assert_eq!(c.class_of(2), 2);
        assert_eq!(c.class_load(2), 10);
    }

    #[test]
    fn small_instances_count_is_stable() {
        // Regression pin: enumeration size for a fixed parameter box.
        let n = SmallInstances::new(2, 3, 2, 2).count();
        assert!(n > 10, "canonical enumeration unexpectedly small: {n}");
    }

    #[test]
    fn traffic_buckets_share_a_canonical_form_but_not_raw_form() {
        let forms: Vec<_> = (0..20u64)
            .map(|seed| traffic(seed, 4, 10).canonical_form().fingerprint())
            .collect();
        // Seeds 0..10 share one canonical form, 10..20 another.
        assert!(forms[..10].iter().all(|&f| f == forms[0]));
        assert!(forms[10..].iter().all(|&f| f == forms[10]));
        assert_ne!(forms[0], forms[10]);
        // Raw instances inside a bucket differ (relabelled per seed).
        assert_ne!(traffic(0, 4, 10), traffic(1, 4, 10));
        // Deterministic per seed.
        assert_eq!(traffic(3, 4, 10), traffic(3, 4, 10));
    }
}
