//! Property tests for the core substrate: builder geometry, serialization
//! round trips, validator symmetry, and statistics invariants.

use msrs_core::{
    io::{read_instance, read_schedule, write_instance, write_schedule},
    schedule_stats, validate, Assignment, Block, Instance, Schedule, ScheduleBuilder, Time,
};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        1usize..=5,
        prop::collection::vec(prop::collection::vec(0u64..=20, 1..=5), 1..=8),
    )
        .prop_map(|(m, classes)| Instance::from_classes(m, &classes).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn instance_io_round_trip(inst in arb_instance()) {
        let back = read_instance(&write_instance(&inst)).expect("parse");
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn schedule_io_round_trip(
        inst in arb_instance(),
        seed in any::<u64>(),
    ) {
        // A synthetic (not necessarily valid) schedule round-trips exactly.
        let mut state = seed | 1;
        let mut next = move |m: u64| -> u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let asg: Vec<Assignment> = (0..inst.num_jobs())
            .map(|_| Assignment {
                machine: next(inst.machines() as u64) as usize,
                start: next(100),
            })
            .collect();
        let s = Schedule::new(asg);
        let back = read_schedule(&write_schedule(&s)).expect("parse");
        prop_assert_eq!(s, back);
    }

    #[test]
    fn builder_sequential_stacks_always_validate(inst in arb_instance()) {
        // One machine per class round-robin: bottom stacks only — always a
        // valid schedule within the total-load horizon.
        let horizon = inst.total_load().max(1);
        let mut b = ScheduleBuilder::new(&inst, horizon);
        for (i, c) in inst.nonempty_classes().enumerate() {
            b.push_bottom(i % inst.machines(), Block::whole_class(&inst, c));
        }
        let s = b.finalize().expect("all placed");
        prop_assert_eq!(validate(&inst, &s), Ok(()));
        prop_assert!(s.makespan(&inst) <= horizon);
    }

    #[test]
    fn builder_top_alignment_respects_horizon(inst in arb_instance()) {
        // Top-aligned single blocks end exactly at the horizon.
        let horizon = inst.total_load().max(1) * 2;
        let mut b = ScheduleBuilder::new(&inst, horizon);
        let mut machine = 0usize;
        let mut tops = Vec::new();
        for c in inst.nonempty_classes() {
            if machine < inst.machines() {
                let block = Block::whole_class(&inst, c);
                let len = block.len;
                b.push_top(machine, block);
                tops.push((machine, len));
                machine += 1;
            } else {
                b.push_bottom(machine % inst.machines(), Block::whole_class(&inst, c));
                machine += 1;
            }
        }
        for &(q, len) in &tops {
            prop_assert_eq!(b.top_start(q), horizon - len);
        }
        let s = b.finalize().expect("all placed");
        prop_assert_eq!(validate(&inst, &s), Ok(()));
        prop_assert!(s.makespan(&inst) <= horizon);
    }

    #[test]
    fn stats_are_consistent_with_schedule(inst in arb_instance()) {
        let horizon = inst.total_load().max(1);
        let mut b = ScheduleBuilder::new(&inst, horizon);
        for (i, c) in inst.nonempty_classes().enumerate() {
            b.push_bottom(i % inst.machines(), Block::whole_class(&inst, c));
        }
        let s = b.finalize().expect("all placed");
        let st = schedule_stats(&inst, &s);
        prop_assert_eq!(st.makespan, s.makespan(&inst));
        let busy: Time = st.machine_loads.iter().sum();
        prop_assert_eq!(busy, inst.total_load());
        prop_assert_eq!(
            st.total_idle,
            st.makespan * inst.machines() as Time - busy
        );
        prop_assert!(st.mean_utilization <= 1.0 + 1e-12);
        prop_assert!(st.min_utilization >= 0.0);
        for &stretch in &st.class_stretch {
            prop_assert!(stretch >= 1.0 - 1e-12, "stretch below 1: {stretch}");
        }
    }

    #[test]
    fn flat_storage_is_consistent_with_the_job_table(
        m in 1usize..=5,
        jobs in prop::collection::vec((0u64..=20, 0usize..=6), 0..=24),
    ) {
        // Arbitrary interleaved construction: the flat SoA view (sizes,
        // flat job ids, offsets) must agree with the per-job table on
        // every class, and reconstructing from the flat buffers must
        // reproduce the per-class structure exactly.
        let jobs: Vec<msrs_core::Job> =
            jobs.into_iter().map(|(p, c)| msrs_core::Job::new(p, c)).collect();
        let inst = Instance::new(m, jobs).expect("valid");
        let offsets = inst.class_offsets();
        prop_assert_eq!(offsets.len(), inst.num_classes() + 1);
        prop_assert_eq!(*offsets.last().unwrap(), inst.num_jobs());
        prop_assert_eq!(inst.flat_sizes().len(), inst.num_jobs());
        let mut seen = vec![false; inst.num_jobs()];
        for c in 0..inst.num_classes() {
            let ids = inst.class_jobs(c);
            let sizes = inst.class_sizes(c);
            prop_assert_eq!(ids.len(), sizes.len());
            // Ascending job ids within a class, parallel sizes, right class.
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
            for (&j, &p) in ids.iter().zip(sizes) {
                prop_assert_eq!(inst.size(j), p);
                prop_assert_eq!(inst.class_of(j), c);
                seen[j] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every job appears in exactly one span");
        // Flat round trip preserves the per-class size lists.
        let rebuilt = Instance::from_flat(
            inst.machines(),
            inst.flat_sizes().to_vec(),
            inst.class_offsets().to_vec(),
        ).expect("valid");
        for c in 0..inst.num_classes() {
            prop_assert_eq!(rebuilt.class_sizes(c), inst.class_sizes(c));
        }
        prop_assert_eq!(rebuilt.total_load(), inst.total_load());
    }

    #[test]
    fn flat_fingerprint_agrees_with_canonical_form_under_relabelling(
        inst in arb_instance(),
        rot in 0usize..8,
    ) {
        use msrs_core::{canonical::relabel, flat_fingerprint, CanonicalScratch};
        let mut scratch = CanonicalScratch::new();
        let base = inst.canonical_form();
        let flat = flat_fingerprint(
            inst.machines(),
            inst.flat_sizes(),
            inst.class_offsets(),
            &mut scratch,
        );
        prop_assert_eq!(base.fingerprint(), flat);
        // Invariance: a relabelled copy fingerprints identically via both
        // paths (scratch reused across calls).
        let k = inst.num_classes();
        let class_perm: Vec<usize> = (0..k).map(|c| (c + rot) % k.max(1)).collect();
        let job_order: Vec<usize> = (0..inst.num_jobs()).rev().collect();
        let shuffled = relabel(&inst, &class_perm, &job_order);
        let shuffled_flat = flat_fingerprint(
            shuffled.machines(),
            shuffled.flat_sizes(),
            shuffled.class_offsets(),
            &mut scratch,
        );
        prop_assert_eq!(shuffled_flat, flat);
        prop_assert_eq!(shuffled.canonical_form().fingerprint(), flat);
    }

    #[test]
    fn validator_accepts_shifted_valid_schedules(inst in arb_instance(), shift in 0u64..50) {
        // Validity is translation-invariant: shifting every start by a
        // constant preserves it.
        let horizon = inst.total_load().max(1);
        let mut b = ScheduleBuilder::new(&inst, horizon);
        for (i, c) in inst.nonempty_classes().enumerate() {
            b.push_bottom(i % inst.machines(), Block::whole_class(&inst, c));
        }
        let s = b.finalize().expect("all placed");
        let shifted = Schedule::new(
            s.assignments()
                .iter()
                .map(|a| Assignment { machine: a.machine, start: a.start + shift })
                .collect(),
        );
        prop_assert_eq!(validate(&inst, &shifted), Ok(()));
    }
}
