//! Exact rational threshold arithmetic.
//!
//! The paper normalizes instances by `1/T` and classifies jobs and classes
//! against rational thresholds (`1/4`, `1/2`, `2/3`, `3/4`, …). We never scale
//! the instance; instead every comparison `p ⋛ (num/den)·T` is evaluated
//! exactly as `den·p ⋛ num·T` in `u128`, and every anchor like "ends at
//! `(3/2)T`" becomes the integral horizon `⌊(3/2)T⌋` via [`floor_mul`].
//!
//! Key fact used throughout the algorithm crates: if `x` is an integer and
//! `den·x ≤ num·T`, then `x ≤ ⌊num·T/den⌋` — so packing arguments carried out
//! over rationals in the paper survive flooring verbatim.

use crate::instance::Time;

/// Is `p > (num/den)·t`?
#[inline]
pub fn gt(p: Time, num: u64, den: u64, t: Time) -> bool {
    (p as u128) * (den as u128) > (num as u128) * (t as u128)
}

/// Is `p ≥ (num/den)·t`?
#[inline]
pub fn ge(p: Time, num: u64, den: u64, t: Time) -> bool {
    (p as u128) * (den as u128) >= (num as u128) * (t as u128)
}

/// Is `p < (num/den)·t`?
#[inline]
pub fn lt(p: Time, num: u64, den: u64, t: Time) -> bool {
    !ge(p, num, den, t)
}

/// Is `p ≤ (num/den)·t`?
#[inline]
pub fn le(p: Time, num: u64, den: u64, t: Time) -> bool {
    !gt(p, num, den, t)
}

/// `⌊(num/den)·t⌋`. Panics if `den == 0` or the result exceeds `u64::MAX`.
#[inline]
pub fn floor_mul(num: u64, den: u64, t: Time) -> Time {
    let v = (num as u128) * (t as u128) / (den as u128);
    u64::try_from(v).expect("floor_mul overflow")
}

/// `⌈(num/den)·t⌉`. Panics if `den == 0` or the result exceeds `u64::MAX`.
#[inline]
pub fn ceil_mul(num: u64, den: u64, t: Time) -> Time {
    let n = (num as u128) * (t as u128);
    let d = den as u128;
    u64::try_from(n.div_ceil(d)).expect("ceil_mul overflow")
}

/// `⌈a / b⌉` for integers.
#[inline]
pub fn ceil_div(a: Time, b: Time) -> Time {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_and_weak_comparisons() {
        // p vs (1/2)·10 = 5
        assert!(gt(6, 1, 2, 10));
        assert!(!gt(5, 1, 2, 10));
        assert!(ge(5, 1, 2, 10));
        assert!(lt(4, 1, 2, 10));
        assert!(!lt(5, 1, 2, 10));
        assert!(le(5, 1, 2, 10));
        assert!(!le(6, 1, 2, 10));
    }

    #[test]
    fn non_integral_thresholds() {
        // (2/3)·10 = 6.666…
        assert!(gt(7, 2, 3, 10));
        assert!(!gt(6, 2, 3, 10));
        assert!(!ge(6, 2, 3, 10));
        assert!(lt(6, 2, 3, 10));
        assert!(le(6, 2, 3, 10));
    }

    #[test]
    fn floor_and_ceil_mul() {
        assert_eq!(floor_mul(5, 3, 10), 16); // ⌊50/3⌋
        assert_eq!(ceil_mul(5, 3, 10), 17);
        assert_eq!(floor_mul(3, 2, 10), 15);
        assert_eq!(ceil_mul(3, 2, 10), 15);
        assert_eq!(floor_mul(3, 2, 0), 0);
    }

    #[test]
    fn floor_identity_for_integral_bounds() {
        // den·x ≤ num·t  ⟹  x ≤ floor_mul(num, den, t): spot-check the fact
        // the packing arguments rely on.
        for t in 0..50u64 {
            let h = floor_mul(5, 3, t);
            for x in 0..=(5 * t) {
                if 3 * x <= 5 * t {
                    assert!(x <= h, "x={x} t={t} h={h}");
                }
            }
        }
    }

    #[test]
    fn no_overflow_at_large_values() {
        let big = u64::MAX / 2;
        assert!(gt(big, 1, 3, big)); // big > big/3
        assert_eq!(floor_mul(1, 1, big), big);
        assert!(ge(big, 1, 1, big));
    }

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div(10, 3), 4);
        assert_eq!(ceil_div(9, 3), 3);
        assert_eq!(ceil_div(0, 5), 0);
    }
}
