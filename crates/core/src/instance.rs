//! Problem instances: jobs, processing times, classes (shared resources).
//!
//! ## Flat storage
//!
//! An [`Instance`] keeps its class structure in *flat, structure-of-arrays
//! form*: one contiguous `job_sizes` buffer holding every job's processing
//! time grouped by class, a parallel `flat_jobs` buffer holding the external
//! [`JobId`] occupying each slot, and a `class_offsets` table mapping class
//! `c` to the half-open slot range `class_offsets[c]..class_offsets[c + 1]`.
//! Per-class queries ([`Instance::class_jobs`], [`Instance::class_sizes`],
//! [`Instance::class_load`], …) are contiguous slice reads — no per-class
//! heap allocations exist anywhere in the representation, and construction
//! performs a fixed number of allocations regardless of the class count.
//! The `jobs` array is retained alongside for O(1) per-job lookups by
//! external id ([`Instance::size`], [`Instance::class_of`]).

use std::fmt;
use std::ops::Range;

/// Integral time unit. Processing times, start times and makespans are `u64`;
/// products against rational thresholds are computed in `u128` (see
/// [`crate::frac`]), and [`Instance`] construction rejects inputs whose
/// *total* load exceeds `u64::MAX`, so load sums never overflow downstream.
pub type Time = u64;

/// Index of a job (position in [`Instance::jobs`]).
pub type JobId = usize;

/// Index of a class, i.e. of the shared resource the class corresponds to.
pub type ClassId = usize;

/// Index of a machine, `0..m`.
pub type MachineId = usize;

/// A single job: a processing time and the class (shared resource) it needs.
///
/// The paper allows `p_j ∈ ℕ≥0`; zero-size jobs are legal and occupy the empty
/// interval `[t, t)`, which never conflicts with anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// Processing time `p_j`.
    pub size: Time,
    /// Class / shared resource required by this job.
    pub class: ClassId,
}

impl Job {
    /// Creates a job with processing time `size` in class `class`.
    pub fn new(size: Time, class: ClassId) -> Self {
        Job { size, class }
    }
}

/// Errors raised when constructing an [`Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// The machine count was zero.
    NoMachines,
    /// A job referenced a class id `>= num_classes`.
    ClassOutOfRange {
        /// The offending job.
        job: JobId,
        /// Its class id.
        class: ClassId,
        /// Number of classes declared.
        num_classes: usize,
    },
    /// The total processing time `p(J)` exceeds `u64::MAX`. Rejected at
    /// construction so that every load sum downstream (area bound, class
    /// loads, remaining-load accounting) provably fits in [`Time`].
    LoadOverflow,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::NoMachines => write!(f, "instance must have at least one machine"),
            InstanceError::ClassOutOfRange {
                job,
                class,
                num_classes,
            } => write!(
                f,
                "job {job} references class {class}, but only {num_classes} classes exist"
            ),
            InstanceError::LoadOverflow => {
                write!(f, "total processing time overflows u64")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// Construction invariant: `p(J) = Σ p_j` must fit in [`Time`], so every
/// downstream load sum (area bound, class loads, branch-and-bound
/// remaining-load accounting) is overflow-free by construction.
fn check_total_load(jobs: &[Job]) -> Result<(), InstanceError> {
    jobs.iter()
        .try_fold(0 as Time, |acc, j| acc.checked_add(j.size))
        .map(|_| ())
        .ok_or(InstanceError::LoadOverflow)
}

/// As [`check_total_load`], over a bare size slice.
fn check_total_sizes(sizes: &[Time]) -> Result<(), InstanceError> {
    sizes
        .iter()
        .try_fold(0 as Time, |acc, &p| acc.checked_add(p))
        .map(|_| ())
        .ok_or(InstanceError::LoadOverflow)
}

/// An MSRS instance: `m` identical machines and a set of jobs partitioned into
/// classes. Each class corresponds to exactly one shared resource; no two jobs
/// of the same class may run concurrently in a valid schedule.
///
/// Jobs that need no resource are modelled — exactly as the paper notes — by
/// private singleton classes.
///
/// Internally the class structure is flat (see the [module docs](self)):
/// `job_sizes`/`flat_jobs` are contiguous buffers grouped by class and
/// `class_offsets` delimits each class's slot range, so class queries are
/// slice reads and construction costs O(1) allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    machines: usize,
    jobs: Vec<Job>,
    /// Processing times grouped by class: class `c` occupies
    /// `job_sizes[class_offsets[c]..class_offsets[c + 1]]`.
    job_sizes: Vec<Time>,
    /// `flat_jobs[slot]` = the external [`JobId`] whose size sits at `slot`.
    /// Within a class, slots are in ascending job-id order.
    flat_jobs: Vec<JobId>,
    /// `num_classes + 1` offsets into the flat buffers.
    class_offsets: Vec<usize>,
}

/// Builds the flat (grouped-by-class) buffers from a job list in two passes:
/// a counting pass filling `class_offsets` and a scatter pass placing each
/// job. Within a class, jobs land in ascending id order.
fn build_flat(jobs: &[Job], num_classes: usize) -> (Vec<Time>, Vec<JobId>, Vec<usize>) {
    let mut class_offsets = vec![0usize; num_classes + 1];
    for job in jobs {
        class_offsets[job.class + 1] += 1;
    }
    for c in 0..num_classes {
        class_offsets[c + 1] += class_offsets[c];
    }
    let mut cursor = class_offsets.clone();
    let mut job_sizes = vec![0 as Time; jobs.len()];
    let mut flat_jobs = vec![0 as JobId; jobs.len()];
    for (id, job) in jobs.iter().enumerate() {
        let slot = cursor[job.class];
        cursor[job.class] += 1;
        job_sizes[slot] = job.size;
        flat_jobs[slot] = id;
    }
    (job_sizes, flat_jobs, class_offsets)
}

impl Instance {
    /// Builds an instance from raw jobs. The number of classes is inferred as
    /// `max class id + 1` (all ids below that are legal, even if unused).
    pub fn new(machines: usize, jobs: Vec<Job>) -> Result<Self, InstanceError> {
        if machines == 0 {
            return Err(InstanceError::NoMachines);
        }
        check_total_load(&jobs)?;
        let num_classes = jobs.iter().map(|j| j.class + 1).max().unwrap_or(0);
        let (job_sizes, flat_jobs, class_offsets) = build_flat(&jobs, num_classes);
        Ok(Instance {
            machines,
            jobs,
            job_sizes,
            flat_jobs,
            class_offsets,
        })
    }

    /// Builds an instance from per-class job size lists: `class_sizes[c]` are
    /// the processing times of the jobs of class `c`. Job ids are assigned in
    /// iteration order.
    pub fn from_classes(machines: usize, class_sizes: &[Vec<Time>]) -> Result<Self, InstanceError> {
        if machines == 0 {
            return Err(InstanceError::NoMachines);
        }
        let n = class_sizes.iter().map(Vec::len).sum();
        let mut job_sizes: Vec<Time> = Vec::with_capacity(n);
        let mut class_offsets = Vec::with_capacity(class_sizes.len() + 1);
        class_offsets.push(0);
        for sizes in class_sizes {
            job_sizes.extend_from_slice(sizes);
            class_offsets.push(job_sizes.len());
        }
        check_total_sizes(&job_sizes)?;
        // Jobs are assigned ids class by class, so external ids coincide
        // with flat slots.
        let mut jobs = Vec::with_capacity(n);
        for (c, sizes) in class_sizes.iter().enumerate() {
            for &s in sizes {
                jobs.push(Job::new(s, c));
            }
        }
        Ok(Instance {
            machines,
            jobs,
            job_sizes,
            flat_jobs: (0..n).collect(),
            class_offsets,
        })
    }

    /// Builds an instance directly from flat storage: `job_sizes` grouped by
    /// class and `class_offsets` delimiting each class (`class_offsets[0] ==
    /// 0`, monotone, last element `== job_sizes.len()`). Job ids are the flat
    /// slots. This is the allocation-lean construction path used by the
    /// canonical rebuild and the engine's streaming decoder — it allocates
    /// only the `jobs` array beyond the two buffers it takes ownership of.
    ///
    /// # Panics
    /// If the offsets are not a valid monotone partition of `job_sizes`.
    pub fn from_flat(
        machines: usize,
        job_sizes: Vec<Time>,
        class_offsets: Vec<usize>,
    ) -> Result<Self, InstanceError> {
        assert!(
            !class_offsets.is_empty()
                && class_offsets[0] == 0
                && *class_offsets.last().expect("non-empty") == job_sizes.len()
                && class_offsets.windows(2).all(|w| w[0] <= w[1]),
            "class_offsets must be a monotone partition of job_sizes"
        );
        if machines == 0 {
            return Err(InstanceError::NoMachines);
        }
        check_total_sizes(&job_sizes)?;
        let mut jobs = Vec::with_capacity(job_sizes.len());
        for c in 0..class_offsets.len() - 1 {
            for &s in &job_sizes[class_offsets[c]..class_offsets[c + 1]] {
                jobs.push(Job::new(s, c));
            }
        }
        let n = job_sizes.len();
        Ok(Instance {
            machines,
            jobs,
            job_sizes,
            flat_jobs: (0..n).collect(),
            class_offsets,
        })
    }

    /// Number of machines `m`.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of declared classes (including empty ones).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.class_offsets.len() - 1
    }

    /// Number of classes that actually contain at least one job.
    pub fn num_nonempty_classes(&self) -> usize {
        self.class_offsets
            .windows(2)
            .filter(|w| w[0] < w[1])
            .count()
    }

    /// All jobs, indexed by [`JobId`].
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Processing time of job `j`.
    #[inline]
    pub fn size(&self, j: JobId) -> Time {
        self.jobs[j].size
    }

    /// Class of job `j`.
    #[inline]
    pub fn class_of(&self, j: JobId) -> ClassId {
        self.jobs[j].class
    }

    /// The flat slot range of class `c` (see [`Instance::flat_sizes`]).
    #[inline]
    pub fn class_range(&self, c: ClassId) -> Range<usize> {
        self.class_offsets[c]..self.class_offsets[c + 1]
    }

    /// Jobs of class `c` — a contiguous slice of the flat job table, in
    /// ascending job-id order.
    #[inline]
    pub fn class_jobs(&self, c: ClassId) -> &[JobId] {
        &self.flat_jobs[self.class_range(c)]
    }

    /// Processing times of the jobs of class `c` — a contiguous slice of
    /// [`Instance::flat_sizes`], parallel to [`Instance::class_jobs`].
    #[inline]
    pub fn class_sizes(&self, c: ClassId) -> &[Time] {
        &self.job_sizes[self.class_range(c)]
    }

    /// The whole flat size buffer: every job's processing time, grouped by
    /// class (class `c` occupies [`Instance::class_range`]`(c)`).
    #[inline]
    pub fn flat_sizes(&self) -> &[Time] {
        &self.job_sizes
    }

    /// The external job id occupying each flat slot, parallel to
    /// [`Instance::flat_sizes`].
    #[inline]
    pub fn flat_job_ids(&self) -> &[JobId] {
        &self.flat_jobs
    }

    /// The `num_classes + 1` offsets delimiting each class in the flat
    /// buffers.
    #[inline]
    pub fn class_offsets(&self) -> &[usize] {
        &self.class_offsets
    }

    /// Total processing time `p(c)` of class `c`.
    pub fn class_load(&self, c: ClassId) -> Time {
        self.class_sizes(c).iter().sum()
    }

    /// Largest job size within class `c` (0 for an empty class).
    pub fn class_max_job(&self, c: ClassId) -> Time {
        self.class_sizes(c).iter().copied().max().unwrap_or(0)
    }

    /// Total processing time `p(J)` over all jobs.
    pub fn total_load(&self) -> Time {
        self.job_sizes.iter().sum()
    }

    /// Iterator over non-empty class ids.
    pub fn nonempty_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.num_classes()).filter(|&c| self.class_offsets[c] < self.class_offsets[c + 1])
    }

    /// The `k`-th largest processing time over all jobs (`k` is 1-based);
    /// `None` if `k > n`. Used for the `p_(m) + p_(m+1)` lower bound.
    pub fn kth_largest_size(&self, k: usize) -> Option<Time> {
        if k == 0 || k > self.jobs.len() {
            return None;
        }
        let mut sizes: Vec<Time> = self.job_sizes.clone();
        // Select the k-th largest = (k-1)-th in descending order.
        let (_, kth, _) = sizes.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
        Some(*kth)
    }
}

/// A reusable flat-instance accumulator: the engine's streaming decoder
/// parses each corpus line into one of these (class by class, size by size)
/// so that steady-state decoding performs **zero heap allocations** — the
/// buffers are retained across [`InstanceBuilder::reset`] calls and only the
/// optional [`InstanceBuilder::build`] (the cache-miss path) materializes an
/// owned [`Instance`].
#[derive(Debug, Default)]
pub struct InstanceBuilder {
    machines: usize,
    sizes: Vec<Time>,
    offsets: Vec<usize>,
}

impl InstanceBuilder {
    /// A fresh builder (no buffers reserved yet).
    pub fn new() -> Self {
        InstanceBuilder::default()
    }

    /// Clears the accumulated classes and sets the machine count, retaining
    /// buffer capacity.
    pub fn reset(&mut self, machines: usize) {
        self.machines = machines;
        self.sizes.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Opens a new (initially empty) class.
    pub fn begin_class(&mut self) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.offsets.push(self.sizes.len());
    }

    /// Appends a job of processing time `size` to the currently open class.
    ///
    /// # Panics
    /// If no class was opened via [`InstanceBuilder::begin_class`].
    pub fn push_size(&mut self, size: Time) {
        assert!(self.offsets.len() > 1, "push_size before begin_class");
        self.sizes.push(size);
        *self.offsets.last_mut().expect("non-empty") = self.sizes.len();
    }

    /// The configured machine count.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Sets the machine count without touching the accumulated classes
    /// (decoders learn `machines` and `classes` in whatever order the line
    /// spells them).
    pub fn set_machines(&mut self, machines: usize) {
        self.machines = machines;
    }

    /// Number of classes accumulated so far.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of jobs accumulated so far.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.sizes.len()
    }

    /// The accumulated flat size buffer (grouped by class).
    #[inline]
    pub fn sizes(&self) -> &[Time] {
        &self.sizes
    }

    /// The accumulated class offsets (`num_classes + 1` entries once at
    /// least one class was opened; `[0]` for an empty instance).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        if self.offsets.is_empty() {
            // An all-default builder: present the canonical empty partition.
            &EMPTY_OFFSETS
        } else {
            &self.offsets
        }
    }

    /// Checks the accumulated data against the [`Instance`] construction
    /// invariants (machine count, total-load overflow) *without* allocating.
    pub fn validate(&self) -> Result<(), InstanceError> {
        if self.machines == 0 {
            return Err(InstanceError::NoMachines);
        }
        check_total_sizes(&self.sizes)
    }

    /// Materializes an owned [`Instance`] from the accumulated data (the
    /// cache-miss path; allocates fresh buffers, leaving the builder intact
    /// for the next line).
    pub fn build(&self) -> Result<Instance, InstanceError> {
        Instance::from_flat(self.machines, self.sizes.clone(), self.offsets().to_vec())
    }
}

/// The offsets of an instance with zero classes.
static EMPTY_OFFSETS: [usize; 1] = [0];

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        Instance::from_classes(3, &[vec![5, 3], vec![7], vec![2, 2, 2]]).unwrap()
    }

    #[test]
    fn from_classes_assigns_ids_in_order() {
        let inst = sample();
        assert_eq!(inst.num_jobs(), 6);
        assert_eq!(inst.class_of(0), 0);
        assert_eq!(inst.class_of(2), 1);
        assert_eq!(inst.class_of(5), 2);
        assert_eq!(inst.size(2), 7);
    }

    #[test]
    fn class_accessors() {
        let inst = sample();
        assert_eq!(inst.class_load(0), 8);
        assert_eq!(inst.class_load(2), 6);
        assert_eq!(inst.class_max_job(0), 5);
        assert_eq!(inst.class_max_job(2), 2);
        assert_eq!(inst.total_load(), 21);
        assert_eq!(inst.num_nonempty_classes(), 3);
    }

    #[test]
    fn new_infers_classes_from_ids() {
        let inst = Instance::new(2, vec![Job::new(4, 2), Job::new(1, 0), Job::new(2, 2)]).unwrap();
        assert_eq!(inst.num_classes(), 3);
        assert_eq!(inst.class_jobs(2), &[0, 2]);
        assert!(inst.class_jobs(1).is_empty());
        assert_eq!(inst.num_nonempty_classes(), 2);
    }

    #[test]
    fn flat_storage_is_grouped_by_class() {
        // Interleaved construction: flat buffers regroup by class, keeping
        // ascending job ids within each class.
        let inst = Instance::new(
            2,
            vec![
                Job::new(4, 2),
                Job::new(1, 0),
                Job::new(2, 2),
                Job::new(9, 1),
            ],
        )
        .unwrap();
        assert_eq!(inst.flat_sizes(), &[1, 9, 4, 2]);
        assert_eq!(inst.flat_job_ids(), &[1, 3, 0, 2]);
        assert_eq!(inst.class_offsets(), &[0, 1, 2, 4]);
        assert_eq!(inst.class_sizes(2), &[4, 2]);
        assert_eq!(inst.class_jobs(2), &[0, 2]);
        // Parallel slices: class_sizes[i] is the size of class_jobs[i].
        for c in 0..inst.num_classes() {
            for (slot, (&j, &p)) in inst
                .class_jobs(c)
                .iter()
                .zip(inst.class_sizes(c))
                .enumerate()
            {
                assert_eq!(inst.size(j), p, "class {c} slot {slot}");
                assert_eq!(inst.class_of(j), c);
            }
        }
    }

    #[test]
    fn from_flat_round_trips() {
        let inst = sample();
        let again = Instance::from_flat(
            inst.machines(),
            inst.flat_sizes().to_vec(),
            inst.class_offsets().to_vec(),
        )
        .unwrap();
        assert_eq!(again, inst);
        assert_eq!(
            Instance::from_flat(0, vec![1], vec![0, 1]).unwrap_err(),
            InstanceError::NoMachines
        );
        assert_eq!(
            Instance::from_flat(1, vec![u64::MAX, 1], vec![0, 1, 2]).unwrap_err(),
            InstanceError::LoadOverflow
        );
    }

    #[test]
    #[should_panic(expected = "monotone partition")]
    fn from_flat_rejects_bad_offsets() {
        let _ = Instance::from_flat(1, vec![1, 2], vec![0, 1]);
    }

    #[test]
    fn builder_accumulates_and_builds() {
        let mut b = InstanceBuilder::new();
        assert_eq!(b.offsets(), &[0]);
        b.reset(3);
        b.begin_class();
        b.push_size(5);
        b.push_size(3);
        b.begin_class();
        b.push_size(7);
        b.begin_class();
        for _ in 0..3 {
            b.push_size(2);
        }
        assert_eq!(b.num_classes(), 3);
        assert_eq!(b.num_jobs(), 6);
        assert_eq!(b.sizes(), &[5, 3, 7, 2, 2, 2]);
        assert_eq!(b.offsets(), &[0, 2, 3, 6]);
        assert_eq!(b.validate(), Ok(()));
        assert_eq!(b.build().unwrap(), sample());
        // Reset retains nothing logically but everything physically.
        b.reset(1);
        assert_eq!(b.num_classes(), 0);
        assert_eq!(b.num_jobs(), 0);
        assert_eq!(b.build().unwrap(), Instance::new(1, vec![]).unwrap());
    }

    #[test]
    fn builder_checks_invariants() {
        let mut b = InstanceBuilder::new();
        b.reset(0);
        assert_eq!(b.validate(), Err(InstanceError::NoMachines));
        b.reset(1);
        b.begin_class();
        b.push_size(u64::MAX);
        b.begin_class();
        b.push_size(1);
        assert_eq!(b.validate(), Err(InstanceError::LoadOverflow));
        assert_eq!(b.build().unwrap_err(), InstanceError::LoadOverflow);
    }

    #[test]
    fn zero_machines_rejected() {
        assert_eq!(
            Instance::new(0, vec![]).unwrap_err(),
            InstanceError::NoMachines
        );
        assert_eq!(
            Instance::from_classes(0, &[vec![1]]).unwrap_err(),
            InstanceError::NoMachines
        );
    }

    #[test]
    fn kth_largest() {
        let inst = sample(); // sizes 5,3,7,2,2,2
        assert_eq!(inst.kth_largest_size(1), Some(7));
        assert_eq!(inst.kth_largest_size(2), Some(5));
        assert_eq!(inst.kth_largest_size(3), Some(3));
        assert_eq!(inst.kth_largest_size(6), Some(2));
        assert_eq!(inst.kth_largest_size(7), None);
        assert_eq!(inst.kth_largest_size(0), None);
    }

    #[test]
    fn total_load_at_u64_max_is_accepted() {
        // Two jobs summing to exactly u64::MAX: legal, and the accessors
        // stay overflow-free.
        let a = u64::MAX / 2;
        let b = u64::MAX - a;
        let inst = Instance::from_classes(1, &[vec![a], vec![b]]).unwrap();
        assert_eq!(inst.total_load(), u64::MAX);
        assert_eq!(inst.kth_largest_size(1), Some(b));
    }

    #[test]
    fn total_load_overflow_is_rejected() {
        let big = u64::MAX / 2 + 1;
        assert_eq!(
            Instance::from_classes(2, &[vec![big], vec![big]]).unwrap_err(),
            InstanceError::LoadOverflow
        );
        assert_eq!(
            Instance::new(4, vec![Job::new(u64::MAX, 0), Job::new(1, 1)]).unwrap_err(),
            InstanceError::LoadOverflow
        );
        assert!(InstanceError::LoadOverflow.to_string().contains("overflow"));
    }

    #[test]
    fn empty_instance_is_legal() {
        let inst = Instance::new(1, vec![]).unwrap();
        assert_eq!(inst.num_jobs(), 0);
        assert_eq!(inst.total_load(), 0);
        assert_eq!(inst.num_classes(), 0);
        assert_eq!(inst.flat_sizes(), &[] as &[Time]);
        assert_eq!(inst.class_offsets(), &[0]);
    }
}
