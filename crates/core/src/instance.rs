//! Problem instances: jobs, processing times, classes (shared resources).

use std::fmt;

/// Integral time unit. Processing times, start times and makespans are `u64`;
/// products against rational thresholds are computed in `u128` (see
/// [`crate::frac`]), and [`Instance`] construction rejects inputs whose
/// *total* load exceeds `u64::MAX`, so load sums never overflow downstream.
pub type Time = u64;

/// Index of a job (position in [`Instance::jobs`]).
pub type JobId = usize;

/// Index of a class, i.e. of the shared resource the class corresponds to.
pub type ClassId = usize;

/// Index of a machine, `0..m`.
pub type MachineId = usize;

/// A single job: a processing time and the class (shared resource) it needs.
///
/// The paper allows `p_j ∈ ℕ≥0`; zero-size jobs are legal and occupy the empty
/// interval `[t, t)`, which never conflicts with anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// Processing time `p_j`.
    pub size: Time,
    /// Class / shared resource required by this job.
    pub class: ClassId,
}

impl Job {
    /// Creates a job with processing time `size` in class `class`.
    pub fn new(size: Time, class: ClassId) -> Self {
        Job { size, class }
    }
}

/// Errors raised when constructing an [`Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// The machine count was zero.
    NoMachines,
    /// A job referenced a class id `>= num_classes`.
    ClassOutOfRange {
        /// The offending job.
        job: JobId,
        /// Its class id.
        class: ClassId,
        /// Number of classes declared.
        num_classes: usize,
    },
    /// The total processing time `p(J)` exceeds `u64::MAX`. Rejected at
    /// construction so that every load sum downstream (area bound, class
    /// loads, remaining-load accounting) provably fits in [`Time`].
    LoadOverflow,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::NoMachines => write!(f, "instance must have at least one machine"),
            InstanceError::ClassOutOfRange {
                job,
                class,
                num_classes,
            } => write!(
                f,
                "job {job} references class {class}, but only {num_classes} classes exist"
            ),
            InstanceError::LoadOverflow => {
                write!(f, "total processing time overflows u64")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// Construction invariant: `p(J) = Σ p_j` must fit in [`Time`], so every
/// downstream load sum (area bound, class loads, branch-and-bound
/// remaining-load accounting) is overflow-free by construction.
fn check_total_load(jobs: &[Job]) -> Result<(), InstanceError> {
    jobs.iter()
        .try_fold(0 as Time, |acc, j| acc.checked_add(j.size))
        .map(|_| ())
        .ok_or(InstanceError::LoadOverflow)
}

/// An MSRS instance: `m` identical machines and a set of jobs partitioned into
/// classes. Each class corresponds to exactly one shared resource; no two jobs
/// of the same class may run concurrently in a valid schedule.
///
/// Jobs that need no resource are modelled — exactly as the paper notes — by
/// private singleton classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    machines: usize,
    jobs: Vec<Job>,
    /// For every class id, the jobs belonging to it (possibly empty for
    /// declared-but-unused class ids).
    classes: Vec<Vec<JobId>>,
}

impl Instance {
    /// Builds an instance from raw jobs. The number of classes is inferred as
    /// `max class id + 1` (all ids below that are legal, even if unused).
    pub fn new(machines: usize, jobs: Vec<Job>) -> Result<Self, InstanceError> {
        if machines == 0 {
            return Err(InstanceError::NoMachines);
        }
        check_total_load(&jobs)?;
        let num_classes = jobs.iter().map(|j| j.class + 1).max().unwrap_or(0);
        let mut classes = vec![Vec::new(); num_classes];
        for (id, job) in jobs.iter().enumerate() {
            classes[job.class].push(id);
        }
        Ok(Instance {
            machines,
            jobs,
            classes,
        })
    }

    /// Builds an instance from per-class job size lists: `class_sizes[c]` are
    /// the processing times of the jobs of class `c`. Job ids are assigned in
    /// iteration order.
    pub fn from_classes(machines: usize, class_sizes: &[Vec<Time>]) -> Result<Self, InstanceError> {
        let mut jobs = Vec::with_capacity(class_sizes.iter().map(Vec::len).sum());
        for (c, sizes) in class_sizes.iter().enumerate() {
            for &s in sizes {
                jobs.push(Job::new(s, c));
            }
        }
        if machines == 0 {
            return Err(InstanceError::NoMachines);
        }
        check_total_load(&jobs)?;
        let mut classes = vec![Vec::new(); class_sizes.len()];
        for (id, job) in jobs.iter().enumerate() {
            classes[job.class].push(id);
        }
        Ok(Instance {
            machines,
            jobs,
            classes,
        })
    }

    /// Number of machines `m`.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of declared classes (including empty ones).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of classes that actually contain at least one job.
    pub fn num_nonempty_classes(&self) -> usize {
        self.classes.iter().filter(|c| !c.is_empty()).count()
    }

    /// All jobs, indexed by [`JobId`].
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Processing time of job `j`.
    #[inline]
    pub fn size(&self, j: JobId) -> Time {
        self.jobs[j].size
    }

    /// Class of job `j`.
    #[inline]
    pub fn class_of(&self, j: JobId) -> ClassId {
        self.jobs[j].class
    }

    /// Jobs of class `c`.
    #[inline]
    pub fn class_jobs(&self, c: ClassId) -> &[JobId] {
        &self.classes[c]
    }

    /// Total processing time `p(c)` of class `c`.
    pub fn class_load(&self, c: ClassId) -> Time {
        self.classes[c].iter().map(|&j| self.jobs[j].size).sum()
    }

    /// Largest job size within class `c` (0 for an empty class).
    pub fn class_max_job(&self, c: ClassId) -> Time {
        self.classes[c]
            .iter()
            .map(|&j| self.jobs[j].size)
            .max()
            .unwrap_or(0)
    }

    /// Total processing time `p(J)` over all jobs.
    pub fn total_load(&self) -> Time {
        self.jobs.iter().map(|j| j.size).sum()
    }

    /// Iterator over non-empty class ids.
    pub fn nonempty_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(c, _)| c)
    }

    /// The `k`-th largest processing time over all jobs (`k` is 1-based);
    /// `None` if `k > n`. Used for the `p_(m) + p_(m+1)` lower bound.
    pub fn kth_largest_size(&self, k: usize) -> Option<Time> {
        if k == 0 || k > self.jobs.len() {
            return None;
        }
        let mut sizes: Vec<Time> = self.jobs.iter().map(|j| j.size).collect();
        // Select the k-th largest = (k-1)-th in descending order.
        let (_, kth, _) = sizes.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
        Some(*kth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        Instance::from_classes(3, &[vec![5, 3], vec![7], vec![2, 2, 2]]).unwrap()
    }

    #[test]
    fn from_classes_assigns_ids_in_order() {
        let inst = sample();
        assert_eq!(inst.num_jobs(), 6);
        assert_eq!(inst.class_of(0), 0);
        assert_eq!(inst.class_of(2), 1);
        assert_eq!(inst.class_of(5), 2);
        assert_eq!(inst.size(2), 7);
    }

    #[test]
    fn class_accessors() {
        let inst = sample();
        assert_eq!(inst.class_load(0), 8);
        assert_eq!(inst.class_load(2), 6);
        assert_eq!(inst.class_max_job(0), 5);
        assert_eq!(inst.class_max_job(2), 2);
        assert_eq!(inst.total_load(), 21);
        assert_eq!(inst.num_nonempty_classes(), 3);
    }

    #[test]
    fn new_infers_classes_from_ids() {
        let inst = Instance::new(2, vec![Job::new(4, 2), Job::new(1, 0), Job::new(2, 2)]).unwrap();
        assert_eq!(inst.num_classes(), 3);
        assert_eq!(inst.class_jobs(2), &[0, 2]);
        assert!(inst.class_jobs(1).is_empty());
        assert_eq!(inst.num_nonempty_classes(), 2);
    }

    #[test]
    fn zero_machines_rejected() {
        assert_eq!(
            Instance::new(0, vec![]).unwrap_err(),
            InstanceError::NoMachines
        );
        assert_eq!(
            Instance::from_classes(0, &[vec![1]]).unwrap_err(),
            InstanceError::NoMachines
        );
    }

    #[test]
    fn kth_largest() {
        let inst = sample(); // sizes 5,3,7,2,2,2
        assert_eq!(inst.kth_largest_size(1), Some(7));
        assert_eq!(inst.kth_largest_size(2), Some(5));
        assert_eq!(inst.kth_largest_size(3), Some(3));
        assert_eq!(inst.kth_largest_size(6), Some(2));
        assert_eq!(inst.kth_largest_size(7), None);
        assert_eq!(inst.kth_largest_size(0), None);
    }

    #[test]
    fn total_load_at_u64_max_is_accepted() {
        // Two jobs summing to exactly u64::MAX: legal, and the accessors
        // stay overflow-free.
        let a = u64::MAX / 2;
        let b = u64::MAX - a;
        let inst = Instance::from_classes(1, &[vec![a], vec![b]]).unwrap();
        assert_eq!(inst.total_load(), u64::MAX);
        assert_eq!(inst.kth_largest_size(1), Some(b));
    }

    #[test]
    fn total_load_overflow_is_rejected() {
        let big = u64::MAX / 2 + 1;
        assert_eq!(
            Instance::from_classes(2, &[vec![big], vec![big]]).unwrap_err(),
            InstanceError::LoadOverflow
        );
        assert_eq!(
            Instance::new(4, vec![Job::new(u64::MAX, 0), Job::new(1, 1)]).unwrap_err(),
            InstanceError::LoadOverflow
        );
        assert!(InstanceError::LoadOverflow.to_string().contains("overflow"));
    }

    #[test]
    fn empty_instance_is_legal() {
        let inst = Instance::new(1, vec![]).unwrap();
        assert_eq!(inst.num_jobs(), 0);
        assert_eq!(inst.total_load(), 0);
        assert_eq!(inst.num_classes(), 0);
    }
}
