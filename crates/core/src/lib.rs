//! # msrs-core — model and invariants for many-shared-resource scheduling
//!
//! This crate defines the problem model of **MSRS** (*many shared resources
//! scheduling*, `P | res·111 | Cmax`) as introduced by Hebrard et al. and
//! studied by Deppert, Jansen, Maack, Pukrop and Rau (2023): `n` jobs with
//! integral processing times must be scheduled on `m` identical parallel
//! machines; the jobs are partitioned into *classes*, each class corresponding
//! to one shared resource, and no two jobs of the same class may be processed
//! concurrently. The objective is to minimize the makespan.
//!
//! Provided here:
//!
//! * [`Instance`] / [`Job`] — the problem input, with class bookkeeping.
//! * [`Schedule`] — an explicit assignment of every job to a machine and an
//!   integral start time.
//! * [`validate()`](validate::validate) — an exact validator for the two overlap conditions of the
//!   problem definition (machine-exclusivity and resource-exclusivity).
//! * [`bounds`] — the lower bounds of the paper's Note 1 and Theorem 2:
//!   `T = max{⌈p(J)/m⌉, max_c p(c), p_(m) + p_(m+1)}`.
//! * [`frac`] — exact rational threshold comparisons (`p > (a/b)·T` without
//!   floating point), the backbone of the scaled case analysis in the 5/3-
//!   and 3/2-approximation algorithms.
//! * [`builder`] — a block-based schedule builder supporting the bottom- and
//!   top-aligned stack placements used throughout the paper's figures.
//! * [`render`] — an ASCII Gantt renderer in the visual style of the paper's
//!   Figures 1–4.
//!
//! All arithmetic is integral (`u64` times, `u128` intermediates); schedules
//! produced by the algorithm crates are *proved* valid by re-checking them
//! with [`validate::validate`] in tests rather than trusted by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod builder;
pub mod cancel;
pub mod canonical;
pub mod frac;
pub mod instance;
pub mod io;
pub mod render;
pub mod schedule;
pub mod stats;
pub mod validate;

pub use bounds::{lower_bound, LowerBounds};
pub use builder::{Block, ScheduleBuilder};
pub use cancel::CancelToken;
pub use canonical::{flat_fingerprint, CanonicalForm, CanonicalScratch};
pub use instance::{
    ClassId, Instance, InstanceBuilder, InstanceError, Job, JobId, MachineId, Time,
};
pub use schedule::{Assignment, Schedule};
pub use stats::{schedule_stats, ScheduleStats};
pub use validate::{validate, ValidationError};

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::bounds::{lower_bound, LowerBounds};
    pub use crate::builder::{Block, ScheduleBuilder};
    pub use crate::instance::{ClassId, Instance, Job, JobId, MachineId, Time};
    pub use crate::schedule::{Assignment, Schedule};
    pub use crate::validate::{validate, ValidationError};
}
