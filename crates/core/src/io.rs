//! Plain-text serialization for instances and schedules.
//!
//! A simple line-oriented format so instances can be shared, diffed, and fed
//! to external tools:
//!
//! ```text
//! msrs-instance v1
//! machines 3
//! class 4 3
//! class 5
//! class 2 2 2
//! ```
//!
//! ```text
//! msrs-schedule v1
//! job 0 machine 1 start 5
//! job 1 machine 0 start 0
//! ```
//!
//! `#`-prefixed lines and blank lines are ignored. Round trips are exact.

use std::fmt;

use crate::instance::{Instance, Time};
use crate::schedule::{Assignment, Schedule};

/// Parse errors for the text formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or wrong header line.
    BadHeader {
        /// What was expected.
        expected: &'static str,
    },
    /// A malformed line, with its 1-based number.
    BadLine {
        /// Line number (1-based, counting all lines).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The parsed content is inconsistent (e.g. duplicate job ids).
    Inconsistent(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader { expected } => {
                write!(f, "missing or invalid header; expected `{expected}`")
            }
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::Inconsistent(msg) => write!(f, "inconsistent input: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes an instance to the text format.
pub fn write_instance(inst: &Instance) -> String {
    let mut out = String::from("msrs-instance v1\n");
    out.push_str(&format!("machines {}\n", inst.machines()));
    for c in 0..inst.num_classes() {
        out.push_str("class");
        for &j in inst.class_jobs(c) {
            out.push_str(&format!(" {}", inst.size(j)));
        }
        out.push('\n');
    }
    out
}

/// Parses an instance from the text format. Job ids are assigned class by
/// class in declaration order (matching [`Instance::from_classes`]).
pub fn read_instance(text: &str) -> Result<Instance, ParseError> {
    let mut lines = text.lines().enumerate();
    let header = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
    match header {
        Some((_, l)) if l.trim() == "msrs-instance v1" => {}
        _ => {
            return Err(ParseError::BadHeader {
                expected: "msrs-instance v1",
            })
        }
    }
    let mut machines: Option<usize> = None;
    let mut classes: Vec<Vec<Time>> = Vec::new();
    for (i, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("machines") => {
                let v = parts
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| ParseError::BadLine {
                        line: i + 1,
                        reason: "expected `machines <count>`".into(),
                    })?;
                machines = Some(v);
            }
            Some("class") => {
                let sizes: Result<Vec<Time>, _> = parts
                    .map(|s| {
                        s.parse::<Time>().map_err(|_| ParseError::BadLine {
                            line: i + 1,
                            reason: format!("bad size `{s}`"),
                        })
                    })
                    .collect();
                let sizes = sizes?;
                if sizes.is_empty() {
                    return Err(ParseError::BadLine {
                        line: i + 1,
                        reason: "class needs at least one job".into(),
                    });
                }
                classes.push(sizes);
            }
            Some(other) => {
                return Err(ParseError::BadLine {
                    line: i + 1,
                    reason: format!("unknown directive `{other}`"),
                })
            }
            None => {}
        }
    }
    let machines = machines.ok_or(ParseError::Inconsistent("no `machines` line".into()))?;
    Instance::from_classes(machines, &classes).map_err(|e| ParseError::Inconsistent(e.to_string()))
}

/// Serializes a schedule to the text format.
pub fn write_schedule(schedule: &Schedule) -> String {
    let mut out = String::from("msrs-schedule v1\n");
    for (j, a) in schedule.assignments().iter().enumerate() {
        out.push_str(&format!(
            "job {j} machine {} start {}\n",
            a.machine, a.start
        ));
    }
    out
}

/// Parses a schedule from the text format. Jobs must appear exactly once
/// each, covering `0..n` for some `n`.
pub fn read_schedule(text: &str) -> Result<Schedule, ParseError> {
    let mut lines = text.lines().enumerate();
    let header = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
    match header {
        Some((_, l)) if l.trim() == "msrs-schedule v1" => {}
        _ => {
            return Err(ParseError::BadHeader {
                expected: "msrs-schedule v1",
            })
        }
    }
    let mut entries: Vec<(usize, Assignment)> = Vec::new();
    for (i, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let bad = |reason: &str| ParseError::BadLine {
            line: i + 1,
            reason: reason.into(),
        };
        if toks.len() != 6 || toks[0] != "job" || toks[2] != "machine" || toks[4] != "start" {
            return Err(bad("expected `job <id> machine <q> start <t>`"));
        }
        let job: usize = toks[1].parse().map_err(|_| bad("bad job id"))?;
        let machine: usize = toks[3].parse().map_err(|_| bad("bad machine"))?;
        let start: Time = toks[5].parse().map_err(|_| bad("bad start"))?;
        entries.push((job, Assignment { machine, start }));
    }
    entries.sort_by_key(|&(j, _)| j);
    for (k, &(j, _)) in entries.iter().enumerate() {
        if j != k {
            return Err(ParseError::Inconsistent(format!(
                "job ids must cover 0..n exactly once (saw {j} at position {k})"
            )));
        }
    }
    Ok(Schedule::new(entries.into_iter().map(|(_, a)| a).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        Instance::from_classes(3, &[vec![4, 3], vec![5], vec![2, 2, 2]]).unwrap()
    }

    #[test]
    fn instance_round_trip() {
        let inst = sample();
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn schedule_round_trip() {
        let s = Schedule::new(vec![
            Assignment {
                machine: 0,
                start: 0,
            },
            Assignment {
                machine: 2,
                start: 4,
            },
            Assignment {
                machine: 1,
                start: 9,
            },
        ]);
        let text = write_schedule(&s);
        assert_eq!(read_schedule(&text).unwrap(), s);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\nmsrs-instance v1\nmachines 2\n# inline\nclass 1 2\n";
        let inst = read_instance(text).unwrap();
        assert_eq!(inst.machines(), 2);
        assert_eq!(inst.num_jobs(), 2);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            read_instance("msrs-schedule v1\n"),
            Err(ParseError::BadHeader { .. })
        ));
        assert!(matches!(
            read_schedule("nope\n"),
            Err(ParseError::BadHeader { .. })
        ));
    }

    #[test]
    fn bad_lines_reported_with_numbers() {
        let text = "msrs-instance v1\nmachines 2\nclass 1 x\n";
        match read_instance(text) {
            Err(ParseError::BadLine { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn empty_class_rejected() {
        let text = "msrs-instance v1\nmachines 2\nclass\n";
        assert!(matches!(
            read_instance(text),
            Err(ParseError::BadLine { .. })
        ));
    }

    #[test]
    fn missing_machines_rejected() {
        let text = "msrs-instance v1\nclass 1\n";
        assert!(matches!(
            read_instance(text),
            Err(ParseError::Inconsistent(_))
        ));
    }

    #[test]
    fn schedule_gap_in_job_ids_rejected() {
        let text = "msrs-schedule v1\njob 0 machine 0 start 0\njob 2 machine 0 start 5\n";
        assert!(matches!(
            read_schedule(text),
            Err(ParseError::Inconsistent(_))
        ));
    }

    #[test]
    fn pipeline_round_trip_with_algorithms() {
        // Serialize an instance, read it back, schedule it, serialize the
        // schedule, read it back, and validate.
        let inst = sample();
        let inst2 = read_instance(&write_instance(&inst)).unwrap();
        let r = msrs_test_helpers_three_halves(&inst2);
        let s2 = read_schedule(&write_schedule(&r)).unwrap();
        assert_eq!(crate::validate::validate(&inst2, &s2), Ok(()));
    }

    /// Local stand-in: core cannot depend on msrs-approx, so build a trivial
    /// valid schedule (one machine per class) for the round-trip test.
    fn msrs_test_helpers_three_halves(inst: &Instance) -> Schedule {
        let mut b = crate::builder::ScheduleBuilder::new(inst, inst.total_load().max(1));
        for (machine, c) in inst.nonempty_classes().enumerate() {
            b.push_bottom(
                machine % inst.machines(),
                crate::builder::Block::whole_class(inst, c),
            );
        }
        b.finalize().unwrap()
    }
}
