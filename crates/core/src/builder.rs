//! Block-based schedule construction.
//!
//! The 5/3- and 3/2-approximation algorithms of the paper place whole classes
//! (or class *parts*, cf. Lemmas 5, 10, 11) as consecutive blocks that are
//! either **bottom-aligned** ("starts at 0", stacked upwards) or
//! **top-aligned** ("ends at 3/2", stacked downwards from a horizon `H`).
//! [`ScheduleBuilder`] models a machine as exactly these two stacks and turns
//! the arrangement into per-job integral start times on
//! [`ScheduleBuilder::finalize`].
//!
//! The builder *checks* the geometric invariants the proofs rely on: pushing a
//! block that would make the bottom stack collide with the top stack panics
//! immediately (an algorithm bug, not a user error), and `finalize` reports
//! any unplaced or duplicated jobs.

use std::fmt;

use crate::instance::{ClassId, Instance, JobId, MachineId, Time};
use crate::schedule::{Assignment, Schedule};

/// A consecutive run of jobs of a single class, placed as one unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The class all jobs of this block belong to.
    pub class: ClassId,
    /// The jobs, scheduled consecutively in this order.
    pub jobs: Vec<JobId>,
    /// Total processing time of the block.
    pub len: Time,
}

impl Block {
    /// Builds a block from a set of jobs of `inst`.
    ///
    /// # Panics
    /// If `jobs` is empty or the jobs span more than one class.
    pub fn from_jobs(inst: &Instance, jobs: Vec<JobId>) -> Self {
        assert!(!jobs.is_empty(), "a block needs at least one job");
        let class = inst.class_of(jobs[0]);
        let mut len: Time = 0;
        for &j in &jobs {
            assert_eq!(inst.class_of(j), class, "block jobs must share a class");
            len += inst.size(j);
        }
        Block { class, jobs, len }
    }

    /// Builds a block holding the entire class `c`.
    pub fn whole_class(inst: &Instance, c: ClassId) -> Self {
        Self::from_jobs(inst, inst.class_jobs(c).to_vec())
    }
}

/// A block with its resolved start time on a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedBlock<'b> {
    /// The block.
    pub block: &'b Block,
    /// Resolved start time.
    pub start: Time,
}

#[derive(Debug, Clone, Default)]
struct MachineSlot {
    bottom: Vec<Block>,
    /// Top-aligned stack; `top[0]` ends at the horizon, `top[i+1]` ends where
    /// `top[i]` starts.
    top: Vec<Block>,
    bottom_len: Time,
    top_len: Time,
}

/// Errors reported by [`ScheduleBuilder::finalize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Some jobs were never placed.
    UnplacedJobs {
        /// Number of missing jobs.
        count: usize,
        /// A sample of missing job ids (at most 8).
        sample: Vec<JobId>,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnplacedJobs { count, sample } => {
                write!(f, "{count} jobs were never placed (e.g. {sample:?})")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental schedule builder over bottom-/top-aligned block stacks.
#[derive(Debug, Clone)]
pub struct ScheduleBuilder<'a> {
    inst: &'a Instance,
    horizon: Time,
    machines: Vec<MachineSlot>,
    placed: Vec<bool>,
}

impl<'a> ScheduleBuilder<'a> {
    /// Creates a builder for `inst` with completion horizon `horizon` (e.g.
    /// `⌊(5/3)T⌋` for `Algorithm_5/3`). Top-aligned blocks end at `horizon`.
    pub fn new(inst: &'a Instance, horizon: Time) -> Self {
        ScheduleBuilder {
            inst,
            horizon,
            machines: vec![MachineSlot::default(); inst.machines()],
            placed: vec![false; inst.num_jobs()],
        }
    }

    /// The completion horizon.
    #[inline]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// The instance being scheduled.
    #[inline]
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// Total load currently on `machine`.
    #[inline]
    pub fn load(&self, machine: MachineId) -> Time {
        self.machines[machine].bottom_len + self.machines[machine].top_len
    }

    /// End of the bottom stack (first free time from below).
    #[inline]
    pub fn bottom_end(&self, machine: MachineId) -> Time {
        self.machines[machine].bottom_len
    }

    /// Start of the top stack (first occupied time from above); equals the
    /// horizon while the top stack is empty.
    #[inline]
    pub fn top_start(&self, machine: MachineId) -> Time {
        self.horizon - self.machines[machine].top_len
    }

    /// Free contiguous time between the two stacks.
    #[inline]
    pub fn gap(&self, machine: MachineId) -> Time {
        self.top_start(machine) - self.bottom_end(machine)
    }

    fn mark_placed(&mut self, block: &Block) {
        for &j in &block.jobs {
            assert!(!self.placed[j], "invariant violation: job {j} placed twice");
            self.placed[j] = true;
        }
    }

    fn check_fits(&self, machine: MachineId, len: Time) {
        let slot = &self.machines[machine];
        assert!(
            slot.bottom_len + slot.top_len + len <= self.horizon,
            "invariant violation: machine {machine} would exceed horizon {} \
             (bottom {}, top {}, new block {len})",
            self.horizon,
            slot.bottom_len,
            slot.top_len
        );
    }

    /// Appends `block` on top of the bottom stack of `machine` (it starts at
    /// the current [`Self::bottom_end`]).
    ///
    /// # Panics
    /// If a job of the block was already placed or the stacks would collide.
    pub fn push_bottom(&mut self, machine: MachineId, block: Block) {
        self.check_fits(machine, block.len);
        self.mark_placed(&block);
        let slot = &mut self.machines[machine];
        slot.bottom_len += block.len;
        slot.bottom.push(block);
    }

    /// Inserts `block` at the very bottom of `machine`, delaying all existing
    /// bottom blocks by `block.len` (the "delay the first job" move of
    /// `Algorithm_5/3`, Step 2).
    ///
    /// # Panics
    /// As [`Self::push_bottom`].
    pub fn push_bottom_front(&mut self, machine: MachineId, block: Block) {
        self.check_fits(machine, block.len);
        self.mark_placed(&block);
        let slot = &mut self.machines[machine];
        slot.bottom_len += block.len;
        slot.bottom.insert(0, block);
    }

    /// Hangs `block` below the current top stack of `machine`; it ends at the
    /// current [`Self::top_start`] (so the first top-pushed block ends exactly
    /// at the horizon).
    ///
    /// # Panics
    /// As [`Self::push_bottom`].
    pub fn push_top(&mut self, machine: MachineId, block: Block) {
        self.check_fits(machine, block.len);
        self.mark_placed(&block);
        let slot = &mut self.machines[machine];
        slot.top_len += block.len;
        slot.top.push(block);
    }

    /// Converts the entire bottom stack of `machine` into a top-aligned stack
    /// preserving job order, so its last block ends at the horizon ("shift all
    /// jobs up", `Algorithm_3/2` Steps 4 and 8).
    ///
    /// # Panics
    /// If the machine already has top-aligned blocks.
    pub fn raise_to_top(&mut self, machine: MachineId) {
        let slot = &mut self.machines[machine];
        assert!(
            slot.top.is_empty(),
            "invariant violation: raise_to_top with a non-empty top stack"
        );
        // Bottom order [b1, b2, …, bk] becomes top order [bk, …, b2, b1]
        // (top[0] ends at the horizon).
        slot.top = slot.bottom.drain(..).rev().collect();
        slot.top_len = slot.bottom_len;
        slot.bottom_len = 0;
    }

    /// Moves the bottom block at `idx` of `machine` to the front of the
    /// bottom stack (it will start at time 0). Part of the *rotation*
    /// argument of `Algorithm_3/2`, Steps 5 and 10.
    pub fn rotate_bottom_block_to_front(&mut self, machine: MachineId, idx: usize) {
        let slot = &mut self.machines[machine];
        let block = slot.bottom.remove(idx);
        slot.bottom.insert(0, block);
    }

    /// Moves the bottom block at `idx` of `machine` onto the top stack (it
    /// will end at the current top start). The other half of the rotation.
    pub fn rotate_bottom_block_to_top(&mut self, machine: MachineId, idx: usize) {
        let slot = &mut self.machines[machine];
        let block = slot.bottom.remove(idx);
        slot.bottom_len -= block.len;
        slot.top_len += block.len;
        slot.top.push(block);
    }

    /// Index (within the bottom stack of `machine`) of the block whose first
    /// job is `job`, if any. Used to locate a block for rotation.
    pub fn find_bottom_block(&self, machine: MachineId, job: JobId) -> Option<usize> {
        self.machines[machine]
            .bottom
            .iter()
            .position(|b| b.jobs.first() == Some(&job))
    }

    /// All blocks of `machine` with resolved start times, bottom stack first
    /// (ascending), then top stack (descending start).
    pub fn blocks(&self, machine: MachineId) -> Vec<PlacedBlock<'_>> {
        let slot = &self.machines[machine];
        let mut out = Vec::with_capacity(slot.bottom.len() + slot.top.len());
        let mut cur: Time = 0;
        for b in &slot.bottom {
            out.push(PlacedBlock {
                block: b,
                start: cur,
            });
            cur += b.len;
        }
        let mut cur = self.horizon;
        for b in &slot.top {
            cur -= b.len;
            out.push(PlacedBlock {
                block: b,
                start: cur,
            });
        }
        out
    }

    /// Resolved time interval `[start, end)` currently occupied by the jobs
    /// of class `c` on any machine, if the class has been placed contiguously
    /// on a single machine. Used by the rotation logic to find where the
    /// subroutine placed the counterpart `c''`.
    pub fn class_interval(&self, c: ClassId) -> Option<(Time, Time)> {
        let mut found: Option<(Time, Time)> = None;
        for m in 0..self.machines.len() {
            for pb in self.blocks(m) {
                if pb.block.class == c {
                    let iv = (pb.start, pb.start + pb.block.len);
                    found = match found {
                        None => Some(iv),
                        // Merge adjacent blocks of the same class on the same
                        // machine (they are consecutive by construction).
                        Some((s, e)) if iv.0 == e => Some((s, iv.1)),
                        Some((s, e)) if iv.1 == s => Some((iv.0, e)),
                        Some(_) => return None, // split across machines
                    };
                }
            }
        }
        found
    }

    /// Locates the block whose *first* job is `j` and returns
    /// `(machine, start, end)` with resolved times. Job ids are unique across
    /// blocks, so this identifies a block unambiguously. Used by the rotation
    /// argument of `Algorithm_3/2` (Steps 5 and 10) to find where the
    /// subroutine placed the counterpart part of a split class.
    pub fn find_block_by_first_job(&self, j: JobId) -> Option<(MachineId, Time, Time)> {
        for m in 0..self.machines.len() {
            for pb in self.blocks(m) {
                if pb.block.jobs.first() == Some(&j) {
                    return Some((m, pb.start, pb.start + pb.block.len));
                }
            }
        }
        None
    }

    /// Whether job `j` has been placed already.
    #[inline]
    pub fn is_placed(&self, j: JobId) -> bool {
        self.placed[j]
    }

    /// Number of jobs placed so far.
    pub fn placed_count(&self) -> usize {
        self.placed.iter().filter(|&&p| p).count()
    }

    /// Resolves all blocks into a [`Schedule`].
    pub fn finalize(self) -> Result<Schedule, BuildError> {
        let missing: Vec<JobId> = self
            .placed
            .iter()
            .enumerate()
            .filter(|(_, &p)| !p)
            .map(|(j, _)| j)
            .collect();
        if !missing.is_empty() {
            return Err(BuildError::UnplacedJobs {
                count: missing.len(),
                sample: missing.into_iter().take(8).collect(),
            });
        }
        let mut assignments = vec![
            Assignment {
                machine: 0,
                start: 0
            };
            self.inst.num_jobs()
        ];
        for (machine, slot) in self.machines.iter().enumerate() {
            let mut cur: Time = 0;
            for b in &slot.bottom {
                for &j in &b.jobs {
                    assignments[j] = Assignment {
                        machine,
                        start: cur,
                    };
                    cur += self.inst.size(j);
                }
            }
            let mut cur = self.horizon;
            for b in &slot.top {
                cur -= b.len;
                let mut t = cur;
                for &j in &b.jobs {
                    assignments[j] = Assignment { machine, start: t };
                    t += self.inst.size(j);
                }
            }
        }
        Ok(Schedule::new(assignments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    fn inst() -> Instance {
        // class 0: sizes 3,2 — class 1: 4 — class 2: 1,1
        Instance::from_classes(2, &[vec![3, 2], vec![4], vec![1, 1]]).unwrap()
    }

    #[test]
    fn bottom_and_top_stacks_resolve() {
        let inst = inst();
        let mut b = ScheduleBuilder::new(&inst, 10);
        b.push_bottom(0, Block::from_jobs(&inst, vec![0, 1])); // class 0 at [0,5)
        b.push_top(0, Block::from_jobs(&inst, vec![2])); // class 1 at [6,10)
        b.push_bottom(1, Block::from_jobs(&inst, vec![3, 4])); // class 2 at [0,2)
        assert_eq!(b.bottom_end(0), 5);
        assert_eq!(b.top_start(0), 6);
        assert_eq!(b.gap(0), 1);
        let s = b.finalize().unwrap();
        assert_eq!(s.assignment(0).start, 0);
        assert_eq!(s.assignment(1).start, 3);
        assert_eq!(s.assignment(2).start, 6);
        assert_eq!(s.assignment(3).start, 0);
        assert_eq!(s.assignment(4).start, 1);
        assert_eq!(validate(&inst, &s), Ok(()));
    }

    #[test]
    fn push_bottom_front_delays_existing_blocks() {
        let inst = inst();
        let mut b = ScheduleBuilder::new(&inst, 12);
        b.push_bottom(0, Block::from_jobs(&inst, vec![2])); // class 1, len 4
        b.push_bottom_front(0, Block::from_jobs(&inst, vec![3, 4])); // class 2, len 2
        b.push_bottom(1, Block::from_jobs(&inst, vec![0, 1]));
        let s = b.finalize().unwrap();
        assert_eq!(s.assignment(3).start, 0);
        assert_eq!(s.assignment(2).start, 2); // delayed behind the front block
    }

    #[test]
    fn top_stack_grows_downwards() {
        let inst = inst();
        let mut b = ScheduleBuilder::new(&inst, 12);
        b.push_top(0, Block::from_jobs(&inst, vec![2])); // ends at 12 → [8,12)
        b.push_top(0, Block::from_jobs(&inst, vec![0])); // ends at 8 → [5,8)
        assert_eq!(b.top_start(0), 5);
        b.push_bottom(1, Block::from_jobs(&inst, vec![1]));
        b.push_bottom(1, Block::from_jobs(&inst, vec![3, 4]));
        let s = b.finalize().unwrap();
        assert_eq!(s.assignment(2).start, 8);
        assert_eq!(s.assignment(0).start, 5);
    }

    #[test]
    fn raise_to_top_preserves_order() {
        let inst = inst();
        let mut b = ScheduleBuilder::new(&inst, 12);
        b.push_bottom(0, Block::from_jobs(&inst, vec![0])); // len 3
        b.push_bottom(0, Block::from_jobs(&inst, vec![2])); // len 4
        b.raise_to_top(0);
        assert_eq!(b.bottom_end(0), 0);
        assert_eq!(b.top_start(0), 5);
        b.push_bottom(1, Block::from_jobs(&inst, vec![1]));
        b.push_bottom(1, Block::from_jobs(&inst, vec![3, 4]));
        let s = b.finalize().unwrap();
        assert_eq!(s.assignment(0).start, 5); // [5,8)
        assert_eq!(s.assignment(2).start, 8); // [8,12): order preserved
    }

    #[test]
    fn rotation_moves_blocks() {
        let inst = inst();
        let mut b = ScheduleBuilder::new(&inst, 12);
        b.push_bottom(0, Block::from_jobs(&inst, vec![2])); // class 1, len 4
        b.push_bottom(0, Block::from_jobs(&inst, vec![1])); // class 0, len 2
        let idx = b.find_bottom_block(0, 1).unwrap();
        b.rotate_bottom_block_to_top(0, idx);
        b.push_bottom(1, Block::from_jobs(&inst, vec![0]));
        b.push_bottom(1, Block::from_jobs(&inst, vec![3, 4]));
        let s = b.finalize().unwrap();
        assert_eq!(s.assignment(2).start, 0);
        assert_eq!(s.assignment(1).start, 10); // ends at horizon
    }

    #[test]
    fn class_interval_merges_contiguous_blocks() {
        let inst = inst();
        let mut b = ScheduleBuilder::new(&inst, 12);
        b.push_bottom(0, Block::from_jobs(&inst, vec![0]));
        b.push_bottom(0, Block::from_jobs(&inst, vec![1]));
        assert_eq!(b.class_interval(0), Some((0, 5)));
        assert_eq!(b.class_interval(1), None);
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn double_placement_panics() {
        let inst = inst();
        let mut b = ScheduleBuilder::new(&inst, 12);
        b.push_bottom(0, Block::from_jobs(&inst, vec![0]));
        b.push_bottom(1, Block::from_jobs(&inst, vec![0]));
    }

    #[test]
    #[should_panic(expected = "exceed horizon")]
    fn stack_collision_panics() {
        let inst = inst();
        let mut b = ScheduleBuilder::new(&inst, 6);
        b.push_bottom(0, Block::from_jobs(&inst, vec![0, 1])); // len 5
        b.push_top(0, Block::from_jobs(&inst, vec![2])); // len 4 > gap
    }

    #[test]
    fn finalize_reports_unplaced() {
        let inst = inst();
        let b = ScheduleBuilder::new(&inst, 6);
        match b.finalize() {
            Err(BuildError::UnplacedJobs { count, .. }) => assert_eq!(count, 5),
            other => panic!("expected UnplacedJobs, got {other:?}"),
        }
    }
}
