//! Exact validation of schedules against the MSRS feasibility definition.
//!
//! A schedule `(σ, t)` is *valid* iff
//!
//! 1. no two jobs on the same machine overlap in time, and
//! 2. no two jobs of the same class overlap in time (on any machines).
//!
//! Two jobs `[s₁, s₁+p₁)` and `[s₂, s₂+p₂)` overlap iff `s₁ < s₂+p₂` and
//! `s₂ < s₁+p₁`; zero-length jobs occupy an empty interval and therefore never
//! overlap anything, matching the paper's `p_j ∈ ℕ≥0` convention.

use std::fmt;

use crate::instance::{ClassId, Instance, JobId, MachineId};
use crate::schedule::Schedule;

/// The ways a schedule can be infeasible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The schedule does not assign exactly one slot per job.
    WrongJobCount {
        /// Jobs in the instance.
        expected: usize,
        /// Assignments in the schedule.
        actual: usize,
    },
    /// A job was placed on a machine id `>= m`.
    MachineOutOfRange {
        /// The offending job.
        job: JobId,
        /// The machine it was placed on.
        machine: MachineId,
        /// Number of machines in the instance.
        machines: usize,
    },
    /// Two jobs overlap on the same machine.
    MachineOverlap {
        /// Machine on which the overlap occurs.
        machine: MachineId,
        /// First involved job.
        job_a: JobId,
        /// Second involved job.
        job_b: JobId,
    },
    /// Two jobs of the same class run concurrently.
    ClassConflict {
        /// The class (shared resource) involved.
        class: ClassId,
        /// First involved job.
        job_a: JobId,
        /// Second involved job.
        job_b: JobId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WrongJobCount { expected, actual } => {
                write!(f, "schedule has {actual} assignments for {expected} jobs")
            }
            ValidationError::MachineOutOfRange {
                job,
                machine,
                machines,
            } => {
                write!(
                    f,
                    "job {job} assigned to machine {machine} (only {machines} machines)"
                )
            }
            ValidationError::MachineOverlap {
                machine,
                job_a,
                job_b,
            } => {
                write!(f, "jobs {job_a} and {job_b} overlap on machine {machine}")
            }
            ValidationError::ClassConflict {
                class,
                job_a,
                job_b,
            } => {
                write!(
                    f,
                    "jobs {job_a} and {job_b} of class {class} run concurrently"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks that `schedule` is a valid MSRS schedule for `inst`.
///
/// Runs in `O(n log n)` (two sweeps over start-sorted job groups).
pub fn validate(inst: &Instance, schedule: &Schedule) -> Result<(), ValidationError> {
    if schedule.len() != inst.num_jobs() {
        return Err(ValidationError::WrongJobCount {
            expected: inst.num_jobs(),
            actual: schedule.len(),
        });
    }
    for (j, a) in schedule.assignments().iter().enumerate() {
        if a.machine >= inst.machines() {
            return Err(ValidationError::MachineOutOfRange {
                job: j,
                machine: a.machine,
                machines: inst.machines(),
            });
        }
    }

    // Machine-exclusivity: one flat sort by (machine, start, job) — ties in
    // start resolve by job id, matching what a per-machine stable sort over
    // jobs pushed in id order produced — then a neighbour sweep within each
    // machine run. One allocation instead of one per machine.
    let mut by_machine: Vec<JobId> = (0..schedule.len()).filter(|&j| inst.size(j) > 0).collect();
    by_machine.sort_unstable_by_key(|&j| {
        (
            schedule.assignment(j).machine,
            schedule.assignment(j).start,
            j,
        )
    });
    for w in by_machine.windows(2) {
        let (a, b) = (w[0], w[1]);
        let machine = schedule.assignment(a).machine;
        if machine != schedule.assignment(b).machine {
            continue;
        }
        if schedule.completion(inst, a) > schedule.assignment(b).start {
            return Err(ValidationError::MachineOverlap {
                machine,
                job_a: a,
                job_b: b,
            });
        }
    }

    // Resource-exclusivity: the instance's flat storage already groups jobs
    // by class (ascending job id within the class), so one reused scratch
    // buffer per class span suffices.
    let mut jobs: Vec<JobId> = Vec::new();
    for class in 0..inst.num_classes() {
        jobs.clear();
        jobs.extend(
            inst.class_jobs(class)
                .iter()
                .copied()
                .filter(|&j| inst.size(j) > 0),
        );
        jobs.sort_unstable_by_key(|&j| (schedule.assignment(j).start, j));
        for w in jobs.windows(2) {
            let (a, b) = (w[0], w[1]);
            if schedule.completion(inst, a) > schedule.assignment(b).start {
                return Err(ValidationError::ClassConflict {
                    class,
                    job_a: a,
                    job_b: b,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::schedule::{Assignment, Schedule};

    fn inst() -> Instance {
        // class 0: jobs 0 (p=3), 1 (p=2); class 1: job 2 (p=4)
        Instance::from_classes(2, &[vec![3, 2], vec![4]]).unwrap()
    }

    fn asg(machine: usize, start: u64) -> Assignment {
        Assignment { machine, start }
    }

    #[test]
    fn accepts_valid_schedule() {
        let s = Schedule::new(vec![asg(0, 0), asg(1, 3), asg(1, 5)]);
        assert_eq!(validate(&inst(), &s), Ok(()));
    }

    #[test]
    fn rejects_machine_overlap() {
        let s = Schedule::new(vec![asg(0, 0), asg(0, 2), asg(1, 0)]);
        assert_eq!(
            validate(&inst(), &s),
            Err(ValidationError::MachineOverlap {
                machine: 0,
                job_a: 0,
                job_b: 1
            })
        );
    }

    #[test]
    fn rejects_class_conflict_across_machines() {
        // Jobs 0 and 1 share class 0 but run concurrently on two machines.
        let s = Schedule::new(vec![asg(0, 0), asg(1, 1), asg(1, 4)]);
        assert_eq!(
            validate(&inst(), &s),
            Err(ValidationError::ClassConflict {
                class: 0,
                job_a: 0,
                job_b: 1
            })
        );
    }

    #[test]
    fn back_to_back_is_legal() {
        // Job 1 starts exactly when job 0 completes — both on one machine and
        // in the same class.
        let s = Schedule::new(vec![asg(0, 0), asg(0, 3), asg(1, 0)]);
        assert_eq!(validate(&inst(), &s), Ok(()));
    }

    #[test]
    fn rejects_out_of_range_machine() {
        let s = Schedule::new(vec![asg(0, 0), asg(5, 3), asg(1, 0)]);
        assert!(matches!(
            validate(&inst(), &s),
            Err(ValidationError::MachineOutOfRange {
                job: 1,
                machine: 5,
                ..
            })
        ));
    }

    #[test]
    fn rejects_wrong_job_count() {
        let s = Schedule::new(vec![asg(0, 0)]);
        assert!(matches!(
            validate(&inst(), &s),
            Err(ValidationError::WrongJobCount { .. })
        ));
    }

    #[test]
    fn zero_size_jobs_never_conflict() {
        let inst = Instance::from_classes(1, &[vec![0, 0, 5]]).unwrap();
        // All three jobs of the same class at time 0 on machine 0; only the
        // size-5 job actually occupies time.
        let s = Schedule::new(vec![asg(0, 0), asg(0, 0), asg(0, 0)]);
        assert_eq!(validate(&inst, &s), Ok(()));
    }
}
