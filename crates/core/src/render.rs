//! ASCII Gantt rendering in the visual style of the paper's Figures 1–4.
//!
//! Machines are rows, time flows left to right, and each job is drawn as a
//! bracketed box labelled with its class. Used by the examples and by the E6
//! experiment ("algorithm-step anatomy") to regenerate the figure content.

use crate::instance::{Instance, Time};
use crate::schedule::Schedule;

/// Renders `schedule` as an ASCII Gantt chart, `width` characters of timeline
/// per row. Zero-size jobs are omitted (they occupy no time).
pub fn render_gantt(inst: &Instance, schedule: &Schedule, width: usize) -> String {
    let width = width.max(10);
    let horizon = schedule.makespan(inst).max(1);
    let scale = |t: Time| -> usize { ((t as u128 * width as u128) / horizon as u128) as usize };

    let mut out = String::new();
    out.push_str(&format!(
        "time 0 {:>w$}\n",
        format!("{horizon}"),
        w = width.saturating_sub(5)
    ));
    for machine in 0..inst.machines() {
        let mut row = vec![b' '; width + 1];
        for j in schedule.machine_jobs(machine) {
            let p = inst.size(j);
            if p == 0 {
                continue;
            }
            let a = schedule.assignment(j);
            let (s, e) = (scale(a.start), scale(a.start + p).max(scale(a.start) + 1));
            let e = e.min(width);
            for cell in row.iter_mut().take(e).skip(s) {
                *cell = b'-';
            }
            row[s] = b'|';
            if e > s {
                row[e.min(width)] = b'|';
            }
            let label = format!("c{}", inst.class_of(j));
            let mid = s + 1;
            for (k, ch) in label.bytes().enumerate() {
                if mid + k < e {
                    row[mid + k] = ch;
                }
            }
        }
        out.push_str(&format!(
            "M{machine:<3}|{}\n",
            String::from_utf8_lossy(&row)
        ));
    }
    out
}

/// One line per machine: `machine: load / makespan`, a compact numeric view
/// used by the experiment tables.
pub fn render_loads(inst: &Instance, schedule: &Schedule) -> String {
    let mut out = String::new();
    let cmax = schedule.makespan(inst);
    for machine in 0..inst.machines() {
        let load = schedule.machine_load(inst, machine);
        out.push_str(&format!("M{machine}: load {load} (makespan {cmax})\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::schedule::{Assignment, Schedule};

    fn setup() -> (Instance, Schedule) {
        let inst = Instance::from_classes(2, &[vec![4, 2], vec![3]]).unwrap();
        let sched = Schedule::new(vec![
            Assignment {
                machine: 0,
                start: 0,
            },
            Assignment {
                machine: 1,
                start: 4,
            },
            Assignment {
                machine: 1,
                start: 0,
            },
        ]);
        (inst, sched)
    }

    #[test]
    fn renders_all_machines() {
        let (inst, sched) = setup();
        let g = render_gantt(&inst, &sched, 40);
        assert!(g.contains("M0"));
        assert!(g.contains("M1"));
        assert!(g.contains("c0"));
        assert!(g.contains("c1"));
    }

    #[test]
    fn render_is_stable_for_empty_schedule() {
        let inst = Instance::new(2, vec![]).unwrap();
        let sched = Schedule::new(vec![]);
        let g = render_gantt(&inst, &sched, 20);
        assert!(g.contains("M0"));
    }

    #[test]
    fn loads_summary_contains_loads() {
        let (inst, sched) = setup();
        let l = render_loads(&inst, &sched);
        assert!(l.contains("M0: load 4"));
        assert!(l.contains("M1: load 5"));
    }

    #[test]
    fn zero_size_jobs_are_skipped() {
        let inst = Instance::from_classes(1, &[vec![0, 3]]).unwrap();
        let sched = Schedule::new(vec![
            Assignment {
                machine: 0,
                start: 0,
            },
            Assignment {
                machine: 0,
                start: 0,
            },
        ]);
        let g = render_gantt(&inst, &sched, 20);
        assert!(g.contains("c0"));
    }
}
