//! Canonical forms and stable fingerprints of instances.
//!
//! An MSRS instance is fully described by its machine count plus the
//! *multiset of class job-size multisets*: machine identities carry no
//! information (machines are identical), class ids are interchangeable
//! labels, and the order of jobs within a class — or of jobs in the input —
//! is irrelevant. Two instances that differ only in such labelling solve to
//! the same optimal makespan, and any schedule for one maps to a schedule
//! for the other by relabelling.
//!
//! [`CanonicalForm`] materializes that quotient: it rebuilds the instance
//! with empty classes dropped, the jobs of each class sorted by
//! non-increasing size, and the classes themselves sorted by their size
//! vectors — together with the job permutation needed to map schedules back.
//! A stable 128-bit [fingerprint](CanonicalForm::fingerprint) over the
//! canonical description keys result caches: equal canonical forms hash
//! identically on every platform and run.

use crate::instance::{ClassId, Instance, JobId, Time};
use crate::schedule::Schedule;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Streaming FNV-1a over `u64` words — stable across platforms and runs
/// (unlike `std::hash`, whose output is unspecified between releases).
#[derive(Debug, Clone, Copy)]
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV_OFFSET)
    }

    fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= byte as u128;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The canonical form of an [`Instance`]: an order- and label-insensitive
/// rebuild plus the job permutation linking it to the original.
///
/// Two instances have equal canonical instances (and equal fingerprints)
/// iff they have the same machine count and the same multiset of class
/// job-size multisets — the exact invariant under which results transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    instance: Instance,
    /// `to_canonical[j]` = the canonical job id of original job `j`.
    to_canonical: Vec<JobId>,
    fingerprint: u128,
}

impl CanonicalForm {
    /// Canonicalizes `inst`. Cost: `O(n log n)` for the two sorts (size
    /// keys are materialized once per class, not per comparison — this
    /// runs on every engine request, hit or miss).
    pub fn of(inst: &Instance) -> Self {
        // Per non-empty class: the size vector (non-increasing) paired with
        // the job ids in that order (ties by original id, so the
        // permutation is deterministic).
        let mut classes: Vec<(Vec<Time>, Vec<JobId>)> = (0..inst.num_classes())
            .filter(|&c| !inst.class_jobs(c).is_empty())
            .map(|c| {
                let mut jobs = inst.class_jobs(c).to_vec();
                jobs.sort_by(|&a, &b| inst.size(b).cmp(&inst.size(a)).then(a.cmp(&b)));
                let sizes: Vec<Time> = jobs.iter().map(|&j| inst.size(j)).collect();
                (sizes, jobs)
            })
            .collect();
        // Classes sorted by their size vectors (descending lexicographically;
        // ties between identical multisets are harmless — the classes are
        // interchangeable by definition).
        classes.sort_by(|a, b| b.0.cmp(&a.0));

        let mut to_canonical = vec![0usize; inst.num_jobs()];
        let mut next = 0usize;
        let mut h = Fnv128::new();
        h.write_u64(inst.machines() as u64);
        h.write_u64(classes.len() as u64);
        for (sizes, jobs) in &classes {
            h.write_u64(sizes.len() as u64);
            for &p in sizes {
                h.write_u64(p);
            }
            for &j in jobs {
                to_canonical[j] = next;
                next += 1;
            }
        }

        let sizes: Vec<Vec<Time>> = classes.into_iter().map(|(sizes, _)| sizes).collect();
        let instance = Instance::from_classes(inst.machines(), &sizes)
            .expect("canonicalization preserves validity");
        CanonicalForm {
            instance,
            to_canonical,
            fingerprint: h.0,
        }
    }

    /// The canonical instance (empty classes dropped, jobs sorted within
    /// classes, classes sorted by size vector).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The stable 128-bit fingerprint of the canonical description. Equal
    /// for two instances iff their canonical instances are equal (up to the
    /// astronomically unlikely 2⁻¹²⁸ hash collision a cache keyed on the
    /// fingerprint accepts).
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// The canonical job id of original job `j`.
    pub fn canonical_job(&self, j: JobId) -> JobId {
        self.to_canonical[j]
    }

    /// Maps a schedule *for the canonical instance* back to a schedule for
    /// the original instance: original job `j` inherits the assignment of
    /// its canonical counterpart (same size, label-equivalent class), so
    /// validity and makespan carry over exactly.
    pub fn schedule_to_original(&self, canonical: &Schedule) -> Schedule {
        Schedule::new(
            self.to_canonical
                .iter()
                .map(|&cj| canonical.assignment(cj))
                .collect(),
        )
    }
}

impl Instance {
    /// The canonical form of this instance (see [`CanonicalForm`]).
    pub fn canonical_form(&self) -> CanonicalForm {
        CanonicalForm::of(self)
    }
}

/// Permutes the class labels and job order of `inst` — the canonical form
/// must be invariant under exactly these relabellings. Test/benchmark
/// helper: `class_perm[c]` is the new label of class `c` (must be a
/// permutation of `0..num_classes`), and jobs are emitted in `job_order`.
pub fn relabel(inst: &Instance, class_perm: &[ClassId], job_order: &[JobId]) -> Instance {
    assert_eq!(class_perm.len(), inst.num_classes());
    assert_eq!(job_order.len(), inst.num_jobs());
    let jobs = job_order
        .iter()
        .map(|&j| crate::instance::Job::new(inst.size(j), class_perm[inst.class_of(j)]))
        .collect();
    Instance::new(inst.machines(), jobs).expect("relabelling preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use crate::Assignment;

    fn sample() -> Instance {
        Instance::from_classes(3, &[vec![5, 3], vec![7], vec![2, 2, 2]]).unwrap()
    }

    #[test]
    fn canonical_form_is_a_fixpoint() {
        let form = sample().canonical_form();
        let again = form.instance().canonical_form();
        assert_eq!(form.instance(), again.instance());
        assert_eq!(form.fingerprint(), again.fingerprint());
        // Identity permutation on an already-canonical instance.
        for j in 0..form.instance().num_jobs() {
            assert_eq!(again.canonical_job(j), j);
        }
    }

    #[test]
    fn classes_sorted_and_jobs_descending() {
        let form = sample().canonical_form();
        let canon = form.instance();
        // Classes sorted by descending size vector: [7], [5,3], [2,2,2].
        let sizes: Vec<Vec<Time>> = (0..canon.num_classes())
            .map(|c| canon.class_jobs(c).iter().map(|&j| canon.size(j)).collect())
            .collect();
        assert_eq!(sizes, vec![vec![7], vec![5, 3], vec![2, 2, 2]]);
    }

    #[test]
    fn invariant_under_relabelling() {
        let inst = sample();
        let base = inst.canonical_form();
        // Rotate class labels and reverse job order.
        let k = inst.num_classes();
        let class_perm: Vec<ClassId> = (0..k).map(|c| (c + 1) % k).collect();
        let job_order: Vec<JobId> = (0..inst.num_jobs()).rev().collect();
        let shuffled = relabel(&inst, &class_perm, &job_order);
        assert_ne!(
            shuffled, inst,
            "relabelling must actually change the raw form"
        );
        let form = shuffled.canonical_form();
        assert_eq!(form.instance(), base.instance());
        assert_eq!(form.fingerprint(), base.fingerprint());
    }

    #[test]
    fn distinct_structures_get_distinct_fingerprints() {
        let a = Instance::from_classes(2, &[vec![4, 3], vec![5]]).unwrap();
        // Same size multiset overall, different class partition.
        let b = Instance::from_classes(2, &[vec![4], vec![3, 5]]).unwrap();
        // Same classes, different machine count.
        let c = Instance::from_classes(3, &[vec![4, 3], vec![5]]).unwrap();
        let fa = a.canonical_form().fingerprint();
        assert_ne!(fa, b.canonical_form().fingerprint());
        assert_ne!(fa, c.canonical_form().fingerprint());
    }

    #[test]
    fn empty_classes_are_dropped() {
        let a = Instance::new(2, vec![crate::Job::new(4, 0), crate::Job::new(3, 2)]).unwrap();
        let b = Instance::from_classes(2, &[vec![4], vec![3]]).unwrap();
        assert_eq!(
            a.canonical_form().fingerprint(),
            b.canonical_form().fingerprint()
        );
        assert_eq!(a.canonical_form().instance(), b.canonical_form().instance());
    }

    #[test]
    fn schedule_round_trip_preserves_validity_and_makespan() {
        let inst = sample();
        let form = inst.canonical_form();
        // Serial schedule on the canonical instance: machine j % m, stacked
        // by prefix sums per machine — build something simple but valid:
        // everything sequential on machine 0.
        let canon = form.instance();
        let mut t = 0;
        let assignments: Vec<Assignment> = (0..canon.num_jobs())
            .map(|j| {
                let a = Assignment {
                    machine: 0,
                    start: t,
                };
                t += canon.size(j);
                a
            })
            .collect();
        let canon_sched = Schedule::new(assignments);
        assert_eq!(validate(canon, &canon_sched), Ok(()));
        let orig_sched = form.schedule_to_original(&canon_sched);
        assert_eq!(validate(&inst, &orig_sched), Ok(()));
        assert_eq!(orig_sched.makespan(&inst), canon_sched.makespan(canon));
    }

    #[test]
    fn zero_size_jobs_participate_in_the_form() {
        let a = Instance::from_classes(2, &[vec![4, 0], vec![3]]).unwrap();
        let b = Instance::from_classes(2, &[vec![4], vec![3]]).unwrap();
        assert_ne!(
            a.canonical_form().fingerprint(),
            b.canonical_form().fingerprint(),
            "a zero-size job is still a job (it appears in reports)"
        );
    }
}
