//! Canonical forms and stable fingerprints of instances.
//!
//! An MSRS instance is fully described by its machine count plus the
//! *multiset of class job-size multisets*: machine identities carry no
//! information (machines are identical), class ids are interchangeable
//! labels, and the order of jobs within a class — or of jobs in the input —
//! is irrelevant. Two instances that differ only in such labelling solve to
//! the same optimal makespan, and any schedule for one maps to a schedule
//! for the other by relabelling.
//!
//! [`CanonicalForm`] materializes that quotient: it rebuilds the instance
//! with empty classes dropped, the jobs of each class sorted by
//! non-increasing size, and the classes themselves sorted by their size
//! vectors — together with the job permutation needed to map schedules back.
//! A stable 128-bit [fingerprint](CanonicalForm::fingerprint) over the
//! canonical description keys result caches: equal canonical forms hash
//! identically on every platform and run.
//!
//! ## Allocation discipline
//!
//! Canonicalization runs on every engine request (hit or miss), so it works
//! over the instance's *flat* storage ([`Instance::flat_sizes`]): class
//! spans are sorted **in place** inside a reusable [`CanonicalScratch`], the
//! fingerprint streams over the sorted flat buffer, and the canonical
//! instance is rebuilt through [`Instance::from_flat`] — no per-class
//! vectors exist anywhere on the path. [`flat_fingerprint`] computes the
//! fingerprint alone from raw flat data (no [`Instance`] required at all),
//! with zero allocations once the scratch is warm; it is the cache-probe
//! primitive of the engine's streaming data plane.

use crate::instance::{ClassId, Instance, JobId, Time};
use crate::schedule::Schedule;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Streaming FNV-1a-style mix over whole `u64` words — stable across
/// platforms and runs (unlike `std::hash`, whose output is unspecified
/// between releases). One xor + one 128-bit multiply per word, instead of
/// the byte-at-a-time schedule: fingerprinting is on the per-request serving
/// path, where hashing `n` job sizes at 8 multiplies per size dominated the
/// whole canonicalization.
#[derive(Debug, Clone, Copy)]
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV_OFFSET)
    }

    fn write_u64(&mut self, word: u64) {
        self.0 ^= word as u128;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
        // Fold the high half back down so consecutive words interact with
        // the full 128-bit state, not only the low lane the next xor hits.
        self.0 ^= self.0 >> 97;
    }
}

/// Reusable buffers for canonicalization: the flat `(size, job)` table being
/// sorted and the per-class span list. Warm scratch makes repeated
/// canonicalization (and [`flat_fingerprint`]) allocation-free.
#[derive(Debug, Default)]
pub struct CanonicalScratch {
    /// Flat `(size, external job id)` pairs, grouped by class and sorted
    /// descending within each span.
    pairs: Vec<(Time, JobId)>,
    /// Sizes-only variant used by [`flat_fingerprint`] (no job ids known).
    sizes: Vec<Time>,
    /// Non-empty class spans as `(start, end)` flat ranges, sorted into
    /// canonical class order.
    spans: Vec<(usize, usize)>,
}

impl CanonicalScratch {
    /// A fresh scratch (no buffers reserved yet).
    pub fn new() -> Self {
        CanonicalScratch::default()
    }
}

/// Descending-lexicographic span comparison, ties broken by span start
/// (= original class order), so the permutation is total and deterministic
/// under `sort_unstable`.
fn span_cmp<T: Ord + Copy>(
    buf: &[T],
    key: impl Fn(T) -> Time,
    a: (usize, usize),
    b: (usize, usize),
) -> std::cmp::Ordering {
    let sa = buf[a.0..a.1].iter().map(|&x| key(x));
    let sb = buf[b.0..b.1].iter().map(|&x| key(x));
    sb.cmp(sa).then(a.0.cmp(&b.0))
}

/// Hashes the canonical description: machines, class count, then per class
/// its length followed by its (descending) sizes.
fn hash_spans<T: Copy>(
    machines: usize,
    spans: &[(usize, usize)],
    buf: &[T],
    key: impl Fn(T) -> Time,
) -> u128 {
    let mut h = Fnv128::new();
    h.write_u64(machines as u64);
    h.write_u64(spans.len() as u64);
    for &(start, end) in spans {
        h.write_u64((end - start) as u64);
        for &x in &buf[start..end] {
            h.write_u64(key(x));
        }
    }
    h.0
}

/// The stable 128-bit fingerprint of the canonical form of raw flat class
/// data (`sizes` grouped by class, `offsets` delimiting the classes exactly
/// as [`Instance::class_offsets`] does), without materializing an
/// [`Instance`] or a [`CanonicalForm`]. Produces the same value as
/// `Instance::canonical_form().fingerprint()` on the same data; with a warm
/// `scratch` the computation performs no heap allocations.
pub fn flat_fingerprint(
    machines: usize,
    sizes: &[Time],
    offsets: &[usize],
    scratch: &mut CanonicalScratch,
) -> u128 {
    scratch.sizes.clear();
    scratch.sizes.extend_from_slice(sizes);
    scratch.spans.clear();
    for w in 0..offsets.len().saturating_sub(1) {
        let (start, end) = (offsets[w], offsets[w + 1]);
        if start < end {
            scratch.sizes[start..end].sort_unstable_by(|a, b| b.cmp(a));
            scratch.spans.push((start, end));
        }
    }
    let buf = &scratch.sizes;
    scratch
        .spans
        .sort_unstable_by(|&a, &b| span_cmp(buf, |x| x, a, b));
    hash_spans(machines, &scratch.spans, buf, |x| x)
}

/// The canonical form of an [`Instance`]: an order- and label-insensitive
/// rebuild plus the job permutation linking it to the original.
///
/// Two instances have equal canonical instances (and equal fingerprints)
/// iff they have the same machine count and the same multiset of class
/// job-size multisets — the exact invariant under which results transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    instance: Instance,
    /// `to_canonical[j]` = the canonical job id of original job `j`.
    to_canonical: Vec<JobId>,
    fingerprint: u128,
}

impl CanonicalForm {
    /// Canonicalizes `inst`. Cost: `O(n log n)` for the two sorts, performed
    /// in place over a copy of the instance's flat storage (this runs on
    /// every engine request, hit or miss). See
    /// [`CanonicalForm::of_with`] for the scratch-reusing variant.
    pub fn of(inst: &Instance) -> Self {
        Self::of_with(inst, &mut CanonicalScratch::new())
    }

    /// As [`CanonicalForm::of`], sorting inside the caller's scratch
    /// buffers; with warm scratch, only the returned form's own storage is
    /// allocated.
    pub fn of_with(inst: &Instance, scratch: &mut CanonicalScratch) -> Self {
        // Flat (size, job) pairs, grouped by class; each non-empty span is
        // sorted descending by size (ties by ascending original id, so the
        // permutation is deterministic).
        scratch.pairs.clear();
        scratch.pairs.extend(
            inst.flat_sizes()
                .iter()
                .copied()
                .zip(inst.flat_job_ids().iter().copied()),
        );
        scratch.spans.clear();
        let offsets = inst.class_offsets();
        for c in 0..inst.num_classes() {
            let (start, end) = (offsets[c], offsets[c + 1]);
            if start < end {
                scratch.pairs[start..end]
                    .sort_unstable_by(|&(pa, ja), &(pb, jb)| pb.cmp(&pa).then(ja.cmp(&jb)));
                scratch.spans.push((start, end));
            }
        }
        // Classes sorted by their size vectors (descending
        // lexicographically; ties between identical multisets keep the
        // original class order — harmless for the canonical instance, and
        // it makes the job permutation deterministic).
        let pairs = &scratch.pairs;
        scratch
            .spans
            .sort_unstable_by(|&a, &b| span_cmp(pairs, |(p, _)| p, a, b));

        let fingerprint = hash_spans(inst.machines(), &scratch.spans, pairs, |(p, _)| p);

        let mut to_canonical = vec![0 as JobId; inst.num_jobs()];
        let mut job_sizes: Vec<Time> = Vec::with_capacity(inst.num_jobs());
        let mut class_offsets: Vec<usize> = Vec::with_capacity(scratch.spans.len() + 1);
        class_offsets.push(0);
        let mut next = 0usize;
        for &(start, end) in &scratch.spans {
            for &(p, j) in &scratch.pairs[start..end] {
                job_sizes.push(p);
                to_canonical[j] = next;
                next += 1;
            }
            class_offsets.push(job_sizes.len());
        }
        let instance = Instance::from_flat(inst.machines(), job_sizes, class_offsets)
            .expect("canonicalization preserves validity");
        CanonicalForm {
            instance,
            to_canonical,
            fingerprint,
        }
    }

    /// The canonical instance (empty classes dropped, jobs sorted within
    /// classes, classes sorted by size vector).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The stable 128-bit fingerprint of the canonical description. Equal
    /// for two instances iff their canonical instances are equal (up to the
    /// astronomically unlikely 2⁻¹²⁸ hash collision a cache keyed on the
    /// fingerprint accepts).
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// The canonical job id of original job `j`.
    pub fn canonical_job(&self, j: JobId) -> JobId {
        self.to_canonical[j]
    }

    /// Maps a schedule *for the canonical instance* back to a schedule for
    /// the original instance: original job `j` inherits the assignment of
    /// its canonical counterpart (same size, label-equivalent class), so
    /// validity and makespan carry over exactly.
    pub fn schedule_to_original(&self, canonical: &Schedule) -> Schedule {
        Schedule::new(
            self.to_canonical
                .iter()
                .map(|&cj| canonical.assignment(cj))
                .collect(),
        )
    }
}

impl Instance {
    /// The canonical form of this instance (see [`CanonicalForm`]).
    pub fn canonical_form(&self) -> CanonicalForm {
        CanonicalForm::of(self)
    }
}

/// Permutes the class labels and job order of `inst` — the canonical form
/// must be invariant under exactly these relabellings. Test/benchmark
/// helper: `class_perm[c]` is the new label of class `c` (must be a
/// permutation of `0..num_classes`), and jobs are emitted in `job_order`.
pub fn relabel(inst: &Instance, class_perm: &[ClassId], job_order: &[JobId]) -> Instance {
    assert_eq!(class_perm.len(), inst.num_classes());
    assert_eq!(job_order.len(), inst.num_jobs());
    let jobs = job_order
        .iter()
        .map(|&j| crate::instance::Job::new(inst.size(j), class_perm[inst.class_of(j)]))
        .collect();
    Instance::new(inst.machines(), jobs).expect("relabelling preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use crate::Assignment;

    fn sample() -> Instance {
        Instance::from_classes(3, &[vec![5, 3], vec![7], vec![2, 2, 2]]).unwrap()
    }

    #[test]
    fn canonical_form_is_a_fixpoint() {
        let form = sample().canonical_form();
        let again = form.instance().canonical_form();
        assert_eq!(form.instance(), again.instance());
        assert_eq!(form.fingerprint(), again.fingerprint());
        // Identity permutation on an already-canonical instance.
        for j in 0..form.instance().num_jobs() {
            assert_eq!(again.canonical_job(j), j);
        }
    }

    #[test]
    fn classes_sorted_and_jobs_descending() {
        let form = sample().canonical_form();
        let canon = form.instance();
        // Classes sorted by descending size vector: [7], [5,3], [2,2,2].
        let sizes: Vec<Vec<Time>> = (0..canon.num_classes())
            .map(|c| canon.class_sizes(c).to_vec())
            .collect();
        assert_eq!(sizes, vec![vec![7], vec![5, 3], vec![2, 2, 2]]);
    }

    #[test]
    fn scratch_reuse_is_equivalent() {
        let mut scratch = CanonicalScratch::new();
        for seed in 0..8u64 {
            let k = 1 + (seed as usize % 4);
            let classes: Vec<Vec<Time>> = (0..k)
                .map(|c| {
                    (0..=(seed as usize + c) % 4)
                        .map(|i| (seed + i as u64) % 9)
                        .collect()
                })
                .collect();
            let inst = Instance::from_classes(2 + (seed as usize % 3), &classes).unwrap();
            let cold = CanonicalForm::of(&inst);
            let warm = CanonicalForm::of_with(&inst, &mut scratch);
            assert_eq!(cold, warm, "seed {seed}");
        }
    }

    #[test]
    fn flat_fingerprint_matches_canonical_form() {
        let mut scratch = CanonicalScratch::new();
        let shapes: Vec<(usize, Vec<Vec<Time>>)> = vec![
            (3, vec![vec![5, 3], vec![7], vec![2, 2, 2]]),
            (2, vec![vec![], vec![4, 4], vec![1]]),
            (1, vec![]),
            (2, vec![vec![0, 3], vec![3, 0]]),
            (4, vec![vec![9], vec![9], vec![1, 2, 3]]),
        ];
        for (m, classes) in shapes {
            let inst = Instance::from_classes(m, &classes).unwrap();
            let via_form = inst.canonical_form().fingerprint();
            let via_flat =
                flat_fingerprint(m, inst.flat_sizes(), inst.class_offsets(), &mut scratch);
            assert_eq!(via_form, via_flat, "m={m} classes={classes:?}");
        }
    }

    #[test]
    fn invariant_under_relabelling() {
        let inst = sample();
        let base = inst.canonical_form();
        // Rotate class labels and reverse job order.
        let k = inst.num_classes();
        let class_perm: Vec<ClassId> = (0..k).map(|c| (c + 1) % k).collect();
        let job_order: Vec<JobId> = (0..inst.num_jobs()).rev().collect();
        let shuffled = relabel(&inst, &class_perm, &job_order);
        assert_ne!(
            shuffled, inst,
            "relabelling must actually change the raw form"
        );
        let form = shuffled.canonical_form();
        assert_eq!(form.instance(), base.instance());
        assert_eq!(form.fingerprint(), base.fingerprint());
    }

    #[test]
    fn distinct_structures_get_distinct_fingerprints() {
        let a = Instance::from_classes(2, &[vec![4, 3], vec![5]]).unwrap();
        // Same size multiset overall, different class partition.
        let b = Instance::from_classes(2, &[vec![4], vec![3, 5]]).unwrap();
        // Same classes, different machine count.
        let c = Instance::from_classes(3, &[vec![4, 3], vec![5]]).unwrap();
        let fa = a.canonical_form().fingerprint();
        assert_ne!(fa, b.canonical_form().fingerprint());
        assert_ne!(fa, c.canonical_form().fingerprint());
    }

    #[test]
    fn empty_classes_are_dropped() {
        let a = Instance::new(2, vec![crate::Job::new(4, 0), crate::Job::new(3, 2)]).unwrap();
        let b = Instance::from_classes(2, &[vec![4], vec![3]]).unwrap();
        assert_eq!(
            a.canonical_form().fingerprint(),
            b.canonical_form().fingerprint()
        );
        assert_eq!(a.canonical_form().instance(), b.canonical_form().instance());
    }

    #[test]
    fn schedule_round_trip_preserves_validity_and_makespan() {
        let inst = sample();
        let form = inst.canonical_form();
        // Serial schedule on the canonical instance: machine j % m, stacked
        // by prefix sums per machine — build something simple but valid:
        // everything sequential on machine 0.
        let canon = form.instance();
        let mut t = 0;
        let assignments: Vec<Assignment> = (0..canon.num_jobs())
            .map(|j| {
                let a = Assignment {
                    machine: 0,
                    start: t,
                };
                t += canon.size(j);
                a
            })
            .collect();
        let canon_sched = Schedule::new(assignments);
        assert_eq!(validate(canon, &canon_sched), Ok(()));
        let orig_sched = form.schedule_to_original(&canon_sched);
        assert_eq!(validate(&inst, &orig_sched), Ok(()));
        assert_eq!(orig_sched.makespan(&inst), canon_sched.makespan(canon));
    }

    #[test]
    fn zero_size_jobs_participate_in_the_form() {
        let a = Instance::from_classes(2, &[vec![4, 0], vec![3]]).unwrap();
        let b = Instance::from_classes(2, &[vec![4], vec![3]]).unwrap();
        assert_ne!(
            a.canonical_form().fingerprint(),
            b.canonical_form().fingerprint(),
            "a zero-size job is still a job (it appears in reports)"
        );
    }
}
