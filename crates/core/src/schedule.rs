//! Schedule representation: per-job machine assignment and start time.

use crate::instance::{Instance, JobId, MachineId, Time};

/// Placement of a single job: the machine `σ(j)` and the start time `t(j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// Machine executing the job.
    pub machine: MachineId,
    /// Integral start time.
    pub start: Time,
}

/// A complete schedule `(σ, t)`: one [`Assignment`] per job, indexed by
/// [`JobId`]. Construction does not check validity — use
/// [`crate::validate::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    assignments: Vec<Assignment>,
}

impl Schedule {
    /// Wraps raw assignments (one per job, in job-id order).
    pub fn new(assignments: Vec<Assignment>) -> Self {
        Schedule { assignments }
    }

    /// The assignment of job `j`.
    #[inline]
    pub fn assignment(&self, j: JobId) -> Assignment {
        self.assignments[j]
    }

    /// All assignments, indexed by [`JobId`].
    #[inline]
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Number of scheduled jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the schedule contains no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Completion time of job `j` under `inst`.
    #[inline]
    pub fn completion(&self, inst: &Instance, j: JobId) -> Time {
        self.assignments[j].start + inst.size(j)
    }

    /// The makespan `C_max = max_j t(j) + p_j` (0 for an empty schedule).
    pub fn makespan(&self, inst: &Instance) -> Time {
        self.assignments
            .iter()
            .enumerate()
            .map(|(j, a)| a.start + inst.size(j))
            .max()
            .unwrap_or(0)
    }

    /// Total load assigned to `machine`.
    pub fn machine_load(&self, inst: &Instance, machine: MachineId) -> Time {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| a.machine == machine)
            .map(|(j, _)| inst.size(j))
            .sum()
    }

    /// Jobs on `machine`, sorted by start time.
    pub fn machine_jobs(&self, machine: MachineId) -> Vec<JobId> {
        let mut jobs: Vec<JobId> = self
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| a.machine == machine)
            .map(|(j, _)| j)
            .collect();
        jobs.sort_by_key(|&j| self.assignments[j].start);
        jobs
    }

    /// Number of distinct machines that received at least one job with
    /// positive processing time. Used by the resource-augmentation EPTAS
    /// experiments to report actual machine usage.
    pub fn machines_used(&self, inst: &Instance) -> usize {
        let mut used: Vec<MachineId> = self
            .assignments
            .iter()
            .enumerate()
            .filter(|(j, _)| inst.size(*j) > 0)
            .map(|(_, a)| a.machine)
            .collect();
        used.sort_unstable();
        used.dedup();
        used.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    fn inst() -> Instance {
        Instance::from_classes(2, &[vec![3, 2], vec![4]]).unwrap()
    }

    fn sched() -> Schedule {
        Schedule::new(vec![
            Assignment {
                machine: 0,
                start: 0,
            },
            Assignment {
                machine: 1,
                start: 3,
            },
            Assignment {
                machine: 1,
                start: 5,
            },
        ])
    }

    #[test]
    fn makespan_and_completions() {
        let inst = inst();
        let s = sched();
        assert_eq!(s.completion(&inst, 0), 3);
        assert_eq!(s.completion(&inst, 1), 5);
        assert_eq!(s.completion(&inst, 2), 9);
        assert_eq!(s.makespan(&inst), 9);
    }

    #[test]
    fn machine_queries() {
        let inst = inst();
        let s = sched();
        assert_eq!(s.machine_load(&inst, 0), 3);
        assert_eq!(s.machine_load(&inst, 1), 6);
        assert_eq!(s.machine_jobs(1), vec![1, 2]);
        assert_eq!(s.machines_used(&inst), 2);
    }

    #[test]
    fn empty_schedule() {
        let inst = Instance::new(1, vec![]).unwrap();
        let s = Schedule::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.makespan(&inst), 0);
    }

    #[test]
    fn machines_used_ignores_zero_size_jobs() {
        let inst = Instance::from_classes(3, &[vec![0], vec![2]]).unwrap();
        let s = Schedule::new(vec![
            Assignment {
                machine: 2,
                start: 0,
            },
            Assignment {
                machine: 0,
                start: 0,
            },
        ]);
        assert_eq!(s.machines_used(&inst), 1);
    }
}
