//! Cooperative cancellation for long-running solvers.
//!
//! A [`CancelToken`] combines an explicit flag (set by [`CancelToken::cancel`])
//! with an optional wall-clock deadline. Solvers with unbounded inner loops —
//! the exact branch-and-bound, the EPTAS binary search — poll the token at
//! loop granularity and unwind promptly when it fires, so a configured
//! deadline bounds each solver's runtime instead of only bounding when the
//! *next* solver may start.
//!
//! Polling [`is_cancelled`](CancelToken::is_cancelled) reads one atomic and,
//! when a deadline is set, the monotonic clock; callers in hot loops should
//! throttle checks (the branch-and-bound checks every [`CHECK_MASK`]` + 1`
//! nodes).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll throttle for node-counting search loops: check the token whenever
/// `nodes & CHECK_MASK == 0` (every 1024 nodes — a few microseconds of
/// work, so deadline overshoot stays well under a millisecond).
pub const CHECK_MASK: u64 = 0x3FF;

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle; clones share the same flag and deadline.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that fires at `deadline` (or earlier via `cancel`).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that fires `timeout` from now. A timeout too large to
    /// represent as an [`Instant`] can never fire, so it degrades to a
    /// deadline-less token instead of panicking on `Instant` overflow.
    pub fn after(timeout: Duration) -> Self {
        match Instant::now().checked_add(timeout) {
            Some(deadline) => Self::with_deadline(deadline),
            None => Self::new(),
        }
    }

    /// Fires the token; every clone observes it.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired (explicitly or by deadline). Once true,
    /// stays true: a reached deadline is latched into the flag.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                // `swap` latches the flag and tells us whether we were the
                // first observer, so each token's deadline is counted once
                // no matter how many clones poll it (manual `cancel()` is
                // deliberately not counted here).
                if !self.inner.flag.swap(true, Ordering::Relaxed) {
                    msrs_telemetry::registry().deadline_hits_total.inc();
                }
                return true;
            }
        }
        false
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_in_the_past_fires_immediately() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        // Latched: still cancelled on re-check.
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_does_not_fire_early() {
        let t = CancelToken::after(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_some());
    }

    #[test]
    fn absurd_timeout_neither_panics_nor_fires() {
        // Whether `now + timeout` is representable is platform-dependent;
        // either way this must not panic, and the token must never fire.
        for timeout in [Duration::from_millis(u64::MAX), Duration::MAX] {
            let t = CancelToken::after(timeout);
            assert!(!t.is_cancelled());
        }
    }

    #[test]
    fn deadline_hit_is_counted_in_telemetry() {
        // The counter is process-global, so other tests may add to it
        // concurrently; assert the delta this token contributes is ≥ 1 and
        // that repeated polls of one latched token add nothing further
        // beyond what concurrent tests contribute is impossible to pin —
        // the exactly-once property is enforced by the `swap` latch.
        let before = msrs_telemetry::registry().deadline_hits_total.get();
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.is_cancelled());
        let after = msrs_telemetry::registry().deadline_hits_total.get();
        assert!(after > before, "deadline hit must be counted");
    }

    #[test]
    fn no_deadline_never_fires_on_its_own() {
        let t = CancelToken::default();
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
    }
}
