//! Schedule statistics: utilization, idle profile, and resource-contention
//! metrics — the operational view a downstream user wants next to the raw
//! makespan (used by the examples and the experiment harness).

use crate::instance::{Instance, Time};
use crate::schedule::Schedule;

/// Aggregate statistics of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// Makespan.
    pub makespan: Time,
    /// Per-machine busy time.
    pub machine_loads: Vec<Time>,
    /// Total idle machine-time within the makespan window.
    pub total_idle: Time,
    /// Mean machine utilization in `[0, 1]` (busy / makespan).
    pub mean_utilization: f64,
    /// Minimum machine utilization.
    pub min_utilization: f64,
    /// For each class: the *stretch* of the class — the time between the
    /// start of its first job and the completion of its last, divided by its
    /// total processing time (1.0 = the class ran back-to-back).
    pub class_stretch: Vec<f64>,
}

impl ScheduleStats {
    /// The largest class stretch (how much any resource's work was spread
    /// out by interleaving).
    pub fn max_class_stretch(&self) -> f64 {
        self.class_stretch.iter().cloned().fold(1.0, f64::max)
    }
}

/// Computes [`ScheduleStats`] for a (valid) schedule.
pub fn schedule_stats(inst: &Instance, schedule: &Schedule) -> ScheduleStats {
    let makespan = schedule.makespan(inst);
    let machine_loads: Vec<Time> = (0..inst.machines())
        .map(|q| schedule.machine_load(inst, q))
        .collect();
    let busy: Time = machine_loads.iter().sum();
    let window = makespan * inst.machines() as Time;
    let total_idle = window.saturating_sub(busy);
    let utils: Vec<f64> = machine_loads
        .iter()
        .map(|&l| {
            if makespan == 0 {
                1.0
            } else {
                l as f64 / makespan as f64
            }
        })
        .collect();
    let mean_utilization = utils.iter().sum::<f64>() / utils.len().max(1) as f64;
    let min_utilization = utils.iter().cloned().fold(1.0, f64::min);

    let mut class_stretch = Vec::with_capacity(inst.num_classes());
    for c in 0..inst.num_classes() {
        let jobs: Vec<_> = inst
            .class_jobs(c)
            .iter()
            .copied()
            .filter(|&j| inst.size(j) > 0)
            .collect();
        if jobs.is_empty() {
            class_stretch.push(1.0);
            continue;
        }
        let first = jobs
            .iter()
            .map(|&j| schedule.assignment(j).start)
            .min()
            .expect("non-empty");
        let last = jobs
            .iter()
            .map(|&j| schedule.completion(inst, j))
            .max()
            .expect("non-empty");
        let load = inst.class_load(c);
        class_stretch.push((last - first) as f64 / load as f64);
    }
    ScheduleStats {
        makespan,
        machine_loads,
        total_idle,
        mean_utilization,
        min_utilization,
        class_stretch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Assignment;

    fn inst() -> Instance {
        Instance::from_classes(2, &[vec![3, 3], vec![4]]).unwrap()
    }

    #[test]
    fn perfect_packing_has_full_utilization() {
        // m0: class0 jobs back-to-back [0,6); m1: class1 [0,4) → makespan 6.
        let s = Schedule::new(vec![
            Assignment {
                machine: 0,
                start: 0,
            },
            Assignment {
                machine: 0,
                start: 3,
            },
            Assignment {
                machine: 1,
                start: 0,
            },
        ]);
        let st = schedule_stats(&inst(), &s);
        assert_eq!(st.makespan, 6);
        assert_eq!(st.machine_loads, vec![6, 4]);
        assert_eq!(st.total_idle, 2);
        assert!((st.mean_utilization - (1.0 + 4.0 / 6.0) / 2.0).abs() < 1e-12);
        assert_eq!(st.class_stretch[0], 1.0); // back-to-back
    }

    #[test]
    fn interleaving_shows_as_stretch() {
        // class0 jobs at [0,3) and [5,8): span 8 over load 6 → stretch 4/3.
        let s = Schedule::new(vec![
            Assignment {
                machine: 0,
                start: 0,
            },
            Assignment {
                machine: 0,
                start: 5,
            },
            Assignment {
                machine: 1,
                start: 0,
            },
        ]);
        let st = schedule_stats(&inst(), &s);
        assert!((st.class_stretch[0] - 8.0 / 6.0).abs() < 1e-12);
        assert!(st.max_class_stretch() > 1.3);
    }

    #[test]
    fn empty_schedule_is_stable() {
        let inst = Instance::new(2, vec![]).unwrap();
        let st = schedule_stats(&inst, &Schedule::new(vec![]));
        assert_eq!(st.makespan, 0);
        assert_eq!(st.total_idle, 0);
        assert!((st.mean_utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_size_classes_have_unit_stretch() {
        let inst = Instance::from_classes(1, &[vec![0, 0], vec![5]]).unwrap();
        let s = Schedule::new(vec![
            Assignment {
                machine: 0,
                start: 0,
            },
            Assignment {
                machine: 0,
                start: 0,
            },
            Assignment {
                machine: 0,
                start: 0,
            },
        ]);
        let st = schedule_stats(&inst, &s);
        assert_eq!(st.class_stretch[0], 1.0);
    }
}
