//! Lower bounds on the optimal makespan (paper Note 1 and Theorem 2).
//!
//! For any instance: `OPT ≥ p(J)/m` (area bound), `OPT ≥ max_c p(c)` (each
//! class is sequential), and — with `p_(k)` the `k`-th largest processing
//! time — `OPT ≥ p_(m) + p_(m+1)` whenever `n > m`, since two of the `m+1`
//! largest jobs must share a machine or two of the first `m` do.
//!
//! Because OPT is integral, the area bound may be rounded up, giving the
//! integral combined bound used to drive the 5/3- and 3/2-approximations.

use crate::frac::ceil_div;
use crate::instance::{Instance, Time};

/// The three lower-bound components of Note 1 / Theorem 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerBounds {
    /// `⌈p(J)/m⌉` — average machine load, rounded up (OPT is integral).
    pub avg_load: Time,
    /// `max_c p(c)` — heaviest class.
    pub max_class: Time,
    /// `p_(m) + p_(m+1)` if `n > m`, else 0.
    pub two_jobs: Time,
}

impl LowerBounds {
    /// The combined bound `T = max{⌈p(J)/m⌉, max_c p(c), p_(m)+p_(m+1)}`.
    pub fn combined(&self) -> Time {
        self.avg_load.max(self.max_class).max(self.two_jobs)
    }
}

/// Computes all three lower-bound components for `inst` in `O(n)`.
///
/// This runs on every engine request (classification and both
/// approximation algorithms derive `T` from it), so the two-job component
/// is computed with a single buffer copy: one descending `select_nth`
/// places `p_(m)` and partitions everything `≤ p_(m)` to its right, where
/// `p_(m+1)` is a plain maximum — instead of two independent selection
/// passes over two clones.
pub fn lower_bounds(inst: &Instance) -> LowerBounds {
    let m = inst.machines() as Time;
    let avg_load = if inst.num_jobs() == 0 {
        0
    } else {
        ceil_div(inst.total_load(), m)
    };
    let max_class = (0..inst.num_classes())
        .map(|c| inst.class_load(c))
        .max()
        .unwrap_or(0);
    // Saturating add as defense in depth: `p_(m) + p_(m+1) ≤ p(J)` already
    // fits in `Time` by the construction invariant of `Instance`, but a
    // silent wrap here would *under*-report the bound, so never wrap.
    let two_jobs = if inst.num_jobs() > inst.machines() {
        let mut sizes: Vec<Time> = inst.flat_sizes().to_vec();
        let (_, p_m, rest) = sizes.select_nth_unstable_by(inst.machines() - 1, |a, b| b.cmp(a));
        let p_m1 = rest.iter().copied().max().unwrap_or(0);
        (*p_m).saturating_add(p_m1)
    } else {
        0
    };
    LowerBounds {
        avg_load,
        max_class,
        two_jobs,
    }
}

/// The combined lower bound `T` of Theorem 2 (see [`LowerBounds::combined`]).
pub fn lower_bound(inst: &Instance) -> Time {
    lower_bounds(inst).combined()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    #[test]
    fn area_bound_dominates() {
        // 2 machines, 4 unit classes of size 5 → p(J)/m = 10.
        let inst = Instance::from_classes(2, &[vec![5], vec![5], vec![5], vec![5]]).unwrap();
        let b = lower_bounds(inst_ref(&inst));
        assert_eq!(b.avg_load, 10);
        assert_eq!(b.max_class, 5);
        assert_eq!(b.two_jobs, 10); // p_(2)+p_(3) = 5+5
        assert_eq!(b.combined(), 10);
    }

    fn inst_ref(i: &Instance) -> &Instance {
        i
    }

    #[test]
    fn class_bound_dominates() {
        let inst = Instance::from_classes(4, &[vec![3, 3, 3, 3], vec![1]]).unwrap();
        let b = lower_bounds(&inst);
        assert_eq!(b.max_class, 12);
        assert_eq!(b.avg_load, 4); // ⌈13/4⌉
        assert_eq!(b.combined(), 12);
    }

    #[test]
    fn two_job_bound_dominates() {
        // m = 2, three jobs of size 7 in distinct classes: two must share a
        // machine → OPT ≥ 14, while area bound is ⌈21/2⌉ = 11.
        let inst = Instance::from_classes(2, &[vec![7], vec![7], vec![7]]).unwrap();
        let b = lower_bounds(&inst);
        assert_eq!(b.two_jobs, 14);
        assert_eq!(b.avg_load, 11);
        assert_eq!(b.combined(), 14);
    }

    #[test]
    fn two_job_bound_absent_when_few_jobs() {
        let inst = Instance::from_classes(3, &[vec![9], vec![9]]).unwrap();
        let b = lower_bounds(&inst);
        assert_eq!(b.two_jobs, 0);
        assert_eq!(b.combined(), 9);
    }

    #[test]
    fn area_bound_rounds_up() {
        let inst = Instance::from_classes(2, &[vec![1], vec![1], vec![1]]).unwrap();
        let b = lower_bounds(&inst);
        assert_eq!(b.avg_load, 2); // ⌈3/2⌉
        assert_eq!(b.two_jobs, 2); // 1 + 1
        assert_eq!(b.combined(), 2);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(3, vec![]).unwrap();
        assert_eq!(lower_bound(&inst), 0);
    }

    #[test]
    fn near_u64_max_loads_do_not_overflow() {
        // Total load exactly u64::MAX on one machine, n > m so the two-job
        // bound is active: p_(1) + p_(2) = u64::MAX must not wrap.
        let a = u64::MAX / 2; // 2^63 - 1
        let b = u64::MAX - a; // 2^63
        let inst = Instance::from_classes(1, &[vec![a], vec![b]]).unwrap();
        let bounds = lower_bounds(&inst);
        assert_eq!(bounds.avg_load, u64::MAX);
        assert_eq!(bounds.two_jobs, u64::MAX);
        assert_eq!(bounds.combined(), u64::MAX);

        // Three jobs on two machines: two_jobs = p_(2) + p_(3) = a + 1
        // stays exact (all sums bounded by the total ≤ u64::MAX).
        let inst = Instance::from_classes(2, &[vec![a], vec![a], vec![1]]).unwrap();
        let bounds = lower_bounds(&inst);
        assert_eq!(bounds.two_jobs, a + 1);
        assert!(bounds.combined() > a);
    }

    #[test]
    fn bound_is_at_most_any_trivial_schedule() {
        // Sanity: combined bound never exceeds total load (1-machine upper
        // bound), for a few shapes.
        for (m, classes) in [
            (2usize, vec![vec![4, 4], vec![3]]),
            (3, vec![vec![10], vec![1, 1, 1], vec![2, 2]]),
            (1, vec![vec![5, 5, 5]]),
        ] {
            let inst = Instance::from_classes(m, &classes).unwrap();
            assert!(lower_bound(&inst) <= inst.total_load().max(1));
        }
    }
}
