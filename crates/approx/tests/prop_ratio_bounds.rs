//! Property tests: on arbitrary instances, `Algorithm_5/3` and
//! `Algorithm_3/2` must (a) produce valid schedules and (b) respect their
//! makespan horizons `⌊(5/3)T⌋` resp. `⌊(3/2)T⌋`. These invariants encode
//! Lemma 6 and Theorem 7 of the paper; any placement bug (overlap, class
//! conflict, accounting failure, machine exhaustion panic) surfaces here.

use msrs_approx::{five_thirds, three_halves};
use msrs_core::{frac, validate, Instance, Time};
use proptest::prelude::*;

/// Arbitrary instance: m ∈ [1, 8], up to 14 classes of up to 6 jobs with
/// sizes ≤ 24 (including zero-size jobs occasionally).
fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        1usize..=8,
        prop::collection::vec(prop::collection::vec(0u64..=24, 1..=6), 1..=14),
    )
        .prop_map(|(m, classes)| Instance::from_classes(m, &classes).expect("valid instance"))
}

/// Instances biased towards the boundary thresholds of the case analyses.
fn arb_boundary_instance() -> impl Strategy<Value = Instance> {
    let anchored = prop::sample::select(vec![
        3u64, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17, 18, 23, 24, 25,
    ]);
    (
        1usize..=6,
        prop::collection::vec(prop::collection::vec(anchored, 1..=4), 1..=10),
    )
        .prop_map(|(m, classes)| Instance::from_classes(m, &classes).expect("valid instance"))
}

/// Huge-job-heavy instances: many classes led by a dominant job.
fn arb_huge_instance() -> impl Strategy<Value = Instance> {
    (
        1usize..=8,
        prop::collection::vec((18u64..=30, prop::collection::vec(0u64..=8, 0..=4)), 1..=10),
    )
        .prop_map(|(m, leaders)| {
            let classes: Vec<Vec<Time>> = leaders
                .into_iter()
                .map(|(lead, mut tail)| {
                    let mut v = vec![lead];
                    v.append(&mut tail);
                    v
                })
                .collect();
            Instance::from_classes(m, &classes).expect("valid instance")
        })
}

fn check_five_thirds(inst: &Instance) {
    let r = five_thirds(inst);
    prop_assert_eq_ok(validate(inst, &r.schedule));
    let cap = frac::floor_mul(5, 3, r.lower_bound).max(r.lower_bound);
    assert!(
        r.makespan(inst) <= cap,
        "5/3 bound violated: Cmax={} T={} cap={cap}",
        r.makespan(inst),
        r.lower_bound
    );
}

fn check_three_halves(inst: &Instance) {
    let r = three_halves(inst);
    prop_assert_eq_ok(validate(inst, &r.schedule));
    let cap = frac::floor_mul(3, 2, r.lower_bound).max(r.lower_bound);
    assert!(
        r.makespan(inst) <= cap,
        "3/2 bound violated: Cmax={} T={} cap={cap}",
        r.makespan(inst),
        r.lower_bound
    );
}

fn prop_assert_eq_ok(r: Result<(), msrs_core::ValidationError>) {
    if let Err(e) = r {
        panic!("schedule invalid: {e}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn five_thirds_valid_and_bounded(inst in arb_instance()) {
        check_five_thirds(&inst);
    }

    #[test]
    fn three_halves_valid_and_bounded(inst in arb_instance()) {
        check_three_halves(&inst);
    }

    #[test]
    fn five_thirds_boundary_sizes(inst in arb_boundary_instance()) {
        check_five_thirds(&inst);
    }

    #[test]
    fn three_halves_boundary_sizes(inst in arb_boundary_instance()) {
        check_three_halves(&inst);
    }

    #[test]
    fn five_thirds_huge_leaders(inst in arb_huge_instance()) {
        check_five_thirds(&inst);
    }

    #[test]
    fn three_halves_huge_leaders(inst in arb_huge_instance()) {
        check_three_halves(&inst);
    }

    #[test]
    fn three_halves_never_worse_horizon_than_five_thirds(inst in arb_instance()) {
        // The 3/2 guarantee dominates the 5/3 guarantee (both certify their
        // own T; horizons compare accordingly on the same instance).
        let r53 = five_thirds(&inst);
        let r32 = three_halves(&inst);
        // Both must be valid; makespans can differ, but each within bound.
        prop_assert!(validate(&inst, &r53.schedule).is_ok());
        prop_assert!(validate(&inst, &r32.schedule).is_ok());
    }

    #[test]
    fn baselines_always_valid(inst in arb_instance()) {
        for r in [
            msrs_approx::baselines::merged_lpt(&inst),
            msrs_approx::baselines::hebrard_greedy(&inst),
            msrs_approx::baselines::list_scheduler(&inst),
        ] {
            prop_assert!(validate(&inst, &r.schedule).is_ok());
        }
    }
}
