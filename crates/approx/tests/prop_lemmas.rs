//! Property tests for the paper's structural lemmas: the class partitions
//! (Lemmas 5, 10, 11) and the Lemma 9 bound search must satisfy their exact
//! stated properties on arbitrary inputs.

use msrs_approx::partition::{lemma10, lemma11, lemma5};
use msrs_approx::tbound::{categorize, lemma8_count, lemma9_t, Category};
use msrs_core::{bounds::lower_bound, frac, Instance, Time};
use proptest::prelude::*;

/// A class (job sizes) plus a draw used to derive an admissible T per lemma.
fn arb_class_and_draw() -> impl Strategy<Value = (Vec<Time>, u64)> {
    (prop::collection::vec(1u64..=30, 1..=8), any::<u64>())
}

fn cover(sizes: &[Time], hat: &[usize], check: &[usize]) -> bool {
    let mut ids: Vec<usize> = hat.iter().chain(check.iter()).copied().collect();
    ids.sort_unstable();
    ids == (0..sizes.len()).collect::<Vec<_>>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn lemma5_properties((sizes, draw) in arb_class_and_draw()) {
        let total: Time = sizes.iter().sum();
        let max = sizes.iter().copied().max().unwrap_or(0);
        // Derive T with p(c) ∈ ((2/3)T, T]: T ∈ [total, 3·total/2).
        let span = (total / 2).max(1);
        let t = total + draw % span;
        prop_assume!(frac::gt(total, 2, 3, t));
        prop_assume!(frac::le(max, 1, 2, t));
        let inst = Instance::from_classes(1, std::slice::from_ref(&sizes)).unwrap();
        let jobs: Vec<usize> = (0..sizes.len()).collect();
        let s = lemma5(&inst, &jobs, t);
        prop_assert!(cover(&sizes, &s.hat, &s.check));
        prop_assert!(frac::le(s.p_hat, 2, 3, t), "p(ĉ) ≤ 2T/3");
        prop_assert!(frac::ge(s.p_hat, 1, 3, t), "p(ĉ) ≥ T/3");
        prop_assert!(s.p_check <= s.p_hat);
        prop_assert_eq!(s.p_hat + s.p_check, total);
    }

    #[test]
    fn lemma10_properties((sizes, draw) in arb_class_and_draw()) {
        let total: Time = sizes.iter().sum();
        let max = sizes.iter().copied().max().unwrap_or(0);
        // Derive T with p(c) ∈ [(3/4)T, T]: T ∈ [total, 4·total/3].
        let span = (total / 3 + 1).max(1);
        let t = total + draw % span;
        prop_assume!(frac::ge(total, 3, 4, t));
        prop_assume!(frac::le(max, 3, 4, t));
        let inst = Instance::from_classes(1, std::slice::from_ref(&sizes)).unwrap();
        let jobs: Vec<usize> = (0..sizes.len()).collect();
        let s = lemma10(&inst, &jobs, t);
        prop_assert!(cover(&sizes, &s.hat, &s.check));
        prop_assert!(frac::le(s.p_hat, 3, 4, t), "p(ĉ) ≤ 3T/4");
        prop_assert!(frac::le(s.p_check, 1, 2, t), "p(č) ≤ T/2");
        prop_assert!(s.p_check <= s.p_hat);
        // Extra property when no job exceeds T/2.
        if frac::le(max, 1, 2, t) {
            let quarter = |p: Time| frac::gt(p, 1, 4, t) && frac::le(p, 1, 2, t);
            prop_assert!(quarter(s.p_hat) || quarter(s.p_check),
                "one part must land in (T/4, T/2]: {s:?} t={t}");
        }
    }

    #[test]
    fn lemma11_properties((sizes, draw) in arb_class_and_draw()) {
        let total: Time = sizes.iter().sum();
        let max = sizes.iter().copied().max().unwrap_or(0);
        // Derive T with p(c) ∈ (T/2, (3/4)T): T ∈ (4·total/3, 2·total).
        let lo = frac::floor_mul(4, 3, total) + 1;
        let hi = 2 * total - 1;
        prop_assume!(lo <= hi);
        let t = lo + draw % (hi - lo + 1);
        prop_assume!(frac::gt(total, 1, 2, t) && frac::lt(total, 3, 4, t));
        prop_assume!(frac::le(max, 1, 2, t));
        let inst = Instance::from_classes(1, std::slice::from_ref(&sizes)).unwrap();
        let jobs: Vec<usize> = (0..sizes.len()).collect();
        let s = lemma11(&inst, &jobs, t);
        prop_assert!(cover(&sizes, &s.hat, &s.check));
        prop_assert!(frac::le(s.p_hat, 1, 2, t), "p(ĉ) ≤ T/2");
        prop_assert!(frac::gt(s.p_hat, 1, 4, t), "p(ĉ) > T/4");
        prop_assert!(s.p_check <= s.p_hat);
    }

    #[test]
    fn lemma9_returns_minimal_valid_t(
        m in 1usize..=4,
        classes in prop::collection::vec(prop::collection::vec(1u64..=20, 1..=4), 1..=8),
    ) {
        let inst = Instance::from_classes(m, &classes).unwrap();
        let t = lemma9_t(&inst);
        let base = lower_bound(&inst);
        prop_assert!(t >= base);
        let summaries: Vec<(Time, Time)> = inst
            .nonempty_classes()
            .map(|c| (inst.class_max_job(c), inst.class_load(c)))
            .collect();
        prop_assert!(lemma8_count(&summaries, t) <= m, "condition violated at returned T");
        // Minimality over every smaller integer ≥ base.
        for smaller in base..t {
            prop_assert!(
                lemma8_count(&summaries, smaller) > m,
                "T = {smaller} < {t} already satisfies the condition"
            );
        }
    }

    #[test]
    fn categories_are_monotone_in_t(q in 1u64..=40, p in 1u64..=60, t in 1u64..=80) {
        // As T grows, a class only moves "down" the hierarchy
        // Huge → Big → HeavyTotal → Plain (never up).
        prop_assume!(p >= q);
        let rank = |cat: Category| match cat {
            Category::Huge => 3,
            Category::Big => 2,
            Category::HeavyTotal => 1,
            Category::Plain => 0,
        };
        let a = rank(categorize(q, p, t));
        let b = rank(categorize(q, p, t + 1));
        prop_assert!(b <= a, "category rank increased: t={t} {a} → {b}");
    }
}
