//! Step-coverage audit: crafted instances must drive `Algorithm_3/2` through
//! each general step and each `Algorithm_no_huge` sub-case — if a step
//! becomes unreachable after a refactor, this test catches it. The instances
//! were verified to exercise exactly these paths (see the E6 experiment).

use msrs_approx::{three_halves_traced, StepTrace};
use msrs_core::{validate, Instance};

fn traced(m: usize, classes: &[Vec<u64>]) -> StepTrace {
    let inst = Instance::from_classes(m, classes).unwrap();
    let (r, trace) = three_halves_traced(&inst);
    assert_eq!(validate(&inst, &r.schedule), Ok(()));
    assert!(!trace.trivial, "instance unexpectedly trivial: {trace:?}");
    trace
}

#[test]
fn step4_fires_on_two_huge_plus_mid() {
    let t = traced(3, &[vec![9], vec![9], vec![4, 3], vec![4, 3]]);
    assert!(t.step4 >= 1, "{t:?}");
    assert_eq!(t.step2_huge_machines, 2);
}

#[test]
fn step5_rotation_fires_on_single_open_huge_machine() {
    let t = traced(2, &[vec![9], vec![4, 3], vec![4, 2]]);
    assert!(t.step5_rotation, "{t:?}");
    assert!(t.no_huge_called);
}

#[test]
fn step6_fires_on_two_huge_plus_bigmid_plus_heavy() {
    // Two huge classes survive Step 3; Step 6 pairs the C_B∩(1/2,3/4) class
    // with a C_{≥3/4} class; the leftover Ge34 class then triggers the
    // Step 10 rotation on the last open M_H machine.
    let t = traced(4, &[vec![10], vec![10], vec![7, 3], vec![7, 1], vec![5, 4]]);
    assert_eq!(t.step6, 1, "{t:?}");
    assert!(t.step10_rotation, "{t:?}");
}

#[test]
fn step8_fires_on_paired_huge_machines() {
    let t = traced(4, &[vec![10], vec![10], vec![7, 3], vec![7, 3], vec![5, 5]]);
    assert_eq!(t.step8, 1, "{t:?}");
    assert!(
        t.no_huge_called,
        "leftover Ge34 class goes to no_huge: {t:?}"
    );
}

#[test]
fn no_huge_step3_quadruple() {
    let t = traced(
        4,
        &[vec![4, 3], vec![4, 3], vec![4, 3], vec![4, 3], vec![1]],
    );
    assert_eq!(t.nh_step3_quads, 1, "{t:?}");
}

#[test]
fn no_huge_step6_2b_bracket() {
    let t = traced(3, &[vec![5, 3], vec![5, 3], vec![2, 2], vec![2]]);
    assert!(t.nh_step6.case_2b >= 1, "{t:?}");
    assert!(t.nh_greedy_placements >= 1, "{t:?}");
}

#[test]
fn no_huge_step2_pairs_mids() {
    // With the fifth class, T grows past 4/3 of the 9s (they stop being
    // huge) and all five classes flow into no_huge, whose Step 2 pairs the
    // (T/2, 3/4T) classes.
    let t = traced(3, &[vec![9], vec![9], vec![4, 3], vec![4, 3], vec![4, 3]]);
    assert!(t.nh_step2_pairs >= 1, "{t:?}");
    assert!(t.no_huge_called, "{t:?}");
}

#[test]
fn randomized_corpus_stays_valid_and_aggregates() {
    let mut agg = StepTrace::default();
    for seed in 0..120u64 {
        let m = 2 + (seed % 5) as usize;
        for inst in [
            msrs_gen::huge_heavy(seed, m, m, 2 * m, 40 + (seed % 30)),
            msrs_gen::boundary_stress(seed, m, 3 * m, 60),
            msrs_gen::uniform(seed, m, 8 * m, 3 * m, 1, 40),
        ] {
            let (r, trace) = three_halves_traced(&inst);
            assert_eq!(validate(&inst, &r.schedule), Ok(()));
            agg.absorb(&trace);
        }
    }
    // Collective coverage of the common phases on random data.
    assert!(agg.step2_huge_machines > 0, "no huge classes ever: {agg:?}");
    assert!(agg.step3_fills > 0, "Step 3 never fired: {agg:?}");
    assert!(agg.no_huge_called, "no_huge never invoked: {agg:?}");
    assert!(agg.nh_greedy_placements > 0, "greedy never placed: {agg:?}");
}

#[test]
fn trivial_path_is_traced() {
    let inst = Instance::from_classes(5, &[vec![3], vec![4]]).unwrap();
    let (_, trace) = three_halves_traced(&inst);
    assert!(trace.trivial);
}
