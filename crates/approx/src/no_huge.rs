//! `Algorithm_no_huge` — the 3/2-approximation for instances without huge
//! jobs (paper §3.1, Lemma 12).
//!
//! Preconditions (established by the caller, `Algorithm_3/2`):
//!
//! * no virtual class contains a job `> (3/4)T`;
//! * every virtual class has total `≤ T`;
//! * the total load of the given classes is at most `|pool| · T`.
//!
//! The algorithm packs combinations of classes that fill one, two or three
//! machines at an average load of at least `T` each (Steps 2–4), then
//! dispatches on the number of remaining classes heavier than `T/2`
//! (Steps 5–7), and finally places all classes `≤ T/2` greedily. Every job
//! completes by the builder's horizon `H = ⌊(3/2)T⌋`.

use std::collections::VecDeque;

use msrs_core::{frac, Instance, MachineId, ScheduleBuilder, Time};

use crate::trace::StepTrace;
use crate::vclass::{Cat, VClass};

fn take(pool: &mut VecDeque<MachineId>, step: &str) -> MachineId {
    pool.pop_front()
        .unwrap_or_else(|| panic!("invariant violation: no unused machine available in {step}"))
}

/// Greedily places the `≤ T/2` classes: first onto the partially filled
/// `fronts` machines (in order), then onto fresh pool machines. A machine is
/// abandoned once its load reaches `T`; by the load accounting of Lemma 12 a
/// class always fits the current machine's free gap while its load is below
/// `T`.
pub(crate) fn greedy_fill(
    inst: &Instance,
    b: &mut ScheduleBuilder<'_>,
    t: Time,
    fronts: Vec<MachineId>,
    pool: &mut VecDeque<MachineId>,
    smalls: Vec<VClass>,
    trace: &mut StepTrace,
) {
    let mut fronts = VecDeque::from(fronts);
    let mut next = |pool: &mut VecDeque<MachineId>| -> Option<MachineId> {
        fronts.pop_front().or_else(|| pool.pop_front())
    };
    let mut cur = None;
    for vc in smalls {
        loop {
            let m = match cur {
                Some(m) => m,
                None => {
                    let m = next(pool).unwrap_or_else(|| {
                        panic!("invariant violation: greedy fill ran out of machines")
                    });
                    cur = Some(m);
                    m
                }
            };
            if b.load(m) >= t || b.gap(m) < vc.total {
                // Full (or the mid-gap of Step 6.2b cannot host this class —
                // which, per the proof, implies the load already exceeds T).
                debug_assert!(
                    b.load(m) >= t,
                    "class of load {} does not fit gap {} on machine {m} with load {} < T={t}",
                    vc.total,
                    b.gap(m),
                    b.load(m)
                );
                cur = None;
                continue;
            }
            b.push_bottom(m, vc.block_all(inst));
            trace.nh_greedy_placements += 1;
            if b.load(m) >= t {
                cur = None;
            }
            break;
        }
    }
}

/// Runs `Algorithm_no_huge` for the virtual classes `classes` on the unused
/// machines in `pool`, writing placements into `b` (horizon `⌊(3/2)T⌋`).
pub(crate) fn no_huge(
    inst: &Instance,
    b: &mut ScheduleBuilder<'_>,
    pool: &mut VecDeque<MachineId>,
    t: Time,
    classes: Vec<VClass>,
    trace: &mut StepTrace,
) {
    trace.no_huge_called = true;
    let h = b.horizon();
    let mut mids: Vec<VClass> = Vec::new();
    let mut bigs: Vec<VClass> = Vec::new();
    let mut smalls: Vec<VClass> = Vec::new();
    for vc in classes {
        match vc.cat {
            Cat::Huge => panic!("invariant violation: huge class passed to no_huge"),
            Cat::BigGe34 | Cat::Ge34 => bigs.push(vc),
            Cat::BigMid | Cat::Mid => mids.push(vc),
            Cat::Small => smalls.push(vc),
        }
    }

    // Step 2: pair classes with total ∈ (T/2, (3/4)T): one at 0, one ending
    // at H. Their sizes are < (3/4)T each, so they cannot collide, and the
    // pair's load exceeds T.
    while mids.len() >= 2 {
        trace.nh_step2_pairs += 1;
        let c1 = mids.pop().expect("len checked");
        let c2 = mids.pop().expect("len checked");
        let m = take(pool, "Step 2");
        b.push_bottom(m, c1.block_all(inst));
        b.push_top(m, c2.block_all(inst));
    }

    // Step 3: four classes ≥ (3/4)T fill three machines.
    while bigs.len() >= 4 {
        trace.nh_step3_quads += 1;
        let c1 = bigs.pop().expect("len checked");
        let c2 = bigs.pop().expect("len checked");
        let c3 = bigs.pop().expect("len checked");
        let c4 = bigs.pop().expect("len checked");
        let ma = take(pool, "Step 3");
        b.push_bottom(ma, c1.block_hat(inst));
        b.push_top(ma, c2.block_hat(inst));
        let mb = take(pool, "Step 3");
        b.push_bottom(mb, c3.block_all(inst));
        if let Some(blk) = c1.block_check(inst) {
            b.push_top(mb, blk);
        }
        let mc = take(pool, "Step 3");
        if let Some(blk) = c2.block_check(inst) {
            b.push_bottom(mc, blk);
        }
        b.push_bottom(mc, c4.block_all(inst));
    }

    // Step 4: two classes ≥ (3/4)T plus the last mid class fill two machines.
    if bigs.len() >= 2 && mids.len() == 1 {
        trace.nh_step4 = true;
        let c1 = bigs.pop().expect("len checked");
        let c2 = bigs.pop().expect("len checked");
        let c3 = mids.pop().expect("len checked");
        let ma = take(pool, "Step 4");
        b.push_bottom(ma, c3.block_all(inst));
        b.push_top(ma, c1.block_hat(inst));
        let mb = take(pool, "Step 4");
        if let Some(blk) = c1.block_check(inst) {
            b.push_bottom(mb, blk);
        }
        b.push_bottom(mb, c2.block_all(inst));
    }

    // Dispatch on the remaining classes heavier than T/2.
    let mut over: Vec<VClass> = Vec::new();
    over.append(&mut bigs);
    over.append(&mut mids);
    debug_assert!(
        over.len() <= 3,
        "Steps 2–4 leave at most three classes > T/2"
    );

    match over.len() {
        0 | 1 => {
            // Step 5: place the single class (if any), then greedy.
            let mut fronts = Vec::new();
            if let Some(c) = over.pop() {
                trace.nh_step5_single = true;
                let m = take(pool, "Step 5");
                b.push_bottom(m, c.block_all(inst));
                fronts.push(m);
            }
            greedy_fill(inst, b, t, fronts, pool, smalls, trace);
        }
        2 => {
            // Step 6. c1 is the larger class; since Step 2 left at most one
            // mid class, c1 has total ≥ (3/4)T.
            over.sort_by_key(|c| c.total);
            let c1 = over.pop().expect("len checked");
            let c2 = over.pop().expect("len checked");
            debug_assert!(frac::ge(c1.total, 3, 4, t));
            if frac::le(c2.total, 3, 4, t) {
                if c1.total + c2.total <= h {
                    // 6.1a: both on one machine.
                    trace.nh_step6.case_1a += 1;
                    let m = take(pool, "Step 6.1a");
                    b.push_bottom(m, c1.block_all(inst));
                    b.push_top(m, c2.block_all(inst));
                    greedy_fill(inst, b, t, Vec::new(), pool, smalls, trace);
                } else {
                    // 6.1b: c2 then ĉ1 top-aligned; č1 seeds the next machine.
                    trace.nh_step6.case_1b += 1;
                    let ma = take(pool, "Step 6.1b");
                    b.push_bottom(ma, c2.block_all(inst));
                    b.push_top(ma, c1.block_hat(inst));
                    let mb = take(pool, "Step 6.1b");
                    if let Some(blk) = c1.block_check(inst) {
                        b.push_bottom(mb, blk);
                    }
                    greedy_fill(inst, b, t, vec![mb], pool, smalls, trace);
                }
            } else if c1.p_hat + c2.p_hat <= t {
                // 6.2a: c2 followed by ĉ1 on one machine; č1 seeds the next.
                trace.nh_step6.case_2a += 1;
                let ma = take(pool, "Step 6.2a");
                b.push_bottom(ma, c2.block_all(inst));
                b.push_bottom(ma, c1.block_hat(inst));
                let mb = take(pool, "Step 6.2a");
                if let Some(blk) = c1.block_check(inst) {
                    b.push_bottom(mb, blk);
                }
                greedy_fill(inst, b, t, vec![mb], pool, smalls, trace);
            } else {
                // 6.2b: hats share one machine; checks bracket the next, and
                // the greedy classes fill the gap between them.
                trace.nh_step6.case_2b += 1;
                let ma = take(pool, "Step 6.2b");
                b.push_bottom(ma, c1.block_hat(inst));
                b.push_top(ma, c2.block_hat(inst));
                let mb = take(pool, "Step 6.2b");
                if let Some(blk) = c2.block_check(inst) {
                    b.push_bottom(mb, blk);
                }
                if let Some(blk) = c1.block_check(inst) {
                    b.push_top(mb, blk);
                }
                greedy_fill(inst, b, t, vec![mb], pool, smalls, trace);
            }
        }
        3 => {
            // Step 7: all three remaining classes have total ≥ (3/4)T.
            debug_assert!(over.iter().all(|c| frac::ge(c.total, 3, 4, t)));
            if let Some(i) = (0..3).find(|&i| frac::le(over[i].p_hat, 1, 2, t)) {
                // 7.1: some ĉ ≤ T/2.
                trace.nh_step7.case_1 += 1;
                let c1 = over.swap_remove(i);
                let c3 = over.pop().expect("len checked");
                let c2 = over.pop().expect("len checked");
                let ma = take(pool, "Step 7.1");
                b.push_bottom(ma, c1.block_hat(inst));
                b.push_bottom(ma, c2.block_all(inst));
                let mb = take(pool, "Step 7.1");
                b.push_bottom(mb, c3.block_all(inst));
                if let Some(blk) = c1.block_check(inst) {
                    b.push_top(mb, blk);
                }
                greedy_fill(inst, b, t, Vec::new(), pool, smalls, trace);
            } else {
                // 7.2: all hats > T/2. Order so that p(č1) ≥ p(č2), which
                // guarantees p(č1) > T/4 in case 7.2b.
                if over[0].p_check < over[1].p_check {
                    over.swap(0, 1);
                }
                let c3 = over.pop().expect("len checked");
                let c2 = over.pop().expect("len checked");
                let c1 = over.pop().expect("len checked");
                let ma = take(pool, "Step 7.2");
                b.push_bottom(ma, c1.block_hat(inst));
                b.push_top(ma, c2.block_hat(inst));
                if c1.p_check + c2.p_check + c3.total <= h {
                    // 7.2a: č2, c3, č1 share the second machine.
                    trace.nh_step7.case_2a += 1;
                    let mb = take(pool, "Step 7.2a");
                    if let Some(blk) = c2.block_check(inst) {
                        b.push_bottom(mb, blk);
                    }
                    b.push_bottom(mb, c3.block_all(inst));
                    if let Some(blk) = c1.block_check(inst) {
                        b.push_top(mb, blk);
                    }
                    greedy_fill(inst, b, t, Vec::new(), pool, smalls, trace);
                } else {
                    // 7.2b: c3 + č1 close machine B; č2 seeds machine C.
                    trace.nh_step7.case_2b += 1;
                    let mb = take(pool, "Step 7.2b");
                    b.push_bottom(mb, c3.block_all(inst));
                    if let Some(blk) = c1.block_check(inst) {
                        b.push_top(mb, blk);
                    }
                    let mc = take(pool, "Step 7.2b");
                    if let Some(blk) = c2.block_check(inst) {
                        b.push_bottom(mc, blk);
                    }
                    greedy_fill(inst, b, t, vec![mc], pool, smalls, trace);
                }
            }
        }
        _ => unreachable!("at most three classes > T/2 remain after Steps 2-4"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrs_core::{validate, Instance};

    /// Helper: run no_huge standalone over whole classes of `inst` with bound
    /// `t` and horizon ⌊3t/2⌋; validate and bound-check the result.
    fn run(inst: &Instance, t: Time) {
        let h = frac::floor_mul(3, 2, t);
        let mut b = ScheduleBuilder::new(inst, h);
        let mut pool: VecDeque<MachineId> = (0..inst.machines()).collect();
        let classes: Vec<VClass> = inst
            .nonempty_classes()
            .map(|c| VClass::new(inst, inst.class_jobs(c).to_vec(), t))
            .collect();
        no_huge(
            inst,
            &mut b,
            &mut pool,
            t,
            classes,
            &mut StepTrace::default(),
        );
        let s = b.finalize().expect("all jobs placed");
        assert_eq!(validate(inst, &s), Ok(()), "invalid schedule");
        assert!(
            s.makespan(inst) <= h,
            "makespan {} > H {h}",
            s.makespan(inst)
        );
    }

    #[test]
    fn step2_pairs_mid_classes() {
        // t = 12: four classes of total 7 ∈ (6, 9).
        let inst =
            Instance::from_classes(2, &[vec![4, 3], vec![4, 3], vec![4, 3], vec![4, 3]]).unwrap();
        // total 28 ≤ 2·t? No — need pool·t ≥ 28 → t = 14: mids need ∈ (7, 10.5).
        // Use t = 14: totals 7 not > 7. Use classes of 8 instead:
        let inst2 =
            Instance::from_classes(2, &[vec![4, 4], vec![4, 4], vec![4, 4], vec![3]]).unwrap();
        // t = 14: totals 8 ∈ (7, 10.5) → mids; small {3}. Load 27 ≤ 28 ✓.
        run(&inst2, 14);
        let _ = inst;
    }

    #[test]
    fn step3_four_heavy_classes() {
        // t = 8: four classes of total ≥ 6 (= 3t/4), no job > 6.
        // loads: 4×7 = 28 ≤ m·t with m = 4: 32 ✓.
        let inst =
            Instance::from_classes(4, &[vec![4, 3], vec![4, 3], vec![4, 3], vec![4, 3]]).unwrap();
        run(&inst, 8);
    }

    #[test]
    fn step4_two_heavy_one_mid() {
        // t = 8: two classes ≥ 6, one mid ∈ (4, 6), fillers.
        // {4,3}=7, {4,3}=7, {5}=5; total 19 ≤ 3·8 ✓ m=3.
        let inst = Instance::from_classes(3, &[vec![4, 3], vec![4, 3], vec![5]]).unwrap();
        run(&inst, 8);
    }

    #[test]
    fn step5_single_over_half() {
        // t = 8: one class of 7, smalls.
        let inst = Instance::from_classes(2, &[vec![4, 3], vec![2, 2], vec![2, 2]]).unwrap();
        run(&inst, 8);
    }

    #[test]
    fn step6_cases() {
        // 6.1a: c1 + c2 ≤ H.
        let a = Instance::from_classes(2, &[vec![4, 3], vec![5]]).unwrap();
        run(&a, 8); // 7 + 5 = 12 = ⌊12⌋ ✓ one machine; H = 12.
                    // 6.1b: c1 + c2 > H: c1 = 8 (t=8: ≥ 6), c2 = 5 ∈ (4,6): 13 > 12.
        let b2 = Instance::from_classes(2, &[vec![4, 4], vec![5], vec![2]]).unwrap();
        run(&b2, 8);
        // 6.2: both ≥ 6 with t = 8.
        let c = Instance::from_classes(2, &[vec![4, 3], vec![4, 3], vec![1, 1]]).unwrap();
        run(&c, 8);
    }

    #[test]
    fn step6_2b_gap_filling() {
        // Force 6.2b: hats sum > t. t = 8: classes {4,4} (hat 4, check 4)…
        // hats must each be > 4: jobs of 5 > t/2 are big (≤ 6 ok).
        // {5,3}: hat 5 (big job), check 3. Two of them: hats 5+5 = 10 > 8 ✓.
        // Plus smalls to fill the bracket machine: {2,2}, {2}.
        // Load: 8+8+4+2 = 22 ≤ 3·8 = 24, m = 3.
        let inst =
            Instance::from_classes(3, &[vec![5, 3], vec![5, 3], vec![2, 2], vec![2]]).unwrap();
        run(&inst, 8);
    }

    #[test]
    fn step7_three_heavy() {
        // Three classes ≥ 6 at t = 8, m = 3: loads 7,7,7 = 21 ≤ 24.
        let inst = Instance::from_classes(3, &[vec![4, 3], vec![4, 3], vec![4, 3]]).unwrap();
        run(&inst, 8);
        // 7.2 variant: hats > 4: {5,2} (hat 5 check 2) ×3, total 21.
        let inst2 = Instance::from_classes(3, &[vec![5, 2], vec![5, 2], vec![5, 2]]).unwrap();
        run(&inst2, 8);
    }

    #[test]
    fn step7_2b_path() {
        // Make č1+č2+c3 > H: checks of 3 each, c3 = 8: 3+3+8 = 14 > 12 = H.
        // classes {5,3} hat5/check3, {5,3}, {4,4} (c3, total 8).
        // t = 8: loads 8,8,8 = 24 ≤ 4·8, m = 4 (7.2b opens a third machine).
        let inst =
            Instance::from_classes(4, &[vec![5, 3], vec![5, 3], vec![4, 4], vec![2, 2]]).unwrap();
        run(&inst, 8);
    }

    #[test]
    fn greedy_fill_only() {
        // All classes ≤ t/2.
        let inst =
            Instance::from_classes(2, &[vec![3], vec![3], vec![3], vec![3], vec![2, 1]]).unwrap();
        run(&inst, 8);
    }

    #[test]
    fn greedy_fill_respects_gap() {
        // Direct greedy_fill exercise with a bracket machine.
        let inst = Instance::from_classes(2, &[vec![4], vec![4], vec![3], vec![3]]).unwrap();
        let t: Time = 8;
        let mut b = ScheduleBuilder::new(&inst, 12);
        let mut pool: VecDeque<MachineId> = VecDeque::from(vec![1]);
        // bracket machine 0: bottom 4, top 4 → gap 4 in [4, 8).
        b.push_bottom(0, msrs_core::Block::whole_class(&inst, 0));
        b.push_top(0, msrs_core::Block::whole_class(&inst, 1));
        let smalls = vec![
            VClass::new(&inst, inst.class_jobs(2).to_vec(), t),
            VClass::new(&inst, inst.class_jobs(3).to_vec(), t),
        ];
        greedy_fill(
            &inst,
            &mut b,
            t,
            vec![0],
            &mut pool,
            smalls,
            &mut StepTrace::default(),
        );
        let s = b.finalize().unwrap();
        assert_eq!(validate(&inst, &s), Ok(()));
        assert!(s.makespan(&inst) <= 12);
    }
}
