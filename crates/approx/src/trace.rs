//! Execution telemetry for `Algorithm_3/2` / `Algorithm_no_huge`.
//!
//! The paper's Figures 2–4 illustrate the *steps* of the algorithms; the E6
//! experiment regenerates them as step-execution counts over instance
//! corpora. [`StepTrace`] records how often every step (and sub-case) fired
//! during one run; `three_halves_traced` returns it alongside the schedule.

/// Which branch Step 6 of `Algorithm_no_huge` took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoHugeStep6 {
    /// 6.1a — both classes on one machine.
    pub case_1a: u32,
    /// 6.1b — split `c1`, seed the next machine with `č1`.
    pub case_1b: u32,
    /// 6.2a — `c2` followed by `ĉ1`.
    pub case_2a: u32,
    /// 6.2b — hats bracket one machine, checks bracket the next.
    pub case_2b: u32,
}

/// Which branch Step 7 of `Algorithm_no_huge` took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoHugeStep7 {
    /// 7.1 — some `ĉ ≤ T/2`.
    pub case_1: u32,
    /// 7.2a — checks and `c3` share a machine.
    pub case_2a: u32,
    /// 7.2b — `č2` seeds a third machine.
    pub case_2b: u32,
}

/// Step counters for one `Algorithm_3/2` run (general steps and the
/// `Algorithm_no_huge` subroutine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepTrace {
    /// Trivial fast path taken (Note 1 / degenerate instance).
    pub trivial: bool,
    /// Huge classes opened in Step 2 (= `|C_H|`).
    pub step2_huge_machines: u32,
    /// Classes `≤ T/2` placed onto `M_H` machines in Step 3.
    pub step3_fills: u32,
    /// Step 4 iterations (two `M_H` machines + one mid class).
    pub step4: u32,
    /// Step 5 taken with the rotation move.
    pub step5_rotation: bool,
    /// Step 5/10 fallback: all residual classes were `C_B`.
    pub step5_cb_fallback: bool,
    /// Step 6 iterations (one `M_H` machine + fresh machine).
    pub step6: u32,
    /// Step 7: `C_B ∩ (T/2, 3/4T)` classes placed on own machines.
    pub step7_classes: u32,
    /// Step 8 iterations (two `M_H` machines + fresh machine).
    pub step8: u32,
    /// Step 9: residual classes placed on own machines.
    pub step9_classes: u32,
    /// Step 10 taken with the rotation move.
    pub step10_rotation: bool,
    /// `Algorithm_no_huge` invoked.
    pub no_huge_called: bool,
    /// no_huge Step 2 pairs.
    pub nh_step2_pairs: u32,
    /// no_huge Step 3 quadruples.
    pub nh_step3_quads: u32,
    /// no_huge Step 4 taken.
    pub nh_step4: bool,
    /// no_huge Step 5 single class placed.
    pub nh_step5_single: bool,
    /// no_huge Step 6 sub-cases.
    pub nh_step6: NoHugeStep6,
    /// no_huge Step 7 sub-cases.
    pub nh_step7: NoHugeStep7,
    /// Classes placed by the final greedy fill.
    pub nh_greedy_placements: u32,
    /// Internal scratch: the last rotate_and_finish call used the rotation
    /// branch (copied into `step5_rotation` / `step10_rotation`).
    pub(crate) rotation_done: bool,
    /// Internal scratch: the last rotate_and_finish call used the all-C_B
    /// fallback.
    pub(crate) cb_fallback_done: bool,
}

impl StepTrace {
    /// Merges another trace into this one (corpus aggregation).
    pub fn absorb(&mut self, other: &StepTrace) {
        self.trivial |= other.trivial;
        self.step2_huge_machines += other.step2_huge_machines;
        self.step3_fills += other.step3_fills;
        self.step4 += other.step4;
        self.step5_rotation |= other.step5_rotation;
        self.step5_cb_fallback |= other.step5_cb_fallback;
        self.step6 += other.step6;
        self.step7_classes += other.step7_classes;
        self.step8 += other.step8;
        self.step9_classes += other.step9_classes;
        self.step10_rotation |= other.step10_rotation;
        self.no_huge_called |= other.no_huge_called;
        self.nh_step2_pairs += other.nh_step2_pairs;
        self.nh_step3_quads += other.nh_step3_quads;
        self.nh_step4 |= other.nh_step4;
        self.nh_step5_single |= other.nh_step5_single;
        self.nh_step6.case_1a += other.nh_step6.case_1a;
        self.nh_step6.case_1b += other.nh_step6.case_1b;
        self.nh_step6.case_2a += other.nh_step6.case_2a;
        self.nh_step6.case_2b += other.nh_step6.case_2b;
        self.nh_step7.case_1 += other.nh_step7.case_1;
        self.nh_step7.case_2a += other.nh_step7.case_2a;
        self.nh_step7.case_2b += other.nh_step7.case_2b;
        self.nh_greedy_placements += other.nh_greedy_placements;
    }

    /// Whether any rotation (Step 5 or 10) happened.
    pub fn rotated(&self) -> bool {
        self.step5_rotation || self.step10_rotation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = StepTrace {
            step4: 2,
            nh_step2_pairs: 1,
            ..Default::default()
        };
        let b = StepTrace {
            step4: 3,
            step5_rotation: true,
            nh_step6: NoHugeStep6 {
                case_2b: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.step4, 5);
        assert_eq!(a.nh_step2_pairs, 1);
        assert!(a.rotated());
        assert_eq!(a.nh_step6.case_2b, 1);
    }
}
