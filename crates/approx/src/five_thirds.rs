//! `Algorithm_5/3` — the simple and fast 5/3-approximation (paper Section 2).
//!
//! With `T = max{⌈p(J)/m⌉, max_c p(c), p_(m) + p_(m+1)}` the algorithm places
//! whole classes in three passes and guarantees every job completes by
//! `H = ⌊(5/3)T⌋`:
//!
//! 1. every class containing a job `> T/2` (the set `C_{B+}`, at most `m`
//!    classes by Observation 4) goes on its own machine;
//! 2. classes with `p(c) > (2/3)T` are added to those machines in order
//!    (whole if the result stays under `H`, otherwise split by Lemma 5: the
//!    larger part top-aligned at `H`, the smaller part inserted at time 0 of
//!    the *next* machine, delaying that machine's jobs);
//! 3. the remaining classes (`p(c) ≤ (2/3)T`) are added greedily, closing
//!    each machine once its load reaches `T`.
//!
//! Machines are *closed* once their load reaches `T` (the paper's "load in
//! `(1, 5/3]`" rule); since the total load is at most `mT`, an open machine
//! always exists while jobs remain. All anchors are integral: the flooring
//! survives every inequality of Lemma 6 because job sizes are integers (see
//! `msrs_core::frac`).

use msrs_core::{bounds::lower_bound, frac, Block, ClassId, Instance, ScheduleBuilder};

use crate::common::{trivial, ApproxResult};
use crate::partition;

/// Runs `Algorithm_5/3` on `inst`, producing a valid schedule with makespan
/// at most `⌊(5/3)·T⌋ ≤ (5/3)·OPT` in `O(|I|)` time.
pub fn five_thirds(inst: &Instance) -> ApproxResult {
    if let Some(r) = trivial(inst) {
        return r;
    }
    let t = lower_bound(inst);
    debug_assert!(t > 0, "zero bound handled by the trivial path");
    let h = frac::floor_mul(5, 3, t);
    let m = inst.machines();
    let mut b = ScheduleBuilder::new(inst, h);

    // Classify: C_{B+} (job > T/2), large (p(c) > 2T/3, not C_{B+}), rest.
    // Zero-load classes are placed immediately (they occupy no time and are
    // outside the load-accounting argument).
    let mut cb_plus: Vec<ClassId> = Vec::new();
    let mut large: Vec<ClassId> = Vec::new();
    let mut rest: Vec<ClassId> = Vec::new();
    for c in inst.nonempty_classes() {
        if inst.class_load(c) == 0 {
            b.push_bottom(0, Block::whole_class(inst, c));
        } else if frac::gt(inst.class_max_job(c), 1, 2, t) {
            cb_plus.push(c);
        } else if frac::gt(inst.class_load(c), 2, 3, t) {
            large.push(c);
        } else {
            rest.push(c);
        }
    }
    assert!(
        cb_plus.len() <= m,
        "Observation 4 violated: {} classes with a job > T/2 on {m} machines",
        cb_plus.len()
    );

    // Step 1: each C_{B+} class on its own machine (machines 0..|C_{B+}|).
    for (machine, &c) in cb_plus.iter().enumerate() {
        b.push_bottom(machine, Block::whole_class(inst, c));
    }

    let mut closed = vec![false; m];
    let mut cur = 0usize;

    // Step 2: place the large classes, splitting when they do not fit whole.
    for &c in &large {
        let pc = inst.class_load(c);
        while cur < m && closed[cur] {
            cur += 1;
        }
        assert!(
            cur < m,
            "invariant violation: no open machine left in Step 2"
        );
        if b.load(cur) + pc <= h {
            b.push_bottom(cur, Block::whole_class(inst, c));
            if b.load(cur) >= t {
                closed[cur] = true;
            }
        } else {
            let split = partition::lemma5(inst, inst.class_jobs(c), t);
            // Larger part top-aligned at H on the current machine; close it.
            b.push_top(cur, Block::from_jobs(inst, split.hat));
            closed[cur] = true;
            cur += 1;
            while cur < m && closed[cur] {
                cur += 1;
            }
            assert!(
                cur < m,
                "invariant violation: no machine for the split part"
            );
            // Smaller part at time 0 of the next machine, delaying its jobs.
            if !split.check.is_empty() {
                b.push_bottom_front(cur, Block::from_jobs(inst, split.check));
            }
            if b.load(cur) >= t {
                closed[cur] = true;
            }
        }
    }

    // Step 3: greedily place the remaining classes on open machines.
    let mut cur = 0usize;
    for &c in &rest {
        loop {
            assert!(
                cur < m,
                "invariant violation: no open machine left in Step 3"
            );
            if closed[cur] || b.load(cur) >= t {
                closed[cur] = true;
                cur += 1;
                continue;
            }
            break;
        }
        b.push_bottom(cur, Block::whole_class(inst, c));
        if b.load(cur) >= t {
            closed[cur] = true;
            cur += 1;
        }
    }

    let schedule = b.finalize().expect("Algorithm_5/3 places every class");
    ApproxResult {
        schedule,
        lower_bound: t,
        horizon: h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrs_core::{validate, Instance, Time};

    fn check(inst: &Instance) -> ApproxResult {
        let r = five_thirds(inst);
        assert_eq!(validate(inst, &r.schedule), Ok(()), "invalid schedule");
        let cmax = r.makespan(inst);
        assert!(
            cmax <= frac::floor_mul(5, 3, r.lower_bound).max(r.lower_bound),
            "makespan {cmax} exceeds 5/3·T (T={})",
            r.lower_bound
        );
        r
    }

    #[test]
    fn single_class_many_machines() {
        let inst = Instance::from_classes(4, &[vec![3, 3, 3]]).unwrap();
        let r = check(&inst);
        assert_eq!(r.makespan(&inst), 9); // sequential class = optimal
    }

    #[test]
    fn big_job_classes_get_own_machines() {
        // T = 10 (area): two classes led by jobs > T/2.
        let inst = Instance::from_classes(2, &[vec![7, 3], vec![7, 3]]).unwrap();
        let r = check(&inst);
        assert_eq!(r.lower_bound, 10);
        assert_eq!(r.makespan(&inst), 10); // each class fits one machine
    }

    #[test]
    fn large_class_split_path() {
        // Force a split: m=2; CB+ class occupying machine 0 with load T, and
        // two large classes.
        // classes: {6,5} (11), {4,4} (8), {4,4} (8); m=2: p(J)=27 → T=⌈27/2⌉=14,
        // max class 11, p̃_2+p̃_3=5+4=9 → T=14. H=⌊70/3⌋=23.
        // CB+: job > 7: none (6 ≤ 7). large: p(c) > 28/3≈9.33: class {6,5}=11.
        // Step 2: 11 on empty machine fits whole. Step 3 greedy: the rest.
        let inst = Instance::from_classes(2, &[vec![6, 5], vec![4, 4], vec![4, 4]]).unwrap();
        check(&inst);
    }

    #[test]
    fn genuine_split_with_delay() {
        // m=2. Classes: A={9,8} (17), B={5,5,5} (15), C={2} (2).
        // p(J)=34 → 17; max class 17; sizes sorted 9,8,5,5,5,2 → p̃_2+p̃_3=13.
        // T=17, H=⌊85/3⌋=28. CB+: job > 8.5 → A (job 9). large: p>34/3≈11.3 → B.
        // Step 1: A on machine 0 (load 17 = T, stays open but load ≥ T).
        // Step 2: B on machine 0? load 17 + 15 = 32 > 28 → split.
        let inst = Instance::from_classes(2, &[vec![9, 8], vec![5, 5, 5], vec![2]]).unwrap();
        check(&inst);
    }

    #[test]
    fn all_unit_jobs_round_robin_classes() {
        let inst = Instance::from_classes(
            3,
            &[
                vec![1; 10],
                vec![1; 10],
                vec![1; 10],
                vec![1; 10],
                vec![1; 10],
            ],
        )
        .unwrap();
        let r = check(&inst);
        // T = ⌈50/3⌉ = 17; greedy must fit everything under ⌊85/3⌋ = 28.
        assert!(r.makespan(&inst) <= 28);
    }

    #[test]
    fn trivial_paths_used() {
        let inst = Instance::from_classes(5, &[vec![4], vec![5], vec![6]]).unwrap();
        let r = check(&inst);
        assert_eq!(r.makespan(&inst), 6);
    }

    #[test]
    fn zero_size_jobs_mixed_in() {
        let inst = Instance::from_classes(2, &[vec![0, 5], vec![5, 0], vec![3, 0, 3]]).unwrap();
        check(&inst);
    }

    #[test]
    fn boundary_two_thirds_classes() {
        // Classes exactly at 2T/3: T = 12 area bound with m = 3.
        // classes of load 8 = 2T/3 are NOT large (strict >).
        let inst =
            Instance::from_classes(3, &[vec![8], vec![8], vec![8], vec![4, 4], vec![4]]).unwrap();
        let r = check(&inst);
        assert!(r.lower_bound >= 12);
    }

    #[test]
    fn stress_many_shapes() {
        // A deterministic mini-sweep over structured shapes.
        let shapes: Vec<(usize, Vec<Vec<Time>>)> = vec![
            (2, vec![vec![10], vec![9, 1], vec![8, 2], vec![1, 1, 1]]),
            (
                3,
                vec![vec![7, 7], vec![14], vec![13, 1], vec![6, 6], vec![2; 10]],
            ),
            (
                4,
                vec![vec![3; 9], vec![5, 5, 5], vec![20], vec![11, 9], vec![1]],
            ),
            (2, vec![vec![1], vec![1], vec![1]]),
            (3, vec![vec![2, 2], vec![2, 2], vec![2, 2], vec![2, 2]]),
        ];
        for (m, classes) in shapes {
            let inst = Instance::from_classes(m, &classes).unwrap();
            check(&inst);
        }
    }
}
