//! The scaled lower bound `T` of Lemma 9.
//!
//! `Algorithm_3/2` needs the smallest `T` with
//! `T ≥ max{⌈p(J)/m⌉, max_c p(c), p̃_m + p̃_{m+1}}` such that, classifying
//! classes against `T`,
//!
//! ```text
//! |C_H| + max{ |C_B|, ⌈(|C_B| + |C_{≥3/4} \ (C_H ∪ C_B)|) / 2⌉ } ≤ m
//! ```
//!
//! where `C_H`/`C_B` are the classes containing a job `> (3/4)T` /
//! `∈ (T/2, (3/4)T]` and `C_{≥3/4}` those with `p(c) ≥ (3/4)T`. Lemma 8 shows
//! the condition holds at `T = OPT`; classifications only change at `O(|C|)`
//! threshold values of `T`, so scanning the thresholds in increasing order
//! finds the smallest valid `T ≤ OPT`.

use msrs_core::{bounds::lower_bound, frac, ClassId, Instance, Time};

/// Per-class classification against a candidate `T` (three-way; `None` for
/// classes outside all special categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Contains a job `> (3/4)T`.
    Huge,
    /// Contains a job in `(T/2, (3/4)T]` (and none larger).
    Big,
    /// Total `≥ (3/4)T`, no job `> T/2`.
    HeavyTotal,
    /// Everything else.
    Plain,
}

/// Classifies one class (by its max job `q` and total `p`) against `t`.
pub fn categorize(q: Time, p: Time, t: Time) -> Category {
    if frac::gt(q, 3, 4, t) {
        Category::Huge
    } else if frac::gt(q, 1, 2, t) {
        Category::Big
    } else if frac::ge(p, 3, 4, t) {
        Category::HeavyTotal
    } else {
        Category::Plain
    }
}

/// Evaluates the machine-count expression of Lemma 8 at `t` over the given
/// `(max job, total)` class summaries.
pub fn lemma8_count(summaries: &[(Time, Time)], t: Time) -> usize {
    let mut ch = 0usize;
    let mut cb = 0usize;
    let mut heavy = 0usize;
    for &(q, p) in summaries {
        match categorize(q, p, t) {
            Category::Huge => ch += 1,
            Category::Big => cb += 1,
            Category::HeavyTotal => heavy += 1,
            Category::Plain => {}
        }
    }
    ch + cb.max((cb + heavy).div_ceil(2))
}

/// Computes the Lemma 9 lower bound: the smallest valid `T`.
///
/// Returns the chosen `T` (guaranteed `≤ OPT`).
pub fn lemma9_t(inst: &Instance) -> Time {
    let base = lower_bound(inst);
    if base == 0 {
        return 0;
    }
    let m = inst.machines();

    // Only classes that are in some category at T = base can ever matter
    // (categories shrink as T grows).
    let summaries: Vec<(Time, Time)> = inst
        .nonempty_classes()
        .map(|c: ClassId| (inst.class_max_job(c), inst.class_load(c)))
        .filter(|&(q, p)| categorize(q, p, base) != Category::Plain)
        .collect();

    // Candidate values: base plus every threshold where a relevant class
    // changes category.
    let mut candidates: Vec<Time> = vec![base];
    for &(q, p) in &summaries {
        // leaves Huge when 4q ≤ 3T ⟺ T ≥ ⌈4q/3⌉
        candidates.push(frac::ceil_mul(4, 3, q));
        // leaves Big when 2q ≤ T
        candidates.push(2 * q);
        // leaves HeavyTotal when 4p < 3T ⟺ T ≥ ⌊4p/3⌋ + 1
        candidates.push(frac::floor_mul(4, 3, p) + 1);
    }
    candidates.retain(|&t| t >= base);
    candidates.sort_unstable();
    candidates.dedup();

    for &t in &candidates {
        if lemma8_count(&summaries, t) <= m {
            return t;
        }
    }
    unreachable!("the largest candidate empties all categories, so some T is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrs_core::Instance;

    #[test]
    fn categorize_thresholds() {
        // t = 12: huge > 9, big ∈ (6, 9], heavy total ≥ 9.
        assert_eq!(categorize(10, 10, 12), Category::Huge);
        assert_eq!(categorize(9, 9, 12), Category::Big);
        assert_eq!(categorize(7, 7, 12), Category::Big);
        assert_eq!(categorize(6, 9, 12), Category::HeavyTotal);
        assert_eq!(categorize(6, 8, 12), Category::Plain);
    }

    #[test]
    fn base_is_returned_when_already_valid() {
        // 3 machines, 3 small classes: condition holds at base.
        let inst = Instance::from_classes(3, &[vec![2], vec![2], vec![2], vec![2]]).unwrap();
        let t = lemma9_t(&inst);
        assert_eq!(t, lower_bound(&inst));
    }

    #[test]
    fn t_grows_when_too_many_huge_classes() {
        // m = 2 machines, 4 classes each a single job of size 8: base =
        // max(⌈32/2⌉=16, 8, 16) = 16. At T=16: job 8 ≤ (3/4)·16 = 12? yes and
        // 8 ≤ 8 = T/2, so not Big either → condition holds at base.
        let inst = Instance::from_classes(2, &[vec![8], vec![8], vec![8], vec![8]]).unwrap();
        assert_eq!(lemma9_t(&inst), 16);
    }

    #[test]
    fn t_grows_past_base_on_huge_overload() {
        // m = 2, 3 classes with one job of size 10 each plus filler class:
        // base: p(J)=30 → ⌈30/2⌉=15; max class 10; p̃_2+p̃_3 = 20 → base 20.
        // At T=20: 10 > 15? no: huge needs >15; big needs >10: 10 is not > 10.
        // So valid at base.
        let inst = Instance::from_classes(2, &[vec![10], vec![10], vec![10]]).unwrap();
        assert_eq!(lemma9_t(&inst), 20);
    }

    #[test]
    fn condition_fails_then_succeeds() {
        // Craft: m = 2; two classes with a huge job and one heavy class.
        // Classes: {7}, {7}, {6,3} on m=2: totals 7,7,9; sizes 7,7,6,3.
        // base: ⌈23/2⌉=12, max class 9, p̃_2+p̃_3 = 7+6=13 → base 13.
        // At T=13: huge > 9.75 → none; big ∈ (6.5, 9.75]: jobs 7,7 → CB = 2;
        // heavy ≥ 9.75: none. count = 0 + max(2, 1) = 2 ≤ 2 ✓.
        let inst = Instance::from_classes(2, &[vec![7], vec![7], vec![6, 3]]).unwrap();
        assert_eq!(lemma9_t(&inst), 13);
    }

    #[test]
    fn overloaded_big_classes_push_t_up() {
        // m = 2 but THREE classes each led by a job just over half of base.
        // Classes {5,1}, {5,1}, {5,1}: p(J)=18, base=⌈18/2⌉=9, max class 6,
        // p̃_2+p̃_3=10 → base 10. At T=10: big ∈ (5, 7.5]: none (5 not > 5)…
        // use 6 instead: {6,1}×3: p(J)=21 base ⌈21/2⌉=11, p̃_2+p̃_3=12 → 12.
        // T=12: big ∈ (6,9]: none. Hmm — craft via totals instead:
        // heavy-total classes: {4,4}, {4,4}, {4,4} on m=2: base: p(J)=24→12;
        // T=12: heavy ≥ 9: 8 < 9 no. Condition holds at base.
        let inst = Instance::from_classes(2, &[vec![4, 4], vec![4, 4], vec![4, 4]]).unwrap();
        assert_eq!(lemma9_t(&inst), 12);
    }

    #[test]
    fn lemma8_count_matches_manual() {
        // t = 12; summaries: huge (10), big (7), heavy (6,11), plain.
        let summaries = vec![(10, 10), (7, 8), (6, 11), (3, 5)];
        // ch=1, cb=1, heavy=1 → 1 + max(1, ⌈2/2⌉=1) = 2.
        assert_eq!(lemma8_count(&summaries, 12), 2);
    }

    #[test]
    fn returned_t_always_satisfies_condition_and_is_minimal_candidate() {
        // Randomized-ish small sweep: check post-conditions structurally.
        for (m, classes) in [
            (2usize, vec![vec![9, 1], vec![8], vec![7], vec![2, 2]]),
            (3, vec![vec![10], vec![10], vec![10], vec![10], vec![5, 5]]),
            (2, vec![vec![6, 6], vec![6, 6], vec![3]]),
        ] {
            let inst = Instance::from_classes(m, &classes).unwrap();
            let t = lemma9_t(&inst);
            let summaries: Vec<(Time, Time)> = inst
                .nonempty_classes()
                .map(|c| (inst.class_max_job(c), inst.class_load(c)))
                .collect();
            assert!(t >= lower_bound(&inst));
            assert!(lemma8_count(&summaries, t) <= m, "m={m} t={t}");
            // minimality: condition fails for every smaller candidate ≥ base
            for smaller in lower_bound(&inst)..t {
                assert!(
                    lemma8_count(&summaries, smaller) > m,
                    "T={smaller} would already be valid (returned {t})"
                );
            }
        }
    }
}
