//! Class partitions of Lemmas 5, 10 and 11.
//!
//! All three lemmas split a class into two parts scheduled on different
//! machines; each returns `(larger, smaller)` by total processing time with
//! the exact properties the paper states:
//!
//! * **Lemma 5** (`p(c) > (2/3)T`, no job `> T/2`): parts with
//!   `p(smaller) ≤ p(larger) ≤ (2/3)T` and `p(larger) ≥ (1/3)T`.
//! * **Lemma 10** (`p(c) ≥ (3/4)T`, no job `> (3/4)T`): parts `ĉ, č` with
//!   `p(č) ≤ p(ĉ) ≤ (3/4)T` and `p(č) ≤ T/2`; moreover if no job exceeds
//!   `T/2`, one part lies in `(T/4, T/2]`.
//! * **Lemma 11** (`p(c) ∈ (T/2, (3/4)T)`, no job `> T/2`): parts with
//!   `p(č) ≤ p(ĉ) ≤ T/2` and `p(ĉ) > T/4`.
//!
//! The smaller part may be empty only in the Lemma 10 case of a single job of
//! size exactly `(3/4)T` (then `p(ĉ) = p(c)`).

use msrs_core::{frac, Instance, JobId, Time};

/// A two-way split of a set of jobs of one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// The larger part (`ĉ`), by total processing time.
    pub hat: Vec<JobId>,
    /// Total processing time of `hat`.
    pub p_hat: Time,
    /// The smaller part (`č`); may be empty (see module docs).
    pub check: Vec<JobId>,
    /// Total processing time of `check`.
    pub p_check: Time,
}

fn load(inst: &Instance, jobs: &[JobId]) -> Time {
    jobs.iter().map(|&j| inst.size(j)).sum()
}

fn ordered(inst: &Instance, a: Vec<JobId>, b: Vec<JobId>) -> Split {
    let (pa, pb) = (load(inst, &a), load(inst, &b));
    if pa >= pb {
        Split {
            hat: a,
            p_hat: pa,
            check: b,
            p_check: pb,
        }
    } else {
        Split {
            hat: b,
            p_hat: pb,
            check: a,
            p_check: pa,
        }
    }
}

/// Splits off either the single largest job (if it exceeds `T/4`) or a greedy
/// prefix of total `∈ (T/4, T/2]`. Requires no job `> T/2` and total `> T/2`.
fn split_quarter(inst: &Instance, jobs: &[JobId], t: Time) -> (Vec<JobId>, Vec<JobId>) {
    let &max_job = jobs
        .iter()
        .max_by_key(|&&j| inst.size(j))
        .expect("split_quarter needs a non-empty class");
    if frac::gt(inst.size(max_job), 1, 4, t) {
        // Largest job in (T/4, T/2]: it alone is the pivot part.
        let rest: Vec<JobId> = jobs.iter().copied().filter(|&j| j != max_job).collect();
        (vec![max_job], rest)
    } else {
        // All jobs ≤ T/4: greedily fill until the prefix exceeds T/4 (then it
        // is at most T/2).
        let mut prefix = Vec::new();
        let mut p: Time = 0;
        let mut rest = Vec::new();
        for &j in jobs {
            if frac::le(p, 1, 4, t) {
                p += inst.size(j);
                prefix.push(j);
            } else {
                rest.push(j);
            }
        }
        (prefix, rest)
    }
}

/// Lemma 5 partition. Requires `p(c) > (2/3)T` and no job `> T/2`.
pub fn lemma5(inst: &Instance, jobs: &[JobId], t: Time) -> Split {
    let total = load(inst, jobs);
    debug_assert!(frac::gt(total, 2, 3, t), "Lemma 5 requires p(c) > (2/3)T");
    debug_assert!(
        jobs.iter().all(|&j| frac::le(inst.size(j), 1, 2, t)),
        "Lemma 5 requires no job > T/2"
    );
    // A job > T/3 (necessarily ≤ T/2) alone; otherwise greedy until ≥ T/3.
    let big = jobs
        .iter()
        .copied()
        .find(|&j| frac::gt(inst.size(j), 1, 3, t));
    let (a, b) = if let Some(big) = big {
        (
            vec![big],
            jobs.iter().copied().filter(|&j| j != big).collect(),
        )
    } else {
        let mut prefix = Vec::new();
        let mut p: Time = 0;
        let mut rest = Vec::new();
        for &j in jobs {
            if frac::lt(p, 1, 3, t) {
                p += inst.size(j);
                prefix.push(j);
            } else {
                rest.push(j);
            }
        }
        (prefix, rest)
    };
    let split = ordered(inst, a, b);
    debug_assert!(frac::le(split.p_hat, 2, 3, t));
    debug_assert!(frac::ge(split.p_hat, 1, 3, t));
    split
}

/// Lemma 10 partition. Requires `p(c) ≥ (3/4)T` and no job `> (3/4)T`.
pub fn lemma10(inst: &Instance, jobs: &[JobId], t: Time) -> Split {
    let total = load(inst, jobs);
    debug_assert!(frac::ge(total, 3, 4, t), "Lemma 10 requires p(c) ≥ (3/4)T");
    let &max_job = jobs
        .iter()
        .max_by_key(|&&j| inst.size(j))
        .expect("Lemma 10 needs a non-empty class");
    let pmax = inst.size(max_job);
    debug_assert!(frac::le(pmax, 3, 4, t), "Lemma 10 requires no job > (3/4)T");
    let split = if frac::gt(pmax, 1, 2, t) {
        // The big job alone is ĉ; the rest (≤ T − T/2 = T/2) is č.
        let rest: Vec<JobId> = jobs.iter().copied().filter(|&j| j != max_job).collect();
        let (ph, pc) = (pmax, total - pmax);
        Split {
            hat: vec![max_job],
            p_hat: ph,
            check: rest,
            p_check: pc,
        }
    } else {
        let (a, b) = split_quarter(inst, jobs, t);
        ordered(inst, a, b)
    };
    debug_assert!(frac::le(split.p_hat, 3, 4, t));
    debug_assert!(frac::le(split.p_check, 1, 2, t));
    split
}

/// Lemma 11 partition. Requires `p(c) ∈ (T/2, (3/4)T)` and no job `> T/2`.
pub fn lemma11(inst: &Instance, jobs: &[JobId], t: Time) -> Split {
    let total = load(inst, jobs);
    debug_assert!(
        frac::gt(total, 1, 2, t) && frac::lt(total, 3, 4, t),
        "Lemma 11 requires p(c) ∈ (T/2, (3/4)T)"
    );
    debug_assert!(
        jobs.iter().all(|&j| frac::le(inst.size(j), 1, 2, t)),
        "Lemma 11 requires no job > T/2"
    );
    let (a, b) = split_quarter(inst, jobs, t);
    let split = ordered(inst, a, b);
    debug_assert!(frac::le(split.p_hat, 1, 2, t));
    debug_assert!(frac::gt(split.p_hat, 1, 4, t));
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrs_core::Instance;

    fn inst_of(sizes: &[Time]) -> Instance {
        Instance::from_classes(1, &[sizes.to_vec()]).unwrap()
    }

    fn all_jobs(inst: &Instance) -> Vec<JobId> {
        (0..inst.num_jobs()).collect()
    }

    #[test]
    fn lemma5_big_job_case() {
        // T = 12: job 5 ∈ (4, 6] is the pivot.
        let inst = inst_of(&[5, 2, 2]);
        let s = lemma5(&inst, &all_jobs(&inst), 12);
        // parts: {5} and {2,2}: larger is 5.
        assert_eq!(s.p_hat, 5);
        assert_eq!(s.p_check, 4);
        assert!(s.p_hat * 3 <= 2 * 12);
        assert!(s.p_hat * 3 >= 12);
    }

    #[test]
    fn lemma5_greedy_case() {
        // T = 12, all jobs ≤ 4 = T/3; total 9 > 8 = 2T/3.
        let inst = inst_of(&[3, 3, 3]);
        let s = lemma5(&inst, &all_jobs(&inst), 12);
        // Greedy prefix: 3 (<4), 3 → 6 ≥ 4 stop: hat {3,3}=6, check {3}.
        assert_eq!(s.p_hat, 6);
        assert_eq!(s.p_check, 3);
    }

    #[test]
    fn lemma5_parts_cover_class() {
        let inst = inst_of(&[4, 4, 1]);
        let s = lemma5(&inst, &all_jobs(&inst), 12);
        let mut all: Vec<_> = s.hat.iter().chain(s.check.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, all_jobs(&inst));
        assert_eq!(s.p_hat + s.p_check, 9);
    }

    #[test]
    fn lemma10_big_job_case() {
        // T = 12: job 7 ∈ (6, 9]; class total 12 ≥ 9.
        let inst = inst_of(&[7, 3, 2]);
        let s = lemma10(&inst, &all_jobs(&inst), 12);
        assert_eq!(s.hat, vec![0]);
        assert_eq!(s.p_hat, 7);
        assert_eq!(s.p_check, 5);
        assert!(2 * s.p_check <= 12);
    }

    #[test]
    fn lemma10_medium_pivot_case() {
        // T = 12: max 4 ∈ (3, 6]; total 12.
        let inst = inst_of(&[4, 4, 4]);
        let s = lemma10(&inst, &all_jobs(&inst), 12);
        // pivot {4}, rest {4,4}: hat = rest (8 ≤ 9), check = {4}.
        assert_eq!(s.p_hat, 8);
        assert_eq!(s.p_check, 4);
        // extra property: one part in (T/4, T/2] = (3, 6]
        assert!(s.p_check > 3 && s.p_check <= 6);
    }

    #[test]
    fn lemma10_greedy_case_and_quarter_property() {
        // T = 16: all jobs ≤ 4 = T/4; total 13 ≥ 12.
        let inst = inst_of(&[3, 3, 3, 2, 2]);
        let s = lemma10(&inst, &all_jobs(&inst), 16);
        assert!(4 * s.p_hat <= 3 * 16);
        assert!(2 * s.p_check <= 16);
        // one part in (4, 8]
        let q = |p: Time| p > 4 && p <= 8;
        assert!(q(s.p_hat) || q(s.p_check), "{s:?}");
    }

    #[test]
    fn lemma10_single_job_three_quarters() {
        // T = 4, single job of exactly 3 = (3/4)T: check is empty.
        let inst = inst_of(&[3]);
        let s = lemma10(&inst, &all_jobs(&inst), 4);
        assert_eq!(s.p_hat, 3);
        assert!(s.check.is_empty());
    }

    #[test]
    fn lemma11_pivot_case() {
        // T = 12: total 8 ∈ (6, 9), max 4 ∈ (3, 6].
        let inst = inst_of(&[4, 2, 2]);
        let s = lemma11(&inst, &all_jobs(&inst), 12);
        assert!(s.p_hat <= 6);
        assert!(s.p_hat > 3);
        assert!(s.p_check <= s.p_hat);
        assert_eq!(s.p_hat + s.p_check, 8);
    }

    #[test]
    fn lemma11_greedy_case() {
        // T = 16: total 9 ∈ (8, 12), all jobs ≤ 4 = T/4.
        let inst = inst_of(&[3, 2, 2, 2]);
        let s = lemma11(&inst, &all_jobs(&inst), 16);
        assert!(2 * s.p_hat <= 16);
        assert!(4 * s.p_hat > 16);
        assert!(!s.check.is_empty());
    }

    #[test]
    fn lemma11_never_empty_check() {
        // total > T/2 and both parts ≤ T/2 forces two non-empty parts.
        for sizes in [vec![4u64, 4], vec![2, 2, 2, 2], vec![4, 2, 1]] {
            let inst = inst_of(&sizes);
            let total: Time = sizes.iter().sum();
            let t = (total * 2) - 1; // ensures total > t/2
            let t = t.max((total * 4).div_ceil(3) + 1); // ensures total < (3/4)t
            if !(frac::gt(total, 1, 2, t) && frac::lt(total, 3, 4, t)) {
                continue;
            }
            let s = lemma11(&inst, &all_jobs(&inst), t);
            assert!(!s.check.is_empty(), "sizes {sizes:?} t {t}");
        }
    }
}
