//! Baseline algorithms the paper compares against (§1, state of the art).
//!
//! * [`merged_lpt`] — Strusevich-style class merging: each class becomes one
//!   job (avoiding resource conflicts entirely), then LPT on `m` machines.
//! * [`hebrard_greedy`] — a reconstruction of the greedy insertion of Hebrard
//!   et al.: jobs are chosen by size plus the remaining load of their class
//!   and inserted at the earliest feasible time across machines.
//! * [`list_scheduler`] — resource-aware LPT list scheduling: whenever a
//!   machine is free, run the largest available job whose resource is idle.
//!
//! Both prior-work algorithms achieve a `2m/(m+1)`-flavoured worst case; the
//! E2 experiment reproduces the paper's remark that `Algorithm_5/3` and
//! `Algorithm_3/2` beat them from `m = 6` resp. `m = 4` machines on.

use msrs_core::{bounds::lower_bound, Assignment, Instance, JobId, Schedule, Time};

use crate::common::{trivial, ApproxResult};

/// Class-merging + LPT (Strusevich-style): schedule each class contiguously
/// on a single machine, assigning classes in non-increasing total load to the
/// least-loaded machine.
pub fn merged_lpt(inst: &Instance) -> ApproxResult {
    if let Some(r) = trivial(inst) {
        return r;
    }
    let t = lower_bound(inst);
    let mut classes: Vec<(Time, usize)> = inst
        .nonempty_classes()
        .map(|c| (inst.class_load(c), c))
        .collect();
    classes.sort_unstable_by(|a, b| b.cmp(a));

    let m = inst.machines();
    let mut loads: Vec<Time> = vec![0; m];
    let mut assignments = vec![
        Assignment {
            machine: 0,
            start: 0
        };
        inst.num_jobs()
    ];
    for (_, c) in classes {
        let machine = (0..m).min_by_key(|&q| loads[q]).expect("m ≥ 1");
        let mut start = loads[machine];
        for &j in inst.class_jobs(c) {
            assignments[j] = Assignment { machine, start };
            start += inst.size(j);
        }
        loads[machine] = start;
    }
    let schedule = Schedule::new(assignments);
    let horizon = schedule.makespan(inst);
    ApproxResult {
        schedule,
        lower_bound: t,
        horizon,
    }
}

/// Busy intervals per machine/class used by the insertion baselines.
#[derive(Debug, Default, Clone)]
struct Busy {
    /// Sorted, disjoint `[start, end)` intervals.
    iv: Vec<(Time, Time)>,
}

impl Busy {
    fn insert(&mut self, s: Time, e: Time) {
        if s == e {
            return;
        }
        let pos = self.iv.partition_point(|&(a, _)| a < s);
        self.iv.insert(pos, (s, e));
    }

    /// Earliest `t ≥ from` such that `[t, t+p)` avoids all intervals.
    #[cfg(test)]
    fn earliest_fit(&self, from: Time, p: Time) -> Time {
        let mut t = from;
        for &(s, e) in &self.iv {
            if t + p <= s {
                break;
            }
            if e > t {
                t = e;
            }
        }
        t
    }
}

/// Earliest `t ≥ from` such that `[t, t+p)` avoids every interval of both
/// lists. Equivalent to concatenating, sorting, and scanning (the scan only
/// needs intervals in ascending order, and ties commute through the
/// `max`-accumulation) — but walks the two already-sorted lists with two
/// cursors instead: no allocation, no sort. This sits in the innermost
/// (job × machine) loop of [`hebrard_greedy`], where the merge-and-sort
/// formulation dominated the whole portfolio's runtime.
fn earliest_fit_merged(a: &Busy, b: &Busy, from: Time, p: Time) -> Time {
    let (mut i, mut j) = (0, 0);
    let mut t = from;
    loop {
        let next = match (a.iv.get(i), b.iv.get(j)) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    i += 1;
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => return t,
        };
        let (s, e) = next;
        if t + p <= s {
            return t;
        }
        if e > t {
            t = e;
        }
    }
}

/// Hebrard-style greedy insertion: repeatedly pick the unscheduled job with
/// the largest `p_j + p(remaining jobs of its class)` and insert it at the
/// earliest feasible start over all machines (ties: lower machine index).
pub fn hebrard_greedy(inst: &Instance) -> ApproxResult {
    if let Some(r) = trivial(inst) {
        return r;
    }
    let t = lower_bound(inst);
    let m = inst.machines();
    let mut machine_busy = vec![Busy::default(); m];
    let mut class_busy = vec![Busy::default(); inst.num_classes()];
    let mut remaining: Vec<Time> = (0..inst.num_classes())
        .map(|c| inst.class_load(c))
        .collect();

    // Priority order: p_j + remaining class load, recomputed lazily — since
    // p_j + remaining only decreases as the class drains, a one-shot sort by
    // (class load + size, size) matches the intent closely and is O(n log n).
    let mut order: Vec<JobId> = (0..inst.num_jobs()).collect();
    order.sort_unstable_by_key(|&j| {
        let c = inst.class_of(j);
        std::cmp::Reverse((inst.class_load(c) + inst.size(j), inst.size(j)))
    });

    let mut assignments = vec![
        Assignment {
            machine: 0,
            start: 0
        };
        inst.num_jobs()
    ];
    for j in order {
        let c = inst.class_of(j);
        let p = inst.size(j);
        let mut best: Option<(Time, usize)> = None;
        for (q, busy) in machine_busy.iter().enumerate() {
            let s = earliest_fit_merged(busy, &class_busy[c], 0, p);
            if best.is_none_or(|(bs, _)| s < bs) {
                best = Some((s, q));
            }
        }
        let (s, q) = best.expect("m ≥ 1");
        assignments[j] = Assignment {
            machine: q,
            start: s,
        };
        machine_busy[q].insert(s, s + p);
        class_busy[c].insert(s, s + p);
        remaining[c] -= p;
    }
    let schedule = Schedule::new(assignments);
    let horizon = schedule.makespan(inst);
    ApproxResult {
        schedule,
        lower_bound: t,
        horizon,
    }
}

/// Resource-aware LPT list scheduling: event-driven; whenever a machine
/// becomes idle, start the largest unscheduled job whose class is not
/// currently running; if none is available the machine idles until the next
/// class completion.
pub fn list_scheduler(inst: &Instance) -> ApproxResult {
    if let Some(r) = trivial(inst) {
        return r;
    }
    let t = lower_bound(inst);
    let m = inst.machines();
    let mut machine_free: Vec<Time> = vec![0; m];
    let mut class_free: Vec<Time> = vec![0; inst.num_classes()];
    // Per class: jobs sorted ascending by size (drained from the back,
    // largest first) plus the remaining class load for tie-breaking.
    let mut per_class: Vec<Vec<JobId>> = (0..inst.num_classes())
        .map(|c| {
            let mut v = inst.class_jobs(c).to_vec();
            v.sort_unstable_by_key(|&j| inst.size(j));
            v
        })
        .collect();
    let mut remaining: Vec<Time> = (0..inst.num_classes())
        .map(|c| inst.class_load(c))
        .collect();

    let mut assignments = vec![
        Assignment {
            machine: 0,
            start: 0
        };
        inst.num_jobs()
    ];
    let mut done = 0usize;
    while done < inst.num_jobs() {
        // Pick the machine that frees up first.
        let q = (0..m).min_by_key(|&q| machine_free[q]).expect("m ≥ 1");
        let now = machine_free[q];
        // Largest available job; ties broken towards the class with the most
        // remaining load (this is what interleaves the conflict classes).
        let pick = (0..inst.num_classes())
            .filter(|&c| class_free[c] <= now && !per_class[c].is_empty())
            .max_by_key(|&c| {
                (
                    inst.size(*per_class[c].last().expect("non-empty")),
                    remaining[c],
                )
            });
        match pick {
            Some(c) => {
                let j = per_class[c].pop().expect("non-empty checked");
                let p = inst.size(j);
                assignments[j] = Assignment {
                    machine: q,
                    start: now,
                };
                done += 1;
                remaining[c] -= p;
                machine_free[q] = now + p;
                class_free[c] = class_free[c].max(now + p);
            }
            None => {
                // Idle until the earliest class completion after `now`.
                let next = (0..inst.num_classes())
                    .filter(|&c| !per_class[c].is_empty())
                    .map(|c| class_free[c])
                    .filter(|&f| f > now)
                    .min()
                    .expect("some blocked class must free up");
                machine_free[q] = next;
            }
        }
    }
    let schedule = Schedule::new(assignments);
    let horizon = schedule.makespan(inst);
    ApproxResult {
        schedule,
        lower_bound: t,
        horizon,
    }
}

/// The *naive* list scheduler: identical to [`list_scheduler`] but breaking
/// ties by job id instead of remaining class load. Kept as an ablation (E9):
/// on the adversarial `m+1`-unit-class family the naive rule starves the
/// last class and degrades from ~1.0 to the full `2m/(m+1)` ratio — the
/// interleaving tie-break is load-bearing.
pub fn list_scheduler_naive(inst: &Instance) -> ApproxResult {
    if let Some(r) = trivial(inst) {
        return r;
    }
    let t = lower_bound(inst);
    let m = inst.machines();
    let mut machine_free: Vec<Time> = vec![0; m];
    let mut class_free: Vec<Time> = vec![0; inst.num_classes()];
    let mut queue: Vec<JobId> = (0..inst.num_jobs()).collect();
    queue.sort_unstable_by_key(|&j| std::cmp::Reverse(inst.size(j)));

    let mut assignments = vec![
        Assignment {
            machine: 0,
            start: 0
        };
        inst.num_jobs()
    ];
    let mut scheduled = vec![false; inst.num_jobs()];
    let mut done = 0usize;
    while done < inst.num_jobs() {
        let q = (0..m).min_by_key(|&q| machine_free[q]).expect("m ≥ 1");
        let now = machine_free[q];
        let pick = queue
            .iter()
            .copied()
            .find(|&j| !scheduled[j] && class_free[inst.class_of(j)] <= now);
        match pick {
            Some(j) => {
                let c = inst.class_of(j);
                let p = inst.size(j);
                assignments[j] = Assignment {
                    machine: q,
                    start: now,
                };
                scheduled[j] = true;
                done += 1;
                machine_free[q] = now + p;
                class_free[c] = class_free[c].max(now + p);
            }
            None => {
                let next = (0..inst.num_jobs())
                    .filter(|&j| !scheduled[j])
                    .map(|j| class_free[inst.class_of(j)])
                    .filter(|&f| f > now)
                    .min()
                    .expect("some blocked class must free up");
                machine_free[q] = next;
            }
        }
    }
    let schedule = Schedule::new(assignments);
    let horizon = schedule.makespan(inst);
    ApproxResult {
        schedule,
        lower_bound: t,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrs_core::validate;

    fn check_all(inst: &Instance) -> [ApproxResult; 3] {
        let rs = [merged_lpt(inst), hebrard_greedy(inst), list_scheduler(inst)];
        for r in &rs {
            assert_eq!(validate(inst, &r.schedule), Ok(()), "invalid schedule");
        }
        rs
    }

    #[test]
    fn merged_lpt_keeps_classes_contiguous() {
        let inst = Instance::from_classes(2, &[vec![4, 3], vec![5], vec![2, 2]]).unwrap();
        let r = merged_lpt(&inst);
        assert_eq!(validate(&inst, &r.schedule), Ok(()));
        // Each class on a single machine.
        for c in 0..inst.num_classes() {
            let machines: Vec<_> = inst
                .class_jobs(c)
                .iter()
                .map(|&j| r.schedule.assignment(j).machine)
                .collect();
            assert!(machines.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn all_baselines_valid_on_shapes() {
        let shapes: Vec<(usize, Vec<Vec<Time>>)> = vec![
            (2, vec![vec![10], vec![9, 1], vec![8, 2], vec![1, 1, 1]]),
            (
                3,
                vec![vec![7, 7], vec![14], vec![13, 1], vec![6, 6], vec![2; 10]],
            ),
            (
                4,
                vec![vec![3; 9], vec![5, 5, 5], vec![20], vec![11, 9], vec![1]],
            ),
            (2, vec![vec![1], vec![1], vec![1]]),
        ];
        for (m, classes) in shapes {
            let inst = Instance::from_classes(m, &classes).unwrap();
            check_all(&inst);
        }
    }

    #[test]
    fn adversarial_family_hits_two_m_over_m_plus_one() {
        // m+1 unit classes of load L on m machines: merged LPT stacks two
        // classes (makespan 2L) while OPT interleaves to (m+1)L/m — the exact
        // 2m/(m+1) gap the paper cites for the prior algorithms (1.6 at m=4).
        let inst = msrs_gen::adversarial_merged_lpt(4, 40);
        let [lpt, _heb, list] = check_all(&inst);
        let lb = lower_bound(&inst) as f64;
        let ratio = lpt.makespan(&inst) as f64 / lb;
        assert!(
            (1.58..=1.62).contains(&ratio),
            "merged LPT ratio {ratio} ≠ 2m/(m+1)"
        );
        assert!(
            list.makespan(&inst) as f64 / lb <= 1.2,
            "list scheduling interleaves unit jobs"
        );
    }

    #[test]
    fn list_scheduler_idles_for_class_conflicts() {
        // Two machines, one class of two long jobs: they must serialize.
        let inst = Instance::from_classes(2, &[vec![5, 5], vec![1]]).unwrap();
        let r = list_scheduler(&inst);
        assert_eq!(validate(&inst, &r.schedule), Ok(()));
        assert_eq!(r.makespan(&inst), 10);
    }

    #[test]
    fn hebrard_greedy_fills_gaps() {
        let inst = Instance::from_classes(2, &[vec![6, 6], vec![3, 3], vec![2]]).unwrap();
        let r = hebrard_greedy(&inst);
        assert_eq!(validate(&inst, &r.schedule), Ok(()));
        // Lower bound: ⌈20/2⌉ = 10; class 0 serializes to 12.
        assert!(r.makespan(&inst) <= 15);
    }

    #[test]
    fn naive_list_scheduler_starves_on_adversarial_family() {
        // The ablation story: job-id tie-breaking leaves the last class to
        // run serially, realizing 2m/(m+1), while the remaining-load rule
        // interleaves to ~1.0.
        let inst = msrs_gen::adversarial_merged_lpt(4, 40);
        let naive = list_scheduler_naive(&inst);
        let smart = list_scheduler(&inst);
        assert_eq!(validate(&inst, &naive.schedule), Ok(()));
        let lb = lower_bound(&inst) as f64;
        let naive_ratio = naive.makespan(&inst) as f64 / lb;
        let smart_ratio = smart.makespan(&inst) as f64 / lb;
        assert!(naive_ratio >= 1.55, "naive should starve: {naive_ratio}");
        assert!(smart_ratio <= 1.1, "smart should interleave: {smart_ratio}");
    }

    #[test]
    fn busy_earliest_fit() {
        let mut b = Busy::default();
        b.insert(2, 5);
        b.insert(8, 10);
        assert_eq!(b.earliest_fit(0, 2), 0);
        assert_eq!(b.earliest_fit(0, 3), 5);
        assert_eq!(b.earliest_fit(3, 2), 5);
        assert_eq!(b.earliest_fit(0, 4), 10);
        assert_eq!(b.earliest_fit(11, 7), 11);
    }

    #[test]
    fn merged_fit_matches_the_sort_based_reference() {
        // Pseudo-random interval pairs: the two-cursor merge walk must
        // agree with "concatenate, sort, scan" everywhere (including
        // touching/duplicate intervals and equal starts).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move |m: u64| -> u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..500 {
            let mut a = Busy::default();
            let mut b = Busy::default();
            let mut cur = 0;
            for _ in 0..next(6) {
                let s = cur + next(4);
                let e = s + 1 + next(5);
                a.insert(s, e);
                cur = e + next(3);
            }
            cur = 0;
            for _ in 0..next(6) {
                let s = cur + next(4);
                let e = s + 1 + next(5);
                b.insert(s, e);
                cur = e + next(3);
            }
            let mut iv = a.iv.clone();
            iv.extend_from_slice(&b.iv);
            iv.sort_unstable();
            let reference = Busy { iv };
            for p in 1..6 {
                for from in 0..4 {
                    assert_eq!(
                        earliest_fit_merged(&a, &b, from, p),
                        reference.earliest_fit(from, p),
                        "a={:?} b={:?} from={from} p={p}",
                        a.iv,
                        b.iv
                    );
                }
            }
        }
    }
}
