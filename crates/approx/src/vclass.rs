//! Virtual classes: the unit `Algorithm_3/2` and `Algorithm_no_huge` operate
//! on.
//!
//! A [`VClass`] is a set of jobs of one class (usually the whole class; for
//! the split class of Steps 5/10 only its counterpart part `c''`) together
//! with its Step 1 simplification: the category against the scaled bound `T`
//! and — where the algorithms need it — the two-part partition of Lemma 10 /
//! Lemma 11 / the `C_B` rule (`ĉ` = the big job, `č` = the rest).

use msrs_core::{frac, Block, Instance, JobId, Time};

use crate::partition;

/// Category of a virtual class against the scaled bound `T` (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cat {
    /// Contains a job `> (3/4)T` (`C_H`).
    Huge,
    /// Contains a big job (`∈ (T/2, (3/4)T]`) and has total `≥ (3/4)T`
    /// (`C_B ∩ C_{≥3/4}`).
    BigGe34,
    /// Total `≥ (3/4)T`, no big or huge job (`C_{≥3/4} \ (C_H ∪ C_B)`).
    Ge34,
    /// Contains a big job, total `∈ (T/2, (3/4)T)` (`C_B ∩ C_{(1/2,3/4)}`).
    BigMid,
    /// Total `∈ (T/2, (3/4)T)`, no big job (`C_{(1/2,3/4)} \ C_B`).
    Mid,
    /// Total `≤ T/2`.
    Small,
}

/// A set of jobs of a single class plus its Step 1 simplification.
#[derive(Debug, Clone)]
pub(crate) struct VClass {
    /// The jobs (all of one class).
    pub jobs: Vec<JobId>,
    /// Total processing time.
    pub total: Time,
    /// Category against `T`.
    pub cat: Cat,
    /// Larger part `ĉ` of the partition (empty unless partitioned).
    pub hat: Vec<JobId>,
    /// `p(ĉ)`.
    pub p_hat: Time,
    /// Smaller part `č` (may be empty even for partitioned classes, see
    /// [`partition`]).
    pub check: Vec<JobId>,
    /// `p(č)`.
    pub p_check: Time,
}

impl VClass {
    /// Builds the virtual class for `jobs` (all of one class) against `t`.
    pub fn new(inst: &Instance, jobs: Vec<JobId>, t: Time) -> Self {
        debug_assert!(!jobs.is_empty());
        let total: Time = jobs.iter().map(|&j| inst.size(j)).sum();
        let max_job = jobs.iter().map(|&j| inst.size(j)).max().unwrap_or(0);
        let (cat, split) = if frac::gt(max_job, 3, 4, t) {
            (Cat::Huge, None)
        } else if frac::ge(total, 3, 4, t) {
            let split = partition::lemma10(inst, &jobs, t);
            if frac::gt(max_job, 1, 2, t) {
                (Cat::BigGe34, Some(split))
            } else {
                (Cat::Ge34, Some(split))
            }
        } else if frac::gt(total, 1, 2, t) {
            if frac::gt(max_job, 1, 2, t) {
                // C_B rule: ĉ = the big job, č = the rest.
                let big = *jobs
                    .iter()
                    .max_by_key(|&&j| inst.size(j))
                    .expect("non-empty class");
                let rest: Vec<JobId> = jobs.iter().copied().filter(|&j| j != big).collect();
                let p_rest = total - inst.size(big);
                (
                    Cat::BigMid,
                    Some(partition::Split {
                        hat: vec![big],
                        p_hat: inst.size(big),
                        check: rest,
                        p_check: p_rest,
                    }),
                )
            } else {
                (Cat::Mid, Some(partition::lemma11(inst, &jobs, t)))
            }
        } else {
            (Cat::Small, None)
        };
        match split {
            Some(s) => VClass {
                jobs,
                total,
                cat,
                hat: s.hat,
                p_hat: s.p_hat,
                check: s.check,
                p_check: s.p_check,
            },
            None => VClass {
                jobs,
                total,
                cat,
                hat: Vec::new(),
                p_hat: 0,
                check: Vec::new(),
                p_check: 0,
            },
        }
    }

    /// One block holding all jobs (the class scheduled consecutively).
    pub fn block_all(&self, inst: &Instance) -> Block {
        Block::from_jobs(inst, self.jobs.clone())
    }

    /// The `ĉ` part as a block.
    pub fn block_hat(&self, inst: &Instance) -> Block {
        debug_assert!(
            !self.hat.is_empty(),
            "hat requested for unpartitioned class"
        );
        Block::from_jobs(inst, self.hat.clone())
    }

    /// The `č` part as a block, if non-empty.
    pub fn block_check(&self, inst: &Instance) -> Option<Block> {
        if self.check.is_empty() {
            None
        } else {
            Some(Block::from_jobs(inst, self.check.clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrs_core::Instance;

    fn vc(sizes: &[Time], t: Time) -> VClass {
        let inst = Instance::from_classes(1, &[sizes.to_vec()]).unwrap();
        VClass::new(&inst, (0..sizes.len()).collect(), t)
    }

    #[test]
    fn categories() {
        // t = 12: huge > 9, big ∈ (6,9], mid totals (6,9), heavy ≥ 9.
        assert_eq!(vc(&[10], 12).cat, Cat::Huge);
        assert_eq!(vc(&[7, 3], 12).cat, Cat::BigGe34); // total 10 ≥ 9
        assert_eq!(vc(&[7], 12).cat, Cat::BigMid); // total 7 ∈ (6,9)
        assert_eq!(vc(&[5, 5], 12).cat, Cat::Ge34); // total 10 ≥ 9, max ≤ 6
        assert_eq!(vc(&[4, 4], 12).cat, Cat::Mid); // total 8 ∈ (6,9)
        assert_eq!(vc(&[3, 3], 12).cat, Cat::Small); // total 6 ≤ 6
    }

    #[test]
    fn big_mid_partition_isolates_big_job() {
        let v = vc(&[7, 1], 12);
        assert_eq!(v.cat, Cat::BigMid);
        assert_eq!(v.p_hat, 7);
        assert_eq!(v.p_check, 1);
    }

    #[test]
    fn ge34_partition_has_quarter_part() {
        let v = vc(&[5, 5], 12);
        // Lemma 10 with max ≤ T/2: one part in (3, 6].
        let q = |p: Time| p > 3 && p <= 6;
        assert!(q(v.p_hat) || q(v.p_check));
        assert!(4 * v.p_hat <= 3 * 12);
        assert!(2 * v.p_check <= 12);
    }

    #[test]
    fn mid_partition_bounds() {
        let v = vc(&[4, 4], 12);
        assert!(2 * v.p_hat <= 12);
        assert!(4 * v.p_hat > 12);
        assert!(v.p_check <= v.p_hat);
    }

    #[test]
    fn small_and_huge_have_no_parts() {
        assert!(vc(&[3, 3], 12).hat.is_empty());
        assert!(vc(&[10], 12).hat.is_empty());
    }

    #[test]
    fn parts_cover_jobs() {
        let v = vc(&[5, 3, 2], 12); // total 10 ≥ 9, max 5 ≤ 6 → Ge34
        assert_eq!(v.cat, Cat::Ge34);
        let mut ids: Vec<_> = v.hat.iter().chain(v.check.iter()).copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(v.p_hat + v.p_check, v.total);
    }
}
