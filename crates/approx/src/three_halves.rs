//! `Algorithm_3/2` — the 1.5-approximation for general instances (paper
//! §3.2, Theorem 7).
//!
//! Outline (Steps 1–10 of the paper):
//!
//! 1. classes are simplified into [`VClass`]es (huge classes glued into one
//!    block; heavier classes pre-partitioned by Lemmas 10/11 or the `C_B`
//!    rule);
//! 2. every huge-job class opens its own machine (`M_H`); machines reaching
//!    load exactly `T` are closed immediately;
//! 3. classes `≤ T/2` greedily fill the open `M_H` machines;
//! 4. pairs of open `M_H` machines absorb the `(T/2, (3/4)T)` non-`C_B`
//!    classes (one part top-aligned on each);
//! 5. with a single open `M_H` machine left, a `(T/4, T/2]` part of some
//!    non-`C_B` class tops it off, `Algorithm_no_huge` schedules the rest,
//!    and a final *rotation* of the machine removes the intra-class conflict;
//! 6. an open `M_H` machine plus a fresh machine absorb one `C_{≥3/4}` class
//!    and one `C_B ∩ C_{(1/2,3/4)}` class;
//! 7. leftover `C_B ∩ C_{(1/2,3/4)}` classes get individual machines;
//! 8. pairs of open `M_H` machines plus one fresh machine absorb two
//!    `C_{≥3/4}` classes;
//! 9. with two or more open `M_H` machines (or only `C_B` classes left), each
//!    remaining class gets an individual machine;
//! 10. otherwise the Step 5 move finishes the last open `M_H` machine.
//!
//! Steps 6 and 7 take the `∩ C_B` reading of the class set (see DESIGN.md:
//! the paper's `\` is inconsistent with its own claims and proofs).

use std::collections::VecDeque;

use msrs_core::{frac, Block, Instance, MachineId, ScheduleBuilder, Time};

use crate::common::{trivial, ApproxResult};
use crate::no_huge::no_huge;
use crate::tbound::lemma9_t;
use crate::trace::StepTrace;
use crate::vclass::{Cat, VClass};

/// The per-category worklists of `Algorithm_3/2`.
#[derive(Debug, Default)]
struct Cats {
    big_ge34: Vec<VClass>,
    ge34: Vec<VClass>,
    big_mid: Vec<VClass>,
    mid: Vec<VClass>,
    small: Vec<VClass>,
}

impl Cats {
    fn residual(&mut self) -> Vec<VClass> {
        let mut out = Vec::new();
        out.append(&mut self.big_ge34);
        out.append(&mut self.ge34);
        out.append(&mut self.big_mid);
        out.append(&mut self.mid);
        out.append(&mut self.small);
        out
    }

    fn is_empty(&self) -> bool {
        self.big_ge34.is_empty()
            && self.ge34.is_empty()
            && self.big_mid.is_empty()
            && self.mid.is_empty()
            && self.small.is_empty()
    }
}

fn take(pool: &mut VecDeque<MachineId>, step: &str) -> MachineId {
    pool.pop_front()
        .unwrap_or_else(|| panic!("invariant violation: no unused machine available in {step}"))
}

fn finalize(b: ScheduleBuilder<'_>, t: Time, h: Time, inst: &Instance) -> ApproxResult {
    let schedule = b.finalize().expect("Algorithm_3/2 places every job");
    debug_assert!(schedule.makespan(inst) <= h);
    ApproxResult {
        schedule,
        lower_bound: t,
        horizon: h,
    }
}

/// Runs `Algorithm_3/2` on `inst`: a valid schedule with makespan at most
/// `⌊(3/2)·T⌋ ≤ (3/2)·OPT`, in `O(n + m log m)` time.
pub fn three_halves(inst: &Instance) -> ApproxResult {
    three_halves_traced(inst).0
}

/// As [`three_halves`], additionally returning the [`StepTrace`] of which
/// algorithm steps fired (the E6 "figure anatomy" telemetry).
pub fn three_halves_traced(inst: &Instance) -> (ApproxResult, StepTrace) {
    let mut trace = StepTrace::default();
    let r = run(inst, &mut trace);
    (r, trace)
}

fn run(inst: &Instance, trace: &mut StepTrace) -> ApproxResult {
    if let Some(r) = trivial(inst) {
        trace.trivial = true;
        return r;
    }
    let t = lemma9_t(inst);
    debug_assert!(t > 0);
    let h = frac::floor_mul(3, 2, t);
    let mut b = ScheduleBuilder::new(inst, h);
    let mut pool: VecDeque<MachineId> = (0..inst.machines()).collect();

    // Step 1: simplify all classes into virtual classes. Zero-load classes
    // are placed immediately (they occupy no time and are outside the load
    // accounting).
    let mut huge: Vec<VClass> = Vec::new();
    let mut cats = Cats::default();
    for c in inst.nonempty_classes() {
        if inst.class_load(c) == 0 {
            b.push_bottom(0, Block::whole_class(inst, c));
            continue;
        }
        let vc = VClass::new(inst, inst.class_jobs(c).to_vec(), t);
        match vc.cat {
            Cat::Huge => huge.push(vc),
            Cat::BigGe34 => cats.big_ge34.push(vc),
            Cat::Ge34 => cats.ge34.push(vc),
            Cat::BigMid => cats.big_mid.push(vc),
            Cat::Mid => cats.mid.push(vc),
            Cat::Small => cats.small.push(vc),
        }
    }

    // Step 2: open one machine per huge class; close those filled to exactly T.
    let mut mh: VecDeque<MachineId> = VecDeque::new();
    for hc in huge {
        trace.step2_huge_machines += 1;
        let m = take(&mut pool, "Step 2 (|C_H| ≤ m by Lemma 9)");
        b.push_bottom(m, hc.block_all(inst));
        if b.load(m) < t {
            mh.push_back(m);
        }
    }

    // Step 3: greedily add classes ≤ T/2 to the open M_H machines.
    while !cats.small.is_empty() {
        let Some(&m0) = mh.front() else { break };
        if b.load(m0) >= t {
            mh.pop_front();
            continue;
        }
        let vc = cats.small.pop().expect("non-empty checked");
        b.push_bottom(m0, vc.block_all(inst));
        trace.step3_fills += 1;
        if b.load(m0) >= t {
            mh.pop_front();
        }
    }
    if mh.is_empty() {
        no_huge(inst, &mut b, &mut pool, t, cats.residual(), trace);
        return finalize(b, t, h, inst);
    }
    debug_assert!(cats.small.is_empty());

    // Step 4: two open M_H machines absorb one (T/2, 3/4T) non-C_B class.
    while mh.len() >= 2 && !cats.mid.is_empty() {
        trace.step4 += 1;
        let c = cats.mid.pop().expect("non-empty checked");
        let m1 = mh.pop_front().expect("len checked");
        let m2 = mh.pop_front().expect("len checked");
        // Shift m2's content up so its last job ends at H, then č starts at 0.
        b.raise_to_top(m2);
        b.push_top(m1, Block::from_jobs(inst, c.hat));
        if !c.check.is_empty() {
            b.push_bottom(m2, Block::from_jobs(inst, c.check));
        }
    }
    if mh.is_empty() {
        no_huge(inst, &mut b, &mut pool, t, cats.residual(), trace);
        return finalize(b, t, h, inst);
    }

    // Step 5: a single open M_H machine finishes via the rotation move.
    if mh.len() == 1 {
        let m0 = mh[0];
        let r = rotate_and_finish(inst, b, pool, t, h, m0, cats, trace);
        trace.step5_rotation = trace.rotation_done;
        trace.step5_cb_fallback = trace.cb_fallback_done;
        return r;
    }

    // Step 6: one open M_H machine + one fresh machine absorb a C_{≥3/4}
    // class and a C_B ∩ C_{(1/2,3/4)} class.
    while !mh.is_empty() && !cats.big_mid.is_empty() {
        let Some(c) = cats.big_ge34.pop().or_else(|| cats.ge34.pop()) else {
            break;
        };
        trace.step6 += 1;
        let bcl = cats.big_mid.pop().expect("non-empty checked");
        let m1 = mh.pop_front().expect("non-empty checked");
        let m2 = take(&mut pool, "Step 6");
        if !c.check.is_empty() {
            b.push_top(m1, Block::from_jobs(inst, c.check));
        }
        b.push_bottom(m2, Block::from_jobs(inst, c.hat));
        b.push_top(m2, bcl.block_all(inst));
    }
    if mh.is_empty() {
        if !cats.is_empty() {
            no_huge(inst, &mut b, &mut pool, t, cats.residual(), trace);
        }
        return finalize(b, t, h, inst);
    }

    // Step 7: leftover C_B ∩ C_{(1/2,3/4)} classes get individual machines
    // (only possible when no C_{≥3/4} classes remain).
    if !cats.big_mid.is_empty() {
        debug_assert!(cats.big_ge34.is_empty() && cats.ge34.is_empty());
        for c in cats.big_mid.drain(..) {
            trace.step7_classes += 1;
            let m = take(&mut pool, "Step 7 (|M̄_u| ≥ |C̄_B|)");
            b.push_bottom(m, c.block_all(inst));
        }
        debug_assert!(cats.is_empty());
        return finalize(b, t, h, inst);
    }

    // Step 8: two open M_H machines + one fresh machine absorb two C_{≥3/4}
    // classes (preferring the C_B ones).
    while mh.len() >= 2 && cats.big_ge34.len() + cats.ge34.len() >= 2 {
        trace.step8 += 1;
        let c1 = cats
            .big_ge34
            .pop()
            .or_else(|| cats.ge34.pop())
            .expect("count checked");
        let c2 = cats
            .big_ge34
            .pop()
            .or_else(|| cats.ge34.pop())
            .expect("count checked");
        let m1 = mh.pop_front().expect("len checked");
        let m2 = mh.pop_front().expect("len checked");
        let m3 = take(&mut pool, "Step 8");
        b.raise_to_top(m2);
        if !c1.check.is_empty() {
            b.push_top(m1, Block::from_jobs(inst, c1.check.clone()));
        }
        if !c2.check.is_empty() {
            b.push_bottom(m2, Block::from_jobs(inst, c2.check.clone()));
        }
        b.push_bottom(m3, Block::from_jobs(inst, c1.hat));
        b.push_top(m3, Block::from_jobs(inst, c2.hat));
    }
    if mh.is_empty() {
        if !cats.is_empty() {
            no_huge(inst, &mut b, &mut pool, t, cats.residual(), trace);
        }
        return finalize(b, t, h, inst);
    }

    // Step 9: with ≥ 2 open M_H machines at most one class remains; and if
    // only C_B classes remain they fit on individual machines either way.
    if mh.len() >= 2 || cats.ge34.is_empty() {
        debug_assert!(
            mh.len() < 2 || cats.big_ge34.len() + cats.ge34.len() <= 1,
            "Step 8 leaves at most one class when two M_H machines remain"
        );
        for c in cats.big_ge34.drain(..).chain(cats.ge34.drain(..)) {
            trace.step9_classes += 1;
            let m = take(&mut pool, "Step 9");
            b.push_bottom(m, c.block_all(inst));
        }
        debug_assert!(cats.is_empty());
        return finalize(b, t, h, inst);
    }

    // Step 10: exactly one open M_H machine and a non-C_B class ≥ (3/4)T
    // remain — same rotation move as Step 5.
    let m0 = mh[0];
    let r = rotate_and_finish(inst, b, pool, t, h, m0, cats, trace);
    trace.step10_rotation = trace.rotation_done;
    r
}

/// Steps 5/10: pick a non-`C_B` class `c`, place its `(T/4, T/2]` part `c'`
/// on the last open `M_H` machine `m0`, schedule everything else (including
/// the counterpart `c''`) with `Algorithm_no_huge`, then *rotate* `m0` so
/// that `c'` avoids the time window of `c''`.
#[allow(clippy::too_many_arguments)]
fn rotate_and_finish<'a>(
    inst: &'a Instance,
    mut b: ScheduleBuilder<'a>,
    mut pool: VecDeque<MachineId>,
    t: Time,
    h: Time,
    m0: MachineId,
    mut cats: Cats,
    trace: &mut StepTrace,
) -> ApproxResult {
    let picked = cats.mid.pop().or_else(|| cats.ge34.pop());
    let Some(c) = picked else {
        // All residual classes contain a big job: one machine each suffices
        // (|M̄_u| ≥ |C̄_B| by the invariant).
        trace.cb_fallback_done = true;
        for c in cats.big_mid.drain(..).chain(cats.big_ge34.drain(..)) {
            let m = take(&mut pool, "Step 5/10 (C_B fallback)");
            b.push_bottom(m, c.block_all(inst));
        }
        debug_assert!(cats.is_empty());
        return finalize(b, t, h, inst);
    };
    trace.rotation_done = true;

    // c' ∈ (T/4, T/2] exists by Lemma 10 (max job ≤ T/2) resp. Lemma 11.
    let (cp, cp_p, cpp) = if frac::gt(c.p_hat, 1, 4, t) && frac::le(c.p_hat, 1, 2, t) {
        (c.hat, c.p_hat, c.check)
    } else {
        (c.check.clone(), c.p_check, c.hat)
    };
    assert!(
        frac::gt(cp_p, 1, 4, t) && frac::le(cp_p, 1, 2, t),
        "Lemma 10/11 quarter-part property violated"
    );
    debug_assert!(!cpp.is_empty(), "counterpart part c'' is empty");
    let cp_first = cp[0];
    let cpp_first = cpp[0];
    b.push_bottom(m0, Block::from_jobs(inst, cp));

    // Schedule the residual instance including c'' with Algorithm_no_huge.
    let cpp_vc = VClass::new(inst, cpp, t);
    debug_assert!(
        matches!(cpp_vc.cat, Cat::Mid | Cat::Small),
        "c'' must be lighter than (3/4)T and contain no big job"
    );
    let mut residual = cats.residual();
    residual.push(cpp_vc);
    no_huge(inst, &mut b, &mut pool, t, residual, trace);

    // Rotation: c'' sits at [s, e) on some other machine; place c' at the
    // bottom ([0, p(c'))) if s ≥ p(c'), else top-aligned ([H − p(c'), H)).
    // One of the two always works since p(c) + p(c') ≤ T + T/2 ≤ H.
    let (_, s, e) = b
        .find_block_by_first_job(cpp_first)
        .expect("c'' is placed as a single block by Algorithm_no_huge");
    let idx = b
        .find_bottom_block(m0, cp_first)
        .expect("c' was pushed on m0's bottom stack");
    if s >= cp_p {
        b.rotate_bottom_block_to_front(m0, idx);
    } else {
        debug_assert!(
            e + cp_p <= h,
            "rotation impossible: c''=[{s},{e}) and p(c')={cp_p} with H={h}"
        );
        b.rotate_bottom_block_to_top(m0, idx);
    }
    finalize(b, t, h, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrs_core::validate;

    fn check(inst: &Instance) -> ApproxResult {
        let r = three_halves(inst);
        assert_eq!(validate(inst, &r.schedule), Ok(()), "invalid schedule");
        let cmax = r.makespan(inst);
        assert!(
            cmax <= frac::floor_mul(3, 2, r.lower_bound).max(r.lower_bound),
            "makespan {cmax} exceeds 3/2·T (T={})",
            r.lower_bound
        );
        r
    }

    #[test]
    fn no_huge_jobs_delegates() {
        let inst =
            Instance::from_classes(2, &[vec![4, 4], vec![4, 4], vec![4, 4], vec![3]]).unwrap();
        check(&inst);
    }

    #[test]
    fn single_huge_class() {
        // One class with a huge job, fillers: T via Lemma 9.
        let inst = Instance::from_classes(2, &[vec![10], vec![3, 3], vec![3, 3]]).unwrap();
        check(&inst);
    }

    #[test]
    fn step3_fills_huge_machines() {
        // Huge machine at load 10/12; smalls of ≤ 6 fill it past T.
        let inst = Instance::from_classes(2, &[vec![10], vec![5], vec![4], vec![3]]).unwrap();
        check(&inst);
    }

    #[test]
    fn step4_two_huge_one_mid() {
        // Two huge classes and one mid (non-C_B) class.
        // sizes: 10, 10, {4,4}: T: p(J)=28, m=3 → ⌈28/3⌉=10; max class 10;
        // p̃_3+p̃_4 = 8+4? sorted: 10,10,4,4 → p̃_3+p̃_4 = 8. base = 10.
        // At T=10: huge > 7.5: both 10s ✓. mid: total 8 ∈ (5, 7.5)? No - 8 ≥ 7.5
        // → heavy-total. Adjust: {3,4} total 7 ∈ (5, 7.5) ✓.
        let inst = Instance::from_classes(3, &[vec![10], vec![10], vec![3, 4]]).unwrap();
        check(&inst);
    }

    #[test]
    fn step5_rotation_path() {
        // One huge class (left open below T) + one non-C_B class > T/2 whose
        // counterpart must be scheduled by no_huge and rotated around.
        // m=2: huge {9} and mid {4,3} with smalls.
        // p(J) = 9+7+2 = 18 → ⌈18/2⌉ = 9; sizes 9,4,3,2: p̃_2+p̃_3 = 7 → T=9.
        // huge > 6.75 ✓. mid total 7 ∈ (4.5, 6.75)? 7 > 6.75 → heavy-total
        // (Ge34). Still exercises Step 5 via ge34 pick.
        let inst = Instance::from_classes(2, &[vec![9], vec![4, 3], vec![2]]).unwrap();
        check(&inst);
    }

    #[test]
    fn step6_7_big_mid_classes() {
        // Huge machine + C_B∩(1/2,3/4) class + heavy class.
        // m=3: {10}, {7,1} (big job 7, total 8 ≥ 7.5 → BigGe34 at T=10),
        // {6} big job, total 6 ∈ (5, 7.5) → BigMid.
        let inst = Instance::from_classes(3, &[vec![10], vec![7, 1], vec![6]]).unwrap();
        check(&inst);
    }

    #[test]
    fn step8_pairs_of_heavy_classes() {
        // Two huge machines + two heavy classes.
        let inst =
            Instance::from_classes(4, &[vec![11], vec![11], vec![5, 4], vec![5, 4], vec![2]])
                .unwrap();
        check(&inst);
    }

    #[test]
    fn step9_individual_machines() {
        // Two huge + one heavy class.
        let inst = Instance::from_classes(3, &[vec![11], vec![11], vec![5, 4]]).unwrap();
        check(&inst);
    }

    #[test]
    fn many_huge_classes() {
        let inst = Instance::from_classes(
            4,
            &[
                vec![9],
                vec![9],
                vec![9],
                vec![9],
                vec![2, 2],
                vec![1, 1, 1],
            ],
        )
        .unwrap();
        check(&inst);
    }

    #[test]
    fn mixed_stress_shapes() {
        let shapes: Vec<(usize, Vec<Vec<Time>>)> = vec![
            (2, vec![vec![10], vec![9, 1], vec![8, 2], vec![1, 1, 1]]),
            (
                3,
                vec![vec![7, 7], vec![14], vec![13, 1], vec![6, 6], vec![2; 10]],
            ),
            (
                4,
                vec![vec![3; 9], vec![5, 5, 5], vec![20], vec![11, 9], vec![1]],
            ),
            (2, vec![vec![1], vec![1], vec![1]]),
            (3, vec![vec![2, 2], vec![2, 2], vec![2, 2], vec![2, 2]]),
            (2, vec![vec![6, 5], vec![4, 4], vec![4, 4]]),
            (2, vec![vec![9, 8], vec![5, 5, 5], vec![2]]),
        ];
        for (m, classes) in shapes {
            let inst = Instance::from_classes(m, &classes).unwrap();
            check(&inst);
        }
    }

    #[test]
    fn zero_size_jobs_tolerated() {
        let inst = Instance::from_classes(2, &[vec![0, 5], vec![5, 0], vec![3, 0, 3]]).unwrap();
        check(&inst);
    }
}
