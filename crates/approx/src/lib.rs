//! # msrs-approx — approximation algorithms for MSRS
//!
//! Implements the two main contributions of Deppert, Jansen, Maack, Pukrop &
//! Rau, *Scheduling with Many Shared Resources* (2023):
//!
//! * [`five_thirds`] — the simple, `O(|I|)` 5/3-approximation (§2, Thm 2);
//! * [`three_halves`] — the involved `O(n + m log m)` 1.5-approximation
//!   (§3, Thm 7), built from the Lemma 9 bound search, the Lemma 10/11 class
//!   partitions, `Algorithm_no_huge`, and the general Steps 1–10 including
//!   the rotation argument;
//!
//! plus the prior-work baselines the paper compares against
//! ([`baselines::merged_lpt`], [`baselines::hebrard_greedy`],
//! [`baselines::list_scheduler`]).
//!
//! Every algorithm returns an [`ApproxResult`] carrying the certified lower
//! bound `T ≤ OPT` and the makespan horizon it guarantees; schedules are
//! plain [`msrs_core::Schedule`]s that can be re-validated exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod common;
mod five_thirds;
mod no_huge;
pub mod partition;
pub mod tbound;
mod three_halves;
pub mod trace;
mod vclass;

pub use common::ApproxResult;
pub use five_thirds::five_thirds;
pub use three_halves::{three_halves, three_halves_traced};
pub use trace::StepTrace;
