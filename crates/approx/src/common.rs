//! Shared plumbing for the approximation algorithms: the result type and the
//! trivial fast paths every algorithm shares (empty instances, all-zero
//! instances, and the `m ≥ |C|` one-machine-per-class case of Note 1).

use msrs_core::{
    bounds::lower_bound, Assignment, Block, Instance, Schedule, ScheduleBuilder, Time,
};

/// Output of an approximation algorithm: the schedule plus the certified
/// lower bound `T` it was built against and the makespan horizon `⌊ρ·T⌋` it
/// guarantees.
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// The produced (valid) schedule.
    pub schedule: Schedule,
    /// The lower bound `T ≤ OPT` the algorithm certified.
    pub lower_bound: Time,
    /// The guaranteed makespan horizon `⌊ρ·T⌋` (every job completes by it).
    pub horizon: Time,
}

impl ApproxResult {
    /// Makespan of the produced schedule.
    pub fn makespan(&self, inst: &Instance) -> Time {
        self.schedule.makespan(inst)
    }

    /// Empirical approximation ratio against the certified lower bound,
    /// `Cmax / T` (an upper bound on the true ratio `Cmax / OPT`).
    pub fn ratio_vs_bound(&self, inst: &Instance) -> f64 {
        if self.lower_bound == 0 {
            return 1.0;
        }
        self.makespan(inst) as f64 / self.lower_bound as f64
    }
}

/// Fast paths shared by all algorithms. Returns `Some` when the instance is
/// degenerate (no jobs / zero load) or when `m ≥ |C|` so one machine per
/// class is optimal (Note 1 of the paper).
pub fn trivial(inst: &Instance) -> Option<ApproxResult> {
    if inst.num_jobs() == 0 {
        return Some(ApproxResult {
            schedule: Schedule::new(Vec::new()),
            lower_bound: 0,
            horizon: 0,
        });
    }
    if inst.total_load() == 0 {
        // Every job has size zero: all at time 0 on machine 0 is valid.
        let assignments = vec![
            Assignment {
                machine: 0,
                start: 0
            };
            inst.num_jobs()
        ];
        return Some(ApproxResult {
            schedule: Schedule::new(assignments),
            lower_bound: 0,
            horizon: 0,
        });
    }
    let k = inst.num_nonempty_classes();
    if inst.machines() >= k {
        // One machine per class: makespan = max_c p(c) = lower bound ⇒ optimal.
        let t = lower_bound(inst);
        let mut b = ScheduleBuilder::new(inst, t);
        for (machine, c) in inst.nonempty_classes().enumerate() {
            b.push_bottom(machine, Block::whole_class(inst, c));
        }
        let schedule = b.finalize().expect("one block per class places all jobs");
        return Some(ApproxResult {
            schedule,
            lower_bound: t,
            horizon: t,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrs_core::validate;

    #[test]
    fn empty_instance_short_circuits() {
        let inst = Instance::new(3, vec![]).unwrap();
        let r = trivial(&inst).unwrap();
        assert_eq!(r.lower_bound, 0);
        assert!(r.schedule.is_empty());
    }

    #[test]
    fn all_zero_loads_short_circuit() {
        let inst = Instance::from_classes(2, &[vec![0, 0], vec![0], vec![0], vec![0]]).unwrap();
        let r = trivial(&inst).unwrap();
        assert_eq!(validate(&inst, &r.schedule), Ok(()));
        assert_eq!(r.makespan(&inst), 0);
    }

    #[test]
    fn per_class_schedule_when_enough_machines() {
        let inst = Instance::from_classes(3, &[vec![4, 2], vec![5]]).unwrap();
        let r = trivial(&inst).unwrap();
        assert_eq!(validate(&inst, &r.schedule), Ok(()));
        // Optimal: max class load.
        assert_eq!(r.makespan(&inst), 6);
        assert_eq!(r.lower_bound, 6);
    }

    #[test]
    fn not_trivial_when_classes_exceed_machines() {
        let inst = Instance::from_classes(2, &[vec![4], vec![5], vec![6]]).unwrap();
        assert!(trivial(&inst).is_none());
    }

    #[test]
    fn ratio_vs_bound_is_one_for_trivial() {
        let inst = Instance::from_classes(3, &[vec![4, 2], vec![5]]).unwrap();
        let r = trivial(&inst).unwrap();
        assert!((r.ratio_vs_bound(&inst) - 1.0).abs() < 1e-12);
    }
}
