//! Dinic's maximum-flow algorithm over integral capacities.

/// Identifier of an edge returned by [`FlowNetwork::add_edge`]; use it to
/// query the final [`FlowNetwork::flow`] on that edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: u64,
}

/// A directed flow network with integral capacities.
///
/// Residual edges are stored pairwise (`e ^ 1` is the reverse of `e`), the
/// classic competitive-programming layout, which keeps the inner loops
/// allocation-free.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    edges: Vec<Edge>,
    adj: Vec<Vec<usize>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `u → v` with capacity `cap`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u64) -> EdgeId {
        let id = self.edges.len();
        self.edges.push(Edge { to: v, cap });
        self.adj[u].push(id);
        self.edges.push(Edge { to: u, cap: 0 });
        self.adj[v].push(id + 1);
        EdgeId(id)
    }

    /// Flow currently on edge `e` (its reverse edge's residual capacity).
    pub fn flow(&self, e: EdgeId) -> u64 {
        self.edges[e.0 ^ 1].cap
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u] {
                let edge = &self.edges[e];
                if edge.cap > 0 && self.level[edge.to] < 0 {
                    self.level[edge.to] = self.level[u] + 1;
                    queue.push_back(edge.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, limit: u64) -> u64 {
        if u == t {
            return limit;
        }
        while self.iter[u] < self.adj[u].len() {
            let e = self.adj[u][self.iter[u]];
            let (to, cap) = (self.edges[e].to, self.edges[e].cap);
            if cap > 0 && self.level[to] == self.level[u] + 1 {
                let pushed = self.dfs(to, t, limit.min(cap));
                if pushed > 0 {
                    self.edges[e].cap -= pushed;
                    self.edges[e ^ 1].cap += pushed;
                    return pushed;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Computes the maximum `s → t` flow. May be called once per network
    /// (subsequent calls continue on the residual network).
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut total = 0u64;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let pushed = self.dfs(s, t, u64::MAX);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 7);
        assert_eq!(g.max_flow(0, 1), 7);
        assert_eq!(g.flow(e), 7);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two paths of caps (3,2) and (2,3), plus a cross edge.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 2, 2);
        g.add_edge(1, 3, 2);
        g.add_edge(2, 3, 3);
        g.add_edge(1, 2, 5);
        assert_eq!(g.max_flow(0, 3), 5);
    }

    #[test]
    fn bottleneck() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 100);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 100);
        assert_eq!(g.max_flow(0, 3), 1);
    }

    #[test]
    fn disconnected_sink() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 5);
        assert_eq!(g.max_flow(0, 2), 0);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 2);
        g.add_edge(0, 1, 3);
        assert_eq!(g.max_flow(0, 1), 5);
    }

    #[test]
    fn flow_conservation_holds() {
        let mut g = FlowNetwork::new(6);
        let caps = [
            (0usize, 1usize, 10u64),
            (0, 2, 10),
            (1, 2, 2),
            (1, 3, 4),
            (1, 4, 8),
            (2, 4, 9),
            (3, 5, 10),
            (4, 3, 6),
            (4, 5, 10),
        ];
        let ids: Vec<EdgeId> = caps.iter().map(|&(u, v, c)| g.add_edge(u, v, c)).collect();
        let total = g.max_flow(0, 5);
        assert_eq!(total, 19);
        // Conservation at internal nodes.
        for node in 1..=4 {
            let mut inflow = 0u64;
            let mut outflow = 0u64;
            for (id, &(u, v, _)) in ids.iter().zip(caps.iter()) {
                if v == node {
                    inflow += g.flow(*id);
                }
                if u == node {
                    outflow += g.flow(*id);
                }
            }
            assert_eq!(inflow, outflow, "conservation at node {node}");
        }
    }
}
