//! The class/layer placeholder network of Lemma 18 (Figure 5 of the paper).
//!
//! In the layered-schedule construction, each class `c` must place `n_c`
//! placeholder jobs (each one layer long) into layers, such that
//!
//! * class `c` uses layer `ℓ` at most once, and only if a small job of `c`
//!   was (fractionally) present there (`γ_{c,ℓ} = 1`), and
//! * layer `ℓ` hosts at most `k_ℓ` placeholders (its slot count).
//!
//! The paper observes that the fractional placement induces a feasible
//! fractional flow of value `Σ_c n_c` in the network
//! `source → u_c (cap n_c) → v_ℓ (cap γ_{c,ℓ}) → sink (cap k_ℓ)`, and flow
//! integrality yields the integral placeholder placement. [`PlaceholderProblem::solve`]
//! performs exactly this rounding with [`crate::FlowNetwork`].

use crate::dinic::{EdgeId, FlowNetwork};

/// An instance of the placeholder-placement problem.
#[derive(Debug, Clone)]
pub struct PlaceholderProblem {
    /// `n_c`: placeholders demanded by each class.
    pub demand: Vec<u64>,
    /// `γ_{c,ℓ}`: whether class `c` may use layer `ℓ`.
    pub allowed: Vec<Vec<bool>>,
    /// `k_ℓ`: slot capacity of each layer.
    pub slots: Vec<u64>,
}

/// A feasible integral placement: for each class, the layers it occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceholderAssignment {
    /// `placed[c]` = sorted layer indices assigned to class `c`
    /// (`placed[c].len() == demand[c]`, all distinct, all allowed).
    pub placed: Vec<Vec<usize>>,
}

impl PlaceholderProblem {
    /// Builds the problem from a *fractional* placement `λ[c][ℓ] ∈ [0, 1]`
    /// (fraction of class `c`'s small jobs in layer `ℓ`): demands are the
    /// (integral) row sums, `γ` the support, and slot capacities the rounded
    /// up column sums — exactly the quantities of Lemma 18.
    ///
    /// # Panics
    /// If a row sum is not integral (within 1e-9) or some `λ ∉ [0, 1]`.
    pub fn from_fractional(lambda: &[Vec<f64>]) -> Self {
        let layers = lambda.first().map_or(0, Vec::len);
        let mut demand = Vec::with_capacity(lambda.len());
        let mut allowed = Vec::with_capacity(lambda.len());
        for row in lambda {
            assert_eq!(row.len(), layers, "ragged λ matrix");
            let sum: f64 = row.iter().sum();
            let rounded = sum.round();
            assert!(
                (sum - rounded).abs() < 1e-9,
                "class demand Σλ = {sum} is not integral"
            );
            assert!(row.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
            demand.push(rounded as u64);
            allowed.push(row.iter().map(|&x| x > 0.0).collect());
        }
        let slots = (0..layers)
            .map(|l| {
                let col: f64 = lambda.iter().map(|row| row[l]).sum();
                col.ceil() as u64
            })
            .collect();
        PlaceholderProblem {
            demand,
            allowed,
            slots,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.demand.len()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.slots.len()
    }

    /// Total demand `Σ_c n_c`.
    pub fn total_demand(&self) -> u64 {
        self.demand.iter().sum()
    }

    /// Builds the Figure 5 network and rounds to an integral placement.
    /// Returns `None` iff the max flow falls short of the total demand
    /// (the instance is infeasible).
    pub fn solve(&self) -> Option<PlaceholderAssignment> {
        let c = self.num_classes();
        let l = self.num_layers();
        // Nodes: 0 = source, 1..=c classes, c+1..=c+l layers, c+l+1 sink.
        let source = 0usize;
        let class_node = |i: usize| 1 + i;
        let layer_node = |j: usize| 1 + c + j;
        let sink = 1 + c + l;
        let mut g = FlowNetwork::new(sink + 1);
        for (i, &d) in self.demand.iter().enumerate() {
            g.add_edge(source, class_node(i), d);
        }
        let mut mid_edges: Vec<(usize, usize, EdgeId)> = Vec::new();
        for (i, row) in self.allowed.iter().enumerate() {
            assert_eq!(row.len(), l, "ragged allowed matrix");
            for (j, &ok) in row.iter().enumerate() {
                if ok {
                    let e = g.add_edge(class_node(i), layer_node(j), 1);
                    mid_edges.push((i, j, e));
                }
            }
        }
        for (j, &k) in self.slots.iter().enumerate() {
            g.add_edge(layer_node(j), sink, k);
        }
        let value = g.max_flow(source, sink);
        if value < self.total_demand() {
            return None;
        }
        let mut placed = vec![Vec::new(); c];
        for (i, j, e) in mid_edges {
            if g.flow(e) > 0 {
                placed[i].push(j);
            }
        }
        for row in &mut placed {
            row.sort_unstable();
        }
        Some(PlaceholderAssignment { placed })
    }

    /// Checks that `asg` is feasible for this problem (used in tests and by
    /// the PTAS pipeline as a safety net).
    pub fn check(&self, asg: &PlaceholderAssignment) -> bool {
        if asg.placed.len() != self.num_classes() {
            return false;
        }
        let mut used = vec![0u64; self.num_layers()];
        for (c, layers) in asg.placed.iter().enumerate() {
            if layers.len() as u64 != self.demand[c] {
                return false;
            }
            let mut seen = std::collections::HashSet::new();
            for &l in layers {
                if l >= self.num_layers() || !self.allowed[c][l] || !seen.insert(l) {
                    return false;
                }
                used[l] += 1;
            }
        }
        used.iter().zip(self.slots.iter()).all(|(&u, &k)| u <= k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_feasible_placement() {
        // 2 classes, 3 layers; class 0 needs 2 layers of {0,1,2}, class 1
        // needs 1 layer of {1}; slots: 1 each.
        let prob = PlaceholderProblem {
            demand: vec![2, 1],
            allowed: vec![vec![true, true, true], vec![false, true, false]],
            slots: vec![1, 1, 1],
        };
        let asg = prob.solve().expect("feasible");
        assert!(prob.check(&asg));
        assert_eq!(asg.placed[1], vec![1]);
        assert_eq!(asg.placed[0], vec![0, 2]);
    }

    #[test]
    fn infeasible_when_slots_lack() {
        let prob = PlaceholderProblem {
            demand: vec![2],
            allowed: vec![vec![true, true]],
            slots: vec![1, 0],
        };
        assert!(prob.solve().is_none());
    }

    #[test]
    fn infeasible_when_gamma_blocks() {
        let prob = PlaceholderProblem {
            demand: vec![2],
            allowed: vec![vec![true, false, false]],
            slots: vec![5, 5, 5],
        };
        assert!(prob.solve().is_none());
    }

    #[test]
    fn from_fractional_rounds_lemma18_style() {
        // Fractional placement: class 0 spreads 2 units as ½+½+1 over layers
        // 0..3; class 1 spreads 1 unit as ½+½ over layers 0..2.
        let lambda = vec![vec![0.5, 0.5, 1.0], vec![0.5, 0.5, 0.0]];
        let prob = PlaceholderProblem::from_fractional(&lambda);
        assert_eq!(prob.demand, vec![2, 1]);
        assert_eq!(prob.slots, vec![1, 1, 1]);
        let asg = prob.solve().expect("Lemma 18 guarantees feasibility");
        assert!(prob.check(&asg));
    }

    #[test]
    fn check_rejects_bad_assignments() {
        let prob = PlaceholderProblem {
            demand: vec![1, 1],
            allowed: vec![vec![true, false], vec![true, true]],
            slots: vec![1, 1],
        };
        // Wrong count.
        assert!(!prob.check(&PlaceholderAssignment {
            placed: vec![vec![], vec![1]]
        }));
        // Disallowed layer.
        assert!(!prob.check(&PlaceholderAssignment {
            placed: vec![vec![1], vec![0]]
        }));
        // Over capacity.
        assert!(!prob.check(&PlaceholderAssignment {
            placed: vec![vec![0], vec![0]]
        }));
        // Duplicate layer within a class.
        let bad = PlaceholderAssignment {
            placed: vec![vec![0], vec![1, 1]],
        };
        assert!(!prob.check(&bad));
        // A correct one.
        assert!(prob.check(&PlaceholderAssignment {
            placed: vec![vec![0], vec![1]]
        }));
    }

    #[test]
    #[should_panic(expected = "not integral")]
    fn fractional_rowsum_must_be_integral() {
        PlaceholderProblem::from_fractional(&[vec![0.5, 0.25]]);
    }
}
