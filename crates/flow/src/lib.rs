//! # msrs-flow — integral max-flow and the Lemma 18 placeholder network
//!
//! The layered-schedule construction of the paper (Lemma 18, Figure 5) turns
//! a fractional placement of small jobs into an integral placement of
//! placeholder jobs via flow integrality. This crate provides the substrate:
//!
//! * [`dinic::FlowNetwork`] — a general integral max-flow solver (Dinic's
//!   algorithm, `O(V²E)`);
//! * [`layered`] — the class/layer bipartite network of Figure 5
//!   (source → class `u_c` (cap `n_c`) → layer `v_ℓ` (cap `γ_{c,ℓ} ∈ {0,1}`)
//!   → sink (cap `k_ℓ`)) together with the integral-rounding round trip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dinic;
pub mod layered;

pub use dinic::FlowNetwork;
pub use layered::{PlaceholderAssignment, PlaceholderProblem};
