//! Property tests for the flow substrate: Dinic against an independent
//! Ford–Fulkerson (BFS augmenting path) reference on random graphs, and the
//! Lemma 18 integral-rounding guarantee on random fractional placements.

use msrs_flow::{FlowNetwork, PlaceholderProblem};
use proptest::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Reference max-flow: Edmonds–Karp on an adjacency-matrix residual graph.
fn edmonds_karp(n: usize, edges: &[(usize, usize, u64)], s: usize, t: usize) -> u64 {
    let mut cap = vec![vec![0u64; n]; n];
    for &(u, v, c) in edges {
        cap[u][v] += c;
    }
    let mut flow = 0u64;
    loop {
        // BFS for an augmenting path.
        let mut parent = vec![usize::MAX; n];
        parent[s] = s;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if parent[v] == usize::MAX && cap[u][v] > 0 {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[t] == usize::MAX {
            return flow;
        }
        let mut bottleneck = u64::MAX;
        let mut v = t;
        while v != s {
            let u = parent[v];
            bottleneck = bottleneck.min(cap[u][v]);
            v = u;
        }
        let mut v = t;
        while v != s {
            let u = parent[v];
            cap[u][v] -= bottleneck;
            cap[v][u] += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }
}

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize, u64)>)> {
    (2usize..=8).prop_flat_map(|n| {
        let edges = prop::collection::vec(
            (0..n, 0..n, 1u64..=20).prop_filter("no self loop", |(u, v, _)| u != v),
            0..=20,
        );
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dinic_matches_edmonds_karp((n, edges) in arb_graph()) {
        let mut g = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            g.add_edge(u, v, c);
        }
        let dinic = g.max_flow(0, n - 1);
        let reference = edmonds_karp(n, &edges, 0, n - 1);
        prop_assert_eq!(dinic, reference);
    }

    #[test]
    fn lemma18_rounding_always_succeeds(seed in 0u64..10_000) {
        // Build a random *fractional* placement with integral row sums the
        // way Lemma 18 produces them, then demand the integral rounding.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let classes = rng.random_range(1..=6usize);
        let layers = rng.random_range(1..=8usize);
        let mut lambda = vec![vec![0.0f64; layers]; classes];
        for row in lambda.iter_mut() {
            // Choose an integral demand ≤ layers and spread it in halves,
            // keeping every entry ≤ 1.
            let demand = rng.random_range(0..=layers as u64);
            let mut remaining = demand as f64;
            let mut order: Vec<usize> = (0..layers).collect();
            order.shuffle(&mut rng);
            for &l in &order {
                if remaining <= 0.0 {
                    break;
                }
                let amount = if remaining >= 1.0 && rng.random_bool(0.5) {
                    1.0
                } else {
                    0.5f64.min(remaining)
                };
                if row[l] + amount <= 1.0 {
                    row[l] += amount;
                    remaining -= amount;
                }
            }
            // If we could not spread everything (unlikely), trim the demand
            // by clearing leftovers: redistribute to untouched layers.
            if remaining > 0.0 {
                for &l in &order {
                    if remaining <= 0.0 {
                        break;
                    }
                    let room = 1.0 - row[l];
                    let amount = room.min(remaining);
                    row[l] += amount;
                    remaining -= amount;
                }
            }
            prop_assume!(remaining <= 1e-9);
        }
        let prob = PlaceholderProblem::from_fractional(&lambda);
        let asg = prob.solve().expect("Lemma 18: integral rounding must exist");
        prop_assert!(prob.check(&asg));
    }
}
