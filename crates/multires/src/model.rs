//! Multi-resource MSRS model: each job needs a set of shared resources; no
//! two jobs sharing any resource may run concurrently.

use std::fmt;

use msrs_core::{Assignment, MachineId, Schedule, Time};

/// Identifier of a shared resource.
pub type ResourceId = usize;

/// A job with a processing time and the set of resources it needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiJob {
    /// Processing time.
    pub size: Time,
    /// Resources required for the whole execution (each shared exclusively).
    pub resources: Vec<ResourceId>,
}

impl MultiJob {
    /// Creates a job.
    pub fn new(size: Time, resources: Vec<ResourceId>) -> Self {
        MultiJob { size, resources }
    }
}

/// A multi-resource MSRS instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiInstance {
    machines: usize,
    jobs: Vec<MultiJob>,
    num_resources: usize,
}

impl MultiInstance {
    /// Builds an instance; the resource universe is inferred from the jobs.
    pub fn new(machines: usize, jobs: Vec<MultiJob>) -> Self {
        assert!(machines >= 1, "need at least one machine");
        let num_resources = jobs
            .iter()
            .flat_map(|j| j.resources.iter().map(|&r| r + 1))
            .max()
            .unwrap_or(0);
        MultiInstance {
            machines,
            jobs,
            num_resources,
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// The jobs.
    pub fn jobs(&self) -> &[MultiJob] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Size of the resource universe.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Maximum number of resources any job requires (the Theorem 23 bound).
    pub fn max_resources_per_job(&self) -> usize {
        self.jobs
            .iter()
            .map(|j| j.resources.len())
            .max()
            .unwrap_or(0)
    }

    /// Total processing time.
    pub fn total_load(&self) -> Time {
        self.jobs.iter().map(|j| j.size).sum()
    }
}

/// Validation failures for multi-resource schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiValidationError {
    /// Assignment count mismatch.
    WrongJobCount {
        /// Jobs in the instance.
        expected: usize,
        /// Assignments given.
        actual: usize,
    },
    /// A machine id out of range.
    MachineOutOfRange {
        /// Offending job.
        job: usize,
        /// Machine used.
        machine: MachineId,
    },
    /// Two jobs overlap on one machine.
    MachineOverlap {
        /// Machine involved.
        machine: MachineId,
        /// First job.
        job_a: usize,
        /// Second job.
        job_b: usize,
    },
    /// Two jobs sharing a resource overlap in time.
    ResourceConflict {
        /// The contended resource.
        resource: ResourceId,
        /// First job.
        job_a: usize,
        /// Second job.
        job_b: usize,
    },
}

impl fmt::Display for MultiValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiValidationError::WrongJobCount { expected, actual } => {
                write!(f, "schedule has {actual} assignments for {expected} jobs")
            }
            MultiValidationError::MachineOutOfRange { job, machine } => {
                write!(f, "job {job} on out-of-range machine {machine}")
            }
            MultiValidationError::MachineOverlap {
                machine,
                job_a,
                job_b,
            } => {
                write!(f, "jobs {job_a}/{job_b} overlap on machine {machine}")
            }
            MultiValidationError::ResourceConflict {
                resource,
                job_a,
                job_b,
            } => {
                write!(f, "jobs {job_a}/{job_b} contend for resource {resource}")
            }
        }
    }
}

impl std::error::Error for MultiValidationError {}

/// Exact validation of a multi-resource schedule.
pub fn validate_multi(
    inst: &MultiInstance,
    schedule: &Schedule,
) -> Result<(), MultiValidationError> {
    if schedule.len() != inst.num_jobs() {
        return Err(MultiValidationError::WrongJobCount {
            expected: inst.num_jobs(),
            actual: schedule.len(),
        });
    }
    for (j, a) in schedule.assignments().iter().enumerate() {
        if a.machine >= inst.machines() {
            return Err(MultiValidationError::MachineOutOfRange {
                job: j,
                machine: a.machine,
            });
        }
    }
    let interval = |j: usize| {
        let a = schedule.assignment(j);
        (a.start, a.start + inst.jobs[j].size)
    };
    // Machine exclusivity.
    let mut by_machine: Vec<Vec<usize>> = vec![Vec::new(); inst.machines()];
    for (j, a) in schedule.assignments().iter().enumerate() {
        if inst.jobs[j].size > 0 {
            by_machine[a.machine].push(j);
        }
    }
    for (machine, jobs) in by_machine.iter_mut().enumerate() {
        jobs.sort_by_key(|&j| interval(j).0);
        for w in jobs.windows(2) {
            if interval(w[0]).1 > interval(w[1]).0 {
                return Err(MultiValidationError::MachineOverlap {
                    machine,
                    job_a: w[0],
                    job_b: w[1],
                });
            }
        }
    }
    // Resource exclusivity.
    let mut by_resource: Vec<Vec<usize>> = vec![Vec::new(); inst.num_resources()];
    for (j, job) in inst.jobs.iter().enumerate() {
        if job.size > 0 {
            for &r in &job.resources {
                by_resource[r].push(j);
            }
        }
    }
    for (resource, jobs) in by_resource.iter_mut().enumerate() {
        jobs.sort_by_key(|&j| interval(j).0);
        for w in jobs.windows(2) {
            if interval(w[0]).1 > interval(w[1]).0 {
                return Err(MultiValidationError::ResourceConflict {
                    resource,
                    job_a: w[0],
                    job_b: w[1],
                });
            }
        }
    }
    Ok(())
}

/// Greedy list scheduler for the multi-resource extension: event-driven,
/// largest available job first, where "available" means all of the job's
/// resources are idle.
pub fn greedy_multi(inst: &MultiInstance) -> Schedule {
    let m = inst.machines();
    let n = inst.num_jobs();
    let mut machine_free: Vec<Time> = vec![0; m];
    let mut resource_free: Vec<Time> = vec![0; inst.num_resources()];
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&j| std::cmp::Reverse(inst.jobs[j].size));
    let mut scheduled = vec![false; n];
    let mut assignments = vec![
        Assignment {
            machine: 0,
            start: 0
        };
        n
    ];
    let mut done = 0;
    while done < n {
        let q = (0..m).min_by_key(|&q| machine_free[q]).expect("m ≥ 1");
        let now = machine_free[q];
        let pick = order.iter().copied().find(|&j| {
            !scheduled[j]
                && inst.jobs[j]
                    .resources
                    .iter()
                    .all(|&r| resource_free[r] <= now)
        });
        match pick {
            Some(j) => {
                scheduled[j] = true;
                done += 1;
                assignments[j] = Assignment {
                    machine: q,
                    start: now,
                };
                let end = now + inst.jobs[j].size;
                machine_free[q] = end;
                for &r in &inst.jobs[j].resources {
                    resource_free[r] = resource_free[r].max(end);
                }
            }
            None => {
                let next = order
                    .iter()
                    .copied()
                    .filter(|&j| !scheduled[j])
                    .flat_map(|j| inst.jobs[j].resources.iter().map(|&r| resource_free[r]))
                    .filter(|&f| f > now)
                    .min()
                    .expect("a blocked resource must free up");
                machine_free[q] = next;
            }
        }
    }
    Schedule::new(assignments)
}

/// Extension trait: makespan for multi-resource instances.
pub trait MultiMakespan {
    /// Makespan of this schedule against `inst`.
    fn makespan_multi(&self, inst: &MultiInstance) -> Time;
}

impl MultiMakespan for Schedule {
    fn makespan_multi(&self, inst: &MultiInstance) -> Time {
        self.assignments()
            .iter()
            .enumerate()
            .map(|(j, a)| a.start + inst.jobs()[j].size)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(machine: usize, start: Time) -> Assignment {
        Assignment { machine, start }
    }

    #[test]
    fn accepts_valid_multi_schedule() {
        let inst = MultiInstance::new(
            2,
            vec![
                MultiJob::new(3, vec![0, 1]),
                MultiJob::new(2, vec![1]),
                MultiJob::new(2, vec![2]),
            ],
        );
        let s = Schedule::new(vec![asg(0, 0), asg(1, 3), asg(1, 0)]);
        assert_eq!(validate_multi(&inst, &s), Ok(()));
    }

    #[test]
    fn rejects_resource_conflict() {
        let inst = MultiInstance::new(
            2,
            vec![MultiJob::new(3, vec![0, 1]), MultiJob::new(2, vec![1, 2])],
        );
        let s = Schedule::new(vec![asg(0, 0), asg(1, 2)]);
        assert_eq!(
            validate_multi(&inst, &s),
            Err(MultiValidationError::ResourceConflict {
                resource: 1,
                job_a: 0,
                job_b: 1
            })
        );
    }

    #[test]
    fn rejects_machine_overlap() {
        let inst = MultiInstance::new(
            1,
            vec![MultiJob::new(3, vec![0]), MultiJob::new(2, vec![1])],
        );
        let s = Schedule::new(vec![asg(0, 0), asg(0, 2)]);
        assert!(matches!(
            validate_multi(&inst, &s),
            Err(MultiValidationError::MachineOverlap { .. })
        ));
    }

    #[test]
    fn greedy_produces_valid_schedules() {
        let inst = MultiInstance::new(
            2,
            vec![
                MultiJob::new(3, vec![0, 1]),
                MultiJob::new(3, vec![1, 2]),
                MultiJob::new(3, vec![2, 0]),
                MultiJob::new(1, vec![3]),
            ],
        );
        let s = greedy_multi(&inst);
        assert_eq!(validate_multi(&inst, &s), Ok(()));
        // The triangle of pairwise-conflicting jobs serializes: ≥ 9.
        assert!(s.makespan_multi(&inst) >= 9 || s.assignments().len() == 4);
    }

    #[test]
    fn zero_size_jobs_never_conflict() {
        let inst = MultiInstance::new(
            1,
            vec![MultiJob::new(0, vec![0]), MultiJob::new(5, vec![0])],
        );
        let s = Schedule::new(vec![asg(0, 0), asg(0, 0)]);
        assert_eq!(validate_multi(&inst, &s), Ok(()));
    }

    #[test]
    fn max_resources_per_job_reported() {
        let inst = MultiInstance::new(
            1,
            vec![MultiJob::new(1, vec![0, 1, 2]), MultiJob::new(1, vec![3])],
        );
        assert_eq!(inst.max_resources_per_job(), 3);
        assert_eq!(inst.num_resources(), 4);
    }
}
