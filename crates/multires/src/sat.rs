//! SAT substrate: CNF formulas, a DPLL solver, and the Monotone 3-SAT-(2,2)
//! discipline of Darmann & Döcker used by the Theorem 23 reduction.
//!
//! Monotone 3-SAT-(2,2): every clause has exactly three distinct literals and
//! is either all-positive or all-negative; every literal (each of `x` and
//! `¬x`) appears in exactly two clauses — hence `|X|` is divisible by 3 and
//! `|C| = 4|X|/3`.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A literal: variable index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    /// Variable index.
    pub var: usize,
    /// `true` for `¬x`.
    pub negated: bool,
}

impl Lit {
    /// Positive literal `x`.
    pub fn pos(var: usize) -> Self {
        Lit {
            var,
            negated: false,
        }
    }

    /// Negative literal `¬x`.
    pub fn neg(var: usize) -> Self {
        Lit { var, negated: true }
    }

    /// Evaluates the literal under an assignment.
    pub fn eval(&self, asg: &[bool]) -> bool {
        asg[self.var] ^ self.negated
    }
}

/// A CNF formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses (disjunctions of literals).
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Whether `asg` satisfies every clause.
    pub fn is_satisfied_by(&self, asg: &[bool]) -> bool {
        assert_eq!(asg.len(), self.num_vars);
        self.clauses.iter().all(|cl| cl.iter().any(|l| l.eval(asg)))
    }
}

/// DPLL with unit propagation and pure-literal elimination. Returns a
/// satisfying assignment or `None`.
pub fn dpll(cnf: &Cnf) -> Option<Vec<bool>> {
    #[derive(Clone, Copy, PartialEq)]
    enum V {
        Unset,
        True,
        False,
    }
    fn solve(cnf: &Cnf, asg: &mut Vec<V>) -> bool {
        // Unit propagation + pure literals, to fixpoint.
        loop {
            let mut changed = false;
            let mut polarity: Vec<(bool, bool)> = vec![(false, false); cnf.num_vars];
            for cl in &cnf.clauses {
                let mut satisfied = false;
                let mut unassigned: Option<Lit> = None;
                let mut count = 0;
                for l in cl {
                    match (asg[l.var], l.negated) {
                        (V::True, false) | (V::False, true) => satisfied = true,
                        (V::Unset, _) => {
                            unassigned = Some(*l);
                            count += 1;
                        }
                        _ => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match count {
                    0 => return false, // conflict
                    1 => {
                        let l = unassigned.expect("count == 1");
                        asg[l.var] = if l.negated { V::False } else { V::True };
                        changed = true;
                    }
                    _ => {
                        for l in cl {
                            if asg[l.var] == V::Unset {
                                if l.negated {
                                    polarity[l.var].1 = true;
                                } else {
                                    polarity[l.var].0 = true;
                                }
                            }
                        }
                    }
                }
            }
            if changed {
                continue;
            }
            // Pure literals (appearing with one polarity in open clauses).
            let mut pure_set = false;
            for (v, &(pos, neg)) in polarity.iter().enumerate() {
                if asg[v] == V::Unset && (pos ^ neg) {
                    asg[v] = if pos { V::True } else { V::False };
                    pure_set = true;
                }
            }
            if !pure_set {
                break;
            }
        }
        // All clauses satisfied?
        let open = cnf.clauses.iter().any(|cl| {
            !cl.iter()
                .any(|l| matches!((asg[l.var], l.negated), (V::True, false) | (V::False, true)))
        });
        if !open {
            return true;
        }
        // Branch on the first unset variable.
        let Some(v) = (0..cnf.num_vars).find(|&v| asg[v] == V::Unset) else {
            return false;
        };
        for value in [V::True, V::False] {
            let mut trial = asg.clone();
            trial[v] = value;
            if solve(cnf, &mut trial) {
                *asg = trial;
                return true;
            }
        }
        false
    }

    let mut asg = vec![V::Unset; cnf.num_vars];
    if solve(cnf, &mut asg) {
        Some(asg.iter().map(|&v| v == V::True).collect())
    } else {
        None
    }
}

/// A formula obeying the Monotone 3-SAT-(2,2) discipline.
#[derive(Debug, Clone)]
pub struct Monotone3Sat22 {
    /// The underlying CNF (positive clauses first, then negative).
    pub cnf: Cnf,
    /// Number of all-positive clauses.
    pub num_positive: usize,
}

impl Monotone3Sat22 {
    /// Checks the discipline: monotone clauses of exactly three distinct
    /// variables; every literal appears exactly twice.
    pub fn check(cnf: &Cnf) -> Result<(), String> {
        let mut pos_count = vec![0usize; cnf.num_vars];
        let mut neg_count = vec![0usize; cnf.num_vars];
        for (i, cl) in cnf.clauses.iter().enumerate() {
            if cl.len() != 3 {
                return Err(format!("clause {i} has {} literals", cl.len()));
            }
            let mut vars: Vec<usize> = cl.iter().map(|l| l.var).collect();
            vars.sort_unstable();
            vars.dedup();
            if vars.len() != 3 {
                return Err(format!("clause {i} repeats a variable"));
            }
            let negs = cl.iter().filter(|l| l.negated).count();
            if negs != 0 && negs != 3 {
                return Err(format!("clause {i} is not monotone"));
            }
            for l in cl {
                if l.negated {
                    neg_count[l.var] += 1;
                } else {
                    pos_count[l.var] += 1;
                }
            }
        }
        for v in 0..cnf.num_vars {
            if pos_count[v] != 2 || neg_count[v] != 2 {
                return Err(format!(
                    "variable {v} occurs {}+ / {}−, expected 2/2",
                    pos_count[v], neg_count[v]
                ));
            }
        }
        Ok(())
    }

    /// Wraps a formula after checking the discipline.
    pub fn new(cnf: Cnf) -> Result<Self, String> {
        Self::check(&cnf)?;
        let num_positive = cnf.clauses.iter().filter(|cl| !cl[0].negated).count();
        Ok(Monotone3Sat22 { cnf, num_positive })
    }

    /// Number of variables `|X|`.
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars
    }

    /// Number of clauses `|C| = 4|X|/3`.
    pub fn num_clauses(&self) -> usize {
        self.cnf.clauses.len()
    }

    /// Random instance with `num_vars` variables (must be divisible by 3):
    /// two copies of every variable are shuffled and chunked into monotone
    /// triples, with local swaps to remove duplicate variables in a clause.
    pub fn random(seed: u64, num_vars: usize) -> Self {
        assert!(
            num_vars >= 3 && num_vars.is_multiple_of(3),
            "need |X| ≥ 3 divisible by 3"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let build_side = |rng: &mut ChaCha8Rng, negated: bool| -> Vec<Vec<Lit>> {
            loop {
                let mut pool: Vec<usize> = (0..num_vars).flat_map(|v| [v, v]).collect();
                pool.shuffle(rng);
                // Repair duplicates within chunks by swapping with later
                // elements; retry wholesale if stuck.
                let mut ok = true;
                for chunk_start in (0..pool.len()).step_by(3) {
                    for i in 0..3 {
                        let idx = chunk_start + i;
                        let dup = (chunk_start..idx).any(|k| pool[k] == pool[idx]);
                        if dup {
                            let swap = (chunk_start + 3..pool.len()).find(|&k| {
                                let cand = pool[k];
                                !(chunk_start..chunk_start + 3)
                                    .filter(|&t| t != idx)
                                    .any(|t| pool[t] == cand)
                                    && !(k - (k - chunk_start) % 3..k).any(|t| pool[t] == pool[idx])
                            });
                            match swap {
                                Some(k) => pool.swap(idx, k),
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                    if !ok {
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                // Final sanity: distinct triples.
                let clauses: Vec<Vec<Lit>> = pool
                    .chunks(3)
                    .map(|ch| {
                        ch.iter()
                            .map(|&v| if negated { Lit::neg(v) } else { Lit::pos(v) })
                            .collect()
                    })
                    .collect();
                if clauses.iter().all(|cl| {
                    cl[0].var != cl[1].var && cl[0].var != cl[2].var && cl[1].var != cl[2].var
                }) {
                    return clauses;
                }
            }
        };
        let mut clauses = build_side(&mut rng, false);
        clauses.extend(build_side(&mut rng, true));
        let cnf = Cnf { num_vars, clauses };
        Self::new(cnf).expect("generator obeys the discipline")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_sat(cnf: &Cnf) -> Option<Vec<bool>> {
        for mask in 0u32..(1 << cnf.num_vars) {
            let asg: Vec<bool> = (0..cnf.num_vars).map(|v| mask >> v & 1 == 1).collect();
            if cnf.is_satisfied_by(&asg) {
                return Some(asg);
            }
        }
        None
    }

    #[test]
    fn dpll_solves_simple_formulas() {
        // (x ∨ y) ∧ (¬x ∨ y) ∧ (¬y ∨ z)
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::pos(1)],
                vec![Lit::neg(1), Lit::pos(2)],
            ],
        };
        let asg = dpll(&cnf).expect("satisfiable");
        assert!(cnf.is_satisfied_by(&asg));
    }

    #[test]
    fn dpll_detects_unsat() {
        // x ∧ ¬x
        let cnf = Cnf {
            num_vars: 1,
            clauses: vec![vec![Lit::pos(0)], vec![Lit::neg(0)]],
        };
        assert!(dpll(&cnf).is_none());
    }

    #[test]
    fn dpll_matches_brute_force_on_random_formulas() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..200 {
            let num_vars = rng.random_range(1..=8usize);
            let num_clauses = rng.random_range(1..=12usize);
            let clauses: Vec<Vec<Lit>> = (0..num_clauses)
                .map(|_| {
                    let len = rng.random_range(1..=3usize);
                    (0..len)
                        .map(|_| Lit {
                            var: rng.random_range(0..num_vars),
                            negated: rng.random_bool(0.5),
                        })
                        .collect()
                })
                .collect();
            let cnf = Cnf { num_vars, clauses };
            let d = dpll(&cnf);
            let b = brute_force_sat(&cnf);
            assert_eq!(d.is_some(), b.is_some(), "disagreement on {cnf:?}");
            if let Some(asg) = d {
                assert!(cnf.is_satisfied_by(&asg));
            }
        }
    }

    #[test]
    fn generator_obeys_discipline() {
        for seed in 0..20u64 {
            for nv in [3usize, 6, 9, 12] {
                let f = Monotone3Sat22::random(seed, nv);
                assert_eq!(Monotone3Sat22::check(&f.cnf), Ok(()));
                assert_eq!(f.num_clauses(), 4 * nv / 3);
                assert_eq!(f.num_positive, 2 * nv / 3);
            }
        }
    }

    #[test]
    fn discipline_check_rejects_violations() {
        // Non-monotone clause.
        let bad = Cnf {
            num_vars: 3,
            clauses: vec![vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]],
        };
        assert!(Monotone3Sat22::check(&bad).is_err());
        // Wrong occurrence counts.
        let bad2 = Cnf {
            num_vars: 3,
            clauses: vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)],
            ],
        };
        assert!(Monotone3Sat22::check(&bad2).is_err());
    }

    #[test]
    fn canonical_small_instance_is_satisfiable() {
        // |X| = 3: the doubled positive/negative triangle, satisfiable by
        // any mixed assignment.
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)],
                vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)],
            ],
        };
        let f = Monotone3Sat22::new(cnf).expect("discipline holds");
        let asg = dpll(&f.cnf).expect("satisfiable");
        assert!(f.cnf.is_satisfied_by(&asg));
    }
}
