//! # msrs-multires — MSRS with multiple resources per job (paper §5)
//!
//! The paper's inapproximability section extends MSRS so each job needs a
//! *set* `R(j)` of resources and proves a `5/4 − ε` hardness via a reduction
//! from Monotone 3-SAT-(2,2). This crate builds everything that section
//! needs:
//!
//! * [`model`] — the multi-resource problem model, exact validator, and a
//!   greedy list scheduler for the extension;
//! * [`sat`] — CNF formulas, a DPLL solver substrate, and the
//!   Monotone 3-SAT-(2,2) instance discipline with random generators;
//! * [`reduction`] — the Theorem 23 gadget. **Reproduction finding:** the
//!   gadget exactly as printed is over capacity — its total load is
//!   `9|C| + 7|X|` while `2|C| + 2|X|` machines provide only `8|C| + 8|X|`
//!   units within makespan 4, and `|C| = 4|X|/3 > |X|`, so no makespan-4
//!   schedule can exist for any non-empty formula. We expose the faithful
//!   gadget (with the capacity certificate) *and* a repaired variant
//!   (`j^c_d` of size 1) whose makespan-4 schedule we construct and verify
//!   for every satisfying assignment. See DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod reduction;
pub mod sat;

pub use model::{validate_multi, MultiInstance, MultiJob, MultiValidationError};
pub use reduction::{Fidelity, Reduction};
pub use sat::{dpll, Cnf, Lit, Monotone3Sat22};
