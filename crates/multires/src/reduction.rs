//! The Theorem 23 inapproximability gadget: Monotone 3-SAT-(2,2) →
//! multi-resource MSRS with makespan 4 (satisfiable) vs 5 (otherwise).
//!
//! ## Reproduction finding (erratum)
//!
//! The gadget exactly as printed cannot reach makespan 4 for *any* formula:
//! its total processing time is `9|C| + 7|X|` (clause dummies `3+1`, variable
//! dummies `2+2`, three unit variable jobs, `j^c_d` of size 2 and three unit
//! clause jobs), while `2|C| + 2|X|` machines offer only `4·(2|C|+2|X|) =
//! 8|C| + 8|X|` machine-time units — and `|C| = 4|X|/3 > |X|`, so the load
//! exceeds the capacity by `|C| − |X| = |X|/3 > 0`. [`Reduction::capacity_deficit`]
//! exposes the certificate.
//!
//! We therefore provide two fidelities:
//!
//! * [`Fidelity::Text`] — the gadget verbatim (with `A_{c}` on `jA_c` and
//!   `p(j^c_d) = 2`); only the always-feasible makespan-5 schedule is
//!   constructible.
//! * [`Fidelity::Repaired`] — `p(j^c_d) = 1` and `A_c` anchored on the unit
//!   dummy `ja_c`; the load becomes `8|C| + 7|X| ≤` capacity and we
//!   *construct and verify* a makespan-4 schedule from every satisfying
//!   assignment (with the slot layout documented in the code), preserving
//!   the theorem's shape: sizes in `{1, 2, 3}`, at most three resources per
//!   job, `2|C| + 2|X|` machines.

use msrs_core::{Assignment, Schedule, Time};

use crate::model::{MultiInstance, MultiJob};
use crate::sat::Monotone3Sat22;

/// Which version of the gadget to build (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Exactly the paper's §5 construction.
    Text,
    /// The capacity-repaired construction (`p(j^c_d) = 1`).
    Repaired,
}

/// Errors from the makespan-4 constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Makespan4Error {
    /// The text-faithful gadget is over capacity (the erratum): carries
    /// `(total load, machine-time capacity at makespan 4)`.
    OverCapacity(Time, Time),
    /// The supplied assignment does not satisfy the formula.
    UnsatisfiedClause(usize),
}

/// The built gadget with all job/machine bookkeeping.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Which fidelity was built.
    pub fidelity: Fidelity,
    /// The resulting multi-resource instance (`2|C| + 2|X|` machines).
    pub instance: MultiInstance,
    formula: Monotone3Sat22,
    // job ids
    ja_big: Vec<usize>,   // jA_i (size 3)
    ja_small: Vec<usize>, // ja_i (size 1)
    jb_small: Vec<usize>, // jb_x (size 2)
    jb_big: Vec<usize>,   // jB_x (size 2)
    j_pos: Vec<usize>,    // j_x
    j_neg: Vec<usize>,    // j_x̄
    j_d: Vec<usize>,      // j_dx
    clause_d: Vec<usize>, // j^c_d
    clause_lits: Vec<[usize; 3]>,
}

impl Reduction {
    /// Builds the gadget for `formula`.
    pub fn build(formula: Monotone3Sat22, fidelity: Fidelity) -> Self {
        let nc = formula.num_clauses();
        let nx = formula.num_vars();
        // Resource allocation.
        let mut next_res = 0usize;
        let mut fresh = || {
            let r = next_res;
            next_res += 1;
            r
        };
        let a_pair: Vec<usize> = (0..nc).map(|_| fresh()).collect();
        let a_link: Vec<usize> = (0..nc.saturating_sub(1)).map(|_| fresh()).collect();
        let ab = fresh();
        let b_pair: Vec<usize> = (0..nx).map(|_| fresh()).collect();
        let b_link: Vec<usize> = (0..nx.saturating_sub(1)).map(|_| fresh()).collect();
        let b_var: Vec<usize> = (0..nx).map(|_| fresh()).collect();
        let x_res: Vec<usize> = (0..nx).map(|_| fresh()).collect();
        let cc: Vec<usize> = (0..nc).map(|_| fresh()).collect();
        let ac: Vec<usize> = (0..nc).map(|_| fresh()).collect();
        let v_res: Vec<[usize; 3]> = (0..nc).map(|_| [fresh(), fresh(), fresh()]).collect();

        let mut jobs: Vec<MultiJob> = Vec::new();
        let mut push = |size: Time, res: Vec<usize>| -> usize {
            debug_assert!(res.len() <= 3, "Theorem 23 allows ≤ 3 resources per job");
            jobs.push(MultiJob::new(size, res));
            jobs.len() - 1
        };

        // Clause dummies. The A_c anchor sits on jA_c in the text variant and
        // on ja_c in the repaired one (see module docs).
        let mut ja_big = Vec::with_capacity(nc);
        let mut ja_small = Vec::with_capacity(nc);
        for i in 0..nc {
            let mut big_res = vec![a_pair[i]];
            let mut small_res = vec![a_pair[i]];
            if i > 0 {
                big_res.push(a_link[i - 1]);
            }
            if i + 1 < nc {
                small_res.push(a_link[i]);
            } else {
                small_res.push(ab);
            }
            match fidelity {
                Fidelity::Text => big_res.push(ac[i]),
                Fidelity::Repaired => small_res.push(ac[i]),
            }
            ja_big.push(push(3, big_res));
            ja_small.push(push(1, small_res));
        }
        // Variable dummies.
        let mut jb_small = Vec::with_capacity(nx);
        let mut jb_big = Vec::with_capacity(nx);
        for x in 0..nx {
            let mut small_res = vec![b_pair[x]];
            if x > 0 {
                small_res.push(b_link[x - 1]);
            }
            if x == 0 {
                small_res.push(ab);
            }
            let mut big_res = vec![b_pair[x], b_var[x]];
            if x + 1 < nx {
                big_res.push(b_link[x]);
            }
            jb_small.push(push(2, small_res));
            jb_big.push(push(2, big_res));
        }
        // Variable jobs: j_x and j_x̄ carry X_x plus the V resources of their
        // two occurrences; j_dx carries X_x and BVar_x.
        let mut occ_pos: Vec<Vec<usize>> = vec![Vec::new(); nx];
        let mut occ_neg: Vec<Vec<usize>> = vec![Vec::new(); nx];
        for (c, cl) in formula.cnf.clauses.iter().enumerate() {
            for (slot, lit) in cl.iter().enumerate() {
                if lit.negated {
                    occ_neg[lit.var].push(v_res[c][slot]);
                } else {
                    occ_pos[lit.var].push(v_res[c][slot]);
                }
            }
        }
        let mut j_pos = Vec::with_capacity(nx);
        let mut j_neg = Vec::with_capacity(nx);
        let mut j_d = Vec::with_capacity(nx);
        for x in 0..nx {
            debug_assert_eq!(occ_pos[x].len(), 2, "(2,2) discipline");
            debug_assert_eq!(occ_neg[x].len(), 2);
            let mut pr = vec![x_res[x]];
            pr.extend(&occ_pos[x]);
            let mut nr = vec![x_res[x]];
            nr.extend(&occ_neg[x]);
            j_pos.push(push(1, pr));
            j_neg.push(push(1, nr));
            j_d.push(push(1, vec![x_res[x], b_var[x]]));
        }
        // Clause jobs.
        let d_size = match fidelity {
            Fidelity::Text => 2,
            Fidelity::Repaired => 1,
        };
        let mut clause_d = Vec::with_capacity(nc);
        let mut clause_lits = Vec::with_capacity(nc);
        for c in 0..nc {
            clause_d.push(push(d_size, vec![cc[c], ac[c]]));
            let lits = [
                push(1, vec![cc[c], v_res[c][0]]),
                push(1, vec![cc[c], v_res[c][1]]),
                push(1, vec![cc[c], v_res[c][2]]),
            ];
            clause_lits.push(lits);
        }

        let machines = 2 * nc + 2 * nx;
        let instance = MultiInstance::new(machines, jobs);
        Reduction {
            fidelity,
            instance,
            formula,
            ja_big,
            ja_small,
            jb_small,
            jb_big,
            j_pos,
            j_neg,
            j_d,
            clause_d,
            clause_lits,
        }
    }

    /// The underlying formula.
    pub fn formula(&self) -> &Monotone3Sat22 {
        &self.formula
    }

    fn machine_clause_dummy(&self, c: usize) -> usize {
        c
    }
    fn machine_var_dummy(&self, x: usize) -> usize {
        self.formula.num_clauses() + x
    }
    fn machine_var_assignment(&self, x: usize) -> usize {
        self.formula.num_clauses() + self.formula.num_vars() + x
    }
    fn machine_clause_assignment(&self, c: usize) -> usize {
        self.formula.num_clauses() + 2 * self.formula.num_vars() + c
    }

    /// Total load minus machine-time capacity at makespan 4: strictly
    /// positive for [`Fidelity::Text`] on every non-empty formula (the
    /// erratum certificate), non-positive for [`Fidelity::Repaired`].
    pub fn capacity_deficit(&self) -> i64 {
        let load = self.instance.total_load() as i64;
        let cap = 4 * self.instance.machines() as i64;
        load - cap
    }

    /// The always-feasible makespan-5 schedule (Lemma 24, easy direction).
    pub fn schedule_makespan5(&self) -> Schedule {
        let n = self.instance.num_jobs();
        let mut asg = vec![
            Assignment {
                machine: 0,
                start: 0
            };
            n
        ];
        let nc = self.formula.num_clauses();
        let nx = self.formula.num_vars();
        // Clause dummies: jA [0,3), ja [3,4).
        for c in 0..nc {
            let q = self.machine_clause_dummy(c);
            asg[self.ja_big[c]] = Assignment {
                machine: q,
                start: 0,
            };
            asg[self.ja_small[c]] = Assignment {
                machine: q,
                start: 3,
            };
        }
        // Variable dummies: jb [0,2), jB [2,4).
        for x in 0..nx {
            let q = self.machine_var_dummy(x);
            asg[self.jb_small[x]] = Assignment {
                machine: q,
                start: 0,
            };
            asg[self.jb_big[x]] = Assignment {
                machine: q,
                start: 2,
            };
        }
        // Variable assignment machines: j_dx [0,1), j_x [3,4), j_x̄ [4,5) —
        // variable jobs run after every clause literal job, so no V conflict.
        for x in 0..nx {
            let q = self.machine_var_assignment(x);
            asg[self.j_d[x]] = Assignment {
                machine: q,
                start: 0,
            };
            asg[self.j_pos[x]] = Assignment {
                machine: q,
                start: 3,
            };
            asg[self.j_neg[x]] = Assignment {
                machine: q,
                start: 4,
            };
        }
        // Clause assignment machines: literals [0,1),[1,2),[2,3); j^c_d last
        // (where it also avoids its A_c anchor).
        for c in 0..nc {
            let q = self.machine_clause_assignment(c);
            for (slot, &lit) in self.clause_lits[c].iter().enumerate() {
                asg[lit] = Assignment {
                    machine: q,
                    start: slot as Time,
                };
            }
            let d_start = match self.fidelity {
                Fidelity::Text => 3,     // [3,5) avoids jA_c = [0,3)
                Fidelity::Repaired => 4, // [4,5) avoids ja_c = [3,4)
            };
            asg[self.clause_d[c]] = Assignment {
                machine: q,
                start: d_start,
            };
        }
        Schedule::new(asg)
    }

    /// The makespan-4 schedule from a satisfying assignment (Lemma 24, hard
    /// direction). Only constructible for [`Fidelity::Repaired`]; the text
    /// gadget returns the capacity certificate.
    pub fn schedule_makespan4(&self, assignment: &[bool]) -> Result<Schedule, Makespan4Error> {
        if self.fidelity == Fidelity::Text {
            let load = self.instance.total_load();
            let cap = 4 * self.instance.machines() as Time;
            return Err(Makespan4Error::OverCapacity(load, cap));
        }
        for (c, cl) in self.formula.cnf.clauses.iter().enumerate() {
            if !cl.iter().any(|l| l.eval(assignment)) {
                return Err(Makespan4Error::UnsatisfiedClause(c));
            }
        }
        let n = self.instance.num_jobs();
        let mut asg = vec![
            Assignment {
                machine: 0,
                start: 0
            };
            n
        ];
        let nc = self.formula.num_clauses();
        let nx = self.formula.num_vars();
        // Dummies exactly as in the 5-schedule (they fill [0,4) per machine).
        for c in 0..nc {
            let q = self.machine_clause_dummy(c);
            asg[self.ja_big[c]] = Assignment {
                machine: q,
                start: 0,
            };
            asg[self.ja_small[c]] = Assignment {
                machine: q,
                start: 3,
            };
        }
        for x in 0..nx {
            let q = self.machine_var_dummy(x);
            asg[self.jb_small[x]] = Assignment {
                machine: q,
                start: 0,
            };
            asg[self.jb_big[x]] = Assignment {
                machine: q,
                start: 2,
            };
        }
        // Variable assignment machines: j_dx [0,1); the TRUE-valued literal's
        // job at [1,2), the false one at [2,3) (X_x serializes all three).
        for x in 0..nx {
            let q = self.machine_var_assignment(x);
            asg[self.j_d[x]] = Assignment {
                machine: q,
                start: 0,
            };
            let (first, second) = if assignment[x] {
                (self.j_pos[x], self.j_neg[x])
            } else {
                (self.j_neg[x], self.j_pos[x])
            };
            asg[first] = Assignment {
                machine: q,
                start: 1,
            };
            asg[second] = Assignment {
                machine: q,
                start: 2,
            };
        }
        // Clause assignment machines: serialize {j^c_d, ℓ1, ℓ2, ℓ3} into the
        // unit slots of [0,4) such that
        //   * j^c_d avoids [3,4) (its A_c anchor ja_c sits there), and
        //   * a TRUE literal job avoids [1,2) (where its variable job runs),
        //     a FALSE literal job avoids [2,3).
        for (c, cl) in self.formula.cnf.clauses.iter().enumerate() {
            let q = self.machine_clause_assignment(c);
            let truth: Vec<bool> = cl.iter().map(|l| l.eval(assignment)).collect();
            let t = truth.iter().filter(|&&b| b).count();
            debug_assert!(t >= 1, "clause satisfied was checked");
            // Slot plan by the number of true literals.
            let mut order: Vec<usize> = (0..3).collect();
            order.sort_by_key(|&i| !truth[i]); // true literals first
            let (d_slot, lit_slots): (Time, [Time; 3]) = match t {
                1 => (2, [3, 0, 1]), // true→[3,4); falses→[0,1),[1,2)
                2 => (2, [3, 0, 1]), // trues→[3,4),[0,1); false→[1,2)
                _ => (1, [0, 2, 3]), // all true → d at [1,2)
            };
            asg[self.clause_d[c]] = Assignment {
                machine: q,
                start: d_slot,
            };
            for (rank, &i) in order.iter().enumerate() {
                asg[self.clause_lits[c][i]] = Assignment {
                    machine: q,
                    start: lit_slots[rank],
                };
            }
        }
        Ok(Schedule::new(asg))
    }

    /// Reads the encoded assignment back out of a schedule: `x` is true iff
    /// `j_x` starts before `j_x̄` (Lemma 24's decoding).
    pub fn extract_assignment(&self, schedule: &Schedule) -> Vec<bool> {
        (0..self.formula.num_vars())
            .map(|x| {
                schedule.assignment(self.j_pos[x]).start < schedule.assignment(self.j_neg[x]).start
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{validate_multi, MultiMakespan};
    use crate::sat::dpll;

    fn formulas() -> Vec<Monotone3Sat22> {
        (0..8u64)
            .flat_map(|seed| [3usize, 6, 9].map(|nv| Monotone3Sat22::random(seed, nv)))
            .collect()
    }

    #[test]
    fn gadget_shape_matches_theorem() {
        for f in formulas() {
            let nc = f.num_clauses();
            let nx = f.num_vars();
            for fidelity in [Fidelity::Text, Fidelity::Repaired] {
                let r = Reduction::build(f.clone(), fidelity);
                assert_eq!(r.instance.machines(), 2 * nc + 2 * nx);
                assert!(r.instance.max_resources_per_job() <= 3);
                assert!(r.instance.jobs().iter().all(|j| (1..=3).contains(&j.size)));
            }
        }
    }

    #[test]
    fn text_gadget_is_over_capacity() {
        for f in formulas() {
            let nc = f.num_clauses() as i64;
            let nx = f.num_vars() as i64;
            let r = Reduction::build(f, Fidelity::Text);
            // Erratum certificate: deficit = |C| − |X| = |X|/3 > 0.
            assert_eq!(r.capacity_deficit(), nc - nx);
            assert!(r.capacity_deficit() > 0);
            assert!(matches!(
                r.schedule_makespan4(&[true; 3]),
                Err(Makespan4Error::OverCapacity(_, _))
            ));
        }
    }

    #[test]
    fn repaired_gadget_fits_capacity() {
        for f in formulas() {
            let r = Reduction::build(f, Fidelity::Repaired);
            assert!(r.capacity_deficit() <= 0);
        }
    }

    #[test]
    fn makespan5_schedule_is_always_valid() {
        for f in formulas() {
            for fidelity in [Fidelity::Text, Fidelity::Repaired] {
                let r = Reduction::build(f.clone(), fidelity);
                let s = r.schedule_makespan5();
                assert_eq!(validate_multi(&r.instance, &s), Ok(()), "{fidelity:?}");
                assert_eq!(s.makespan_multi(&r.instance), 5);
            }
        }
    }

    #[test]
    fn makespan4_from_satisfying_assignment() {
        let mut tested = 0;
        for f in formulas() {
            let Some(asg) = dpll(&f.cnf) else { continue };
            let r = Reduction::build(f, Fidelity::Repaired);
            let s = r.schedule_makespan4(&asg).expect("satisfying assignment");
            assert_eq!(validate_multi(&r.instance, &s), Ok(()));
            assert_eq!(s.makespan_multi(&r.instance), 4);
            // Round trip: the schedule encodes the assignment.
            assert_eq!(r.extract_assignment(&s), asg);
            tested += 1;
        }
        assert!(
            tested >= 5,
            "too few satisfiable formulas sampled: {tested}"
        );
    }

    #[test]
    fn makespan4_rejects_bad_assignment() {
        // Find a formula and an assignment violating some clause.
        for f in formulas() {
            let nv = f.num_vars();
            let r = Reduction::build(f.clone(), Fidelity::Repaired);
            let all_false = vec![false; nv];
            if !f.cnf.is_satisfied_by(&all_false) {
                assert!(matches!(
                    r.schedule_makespan4(&all_false),
                    Err(Makespan4Error::UnsatisfiedClause(_))
                ));
                return;
            }
        }
        panic!("every sampled formula satisfied by all-false?");
    }

    #[test]
    fn extraction_from_five_schedule_is_all_false() {
        // In the 5-schedule j_x [3,4) precedes j_x̄ [4,5): extraction reads
        // all-true; just pin the decoding convention.
        let f = Monotone3Sat22::random(1, 6);
        let r = Reduction::build(f, Fidelity::Repaired);
        let s = r.schedule_makespan5();
        let asg = r.extract_assignment(&s);
        assert!(asg.iter().all(|&b| b));
    }
}
