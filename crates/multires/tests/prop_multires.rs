//! Property tests for the multi-resource extension: the greedy scheduler is
//! always valid, the validator is exact, and the reduction constructions
//! hold across random formulas.

use msrs_multires::model::{greedy_multi, MultiMakespan};
use msrs_multires::{
    dpll, validate_multi, Fidelity, Monotone3Sat22, MultiInstance, MultiJob, Reduction,
};
use proptest::prelude::*;

fn arb_multi_instance() -> impl Strategy<Value = MultiInstance> {
    (
        1usize..=4,
        prop::collection::vec((0u64..=12, prop::collection::vec(0usize..8, 1..=3)), 1..=12),
    )
        .prop_map(|(m, jobs)| {
            let jobs = jobs
                .into_iter()
                .map(|(size, mut res)| {
                    res.sort_unstable();
                    res.dedup();
                    MultiJob::new(size, res)
                })
                .collect();
            MultiInstance::new(m, jobs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn greedy_multi_always_valid(inst in arb_multi_instance()) {
        let s = greedy_multi(&inst);
        prop_assert_eq!(validate_multi(&inst, &s), Ok(()));
        // Trivial area bound.
        let lb = inst.total_load().div_ceil(inst.machines() as u64);
        prop_assert!(s.makespan_multi(&inst) >= lb || inst.total_load() == 0);
    }

    #[test]
    fn greedy_respects_resource_serialization(inst in arb_multi_instance()) {
        // Jobs sharing resource 0 must serialize: makespan ≥ their total.
        let s = greedy_multi(&inst);
        let contended: u64 = inst
            .jobs()
            .iter()
            .filter(|j| j.resources.contains(&0))
            .map(|j| j.size)
            .sum();
        prop_assert!(s.makespan_multi(&inst) >= contended);
    }

    #[test]
    fn reduction_constructions_hold(seed in 0u64..200, nx_pick in 0usize..3) {
        let nx = [3usize, 6, 9][nx_pick];
        let f = Monotone3Sat22::random(seed, nx);
        let red = Reduction::build(f.clone(), Fidelity::Repaired);
        let s5 = red.schedule_makespan5();
        prop_assert_eq!(validate_multi(&red.instance, &s5), Ok(()));
        prop_assert_eq!(s5.makespan_multi(&red.instance), 5);
        if let Some(asg) = dpll(&f.cnf) {
            let s4 = red.schedule_makespan4(&asg).expect("satisfying");
            prop_assert_eq!(validate_multi(&red.instance, &s4), Ok(()));
            prop_assert_eq!(s4.makespan_multi(&red.instance), 4);
            prop_assert_eq!(red.extract_assignment(&s4), asg);
        }
        // Erratum certificate on the text gadget.
        let text = Reduction::build(f, Fidelity::Text);
        prop_assert_eq!(text.capacity_deficit(), (nx / 3) as i64);
    }
}
