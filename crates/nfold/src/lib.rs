//! # msrs-nfold — generalized N-fold integer programming machinery
//!
//! The approximation schemes of the paper (§4) formulate the layered-schedule
//! problem as a *module configuration IP* and invoke N-fold integer
//! programming (Cslovjecsek et al., Theorem 22) as the solver oracle. This
//! crate reproduces that machinery as a working substrate:
//!
//! * [`NFoldIP`] — the block-structured program
//!   `min cᵀx  s.t.  Σᵢ Aᵢ xᵢ = b⁰,  Bᵢ xᵢ = bⁱ,  ℓ ≤ x ≤ u,  x ∈ ℤ^{Nt}`;
//! * [`NFoldIP::solve_bb`] — a direct branch-and-bound reference solver
//!   (complete; exponential, intended for small programs and as ground truth);
//! * [`NFoldIP::solve_augmentation`] — the augmentation solver of the N-fold
//!   literature: starting from a feasible point it repeatedly finds a
//!   cost-improving step `z` with `Bᵢ zᵢ = 0` and `Σᵢ Aᵢ zᵢ = 0` via a
//!   **dynamic program over bricks** whose state is the bounded partial sum
//!   of the globally coupled rows — exactly the structure behind the
//!   `2^{O(rs²)}(rs∆)^{O(r²s+s²)}` bounds the paper cites. With the default
//!   (safe) step box the candidate set contains `x* − x` for any improving
//!   `x*`, so augmentation provably terminates at an optimum; smaller boxes
//!   trade completeness for speed, as in the theory.
//!
//! The crate is self-contained (no scheduling types); `msrs-ptas` builds the
//! paper's IP (constraints (1)–(4)) on top of it, and the test-suite
//! cross-validates the two solvers on randomized programs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// A dense row-major integer matrix.
pub type Matrix = Vec<Vec<i64>>;

/// One candidate augmentation move of a single block:
/// `(z, A·z contribution, cost)`.
type LocalMove = (Vec<i64>, Vec<i64>, i64);

/// A generalized N-fold integer program.
///
/// Block `i` owns `t` variables `xᵢ ∈ ℤᵗ` with bounds `lower[i] ≤ xᵢ ≤
/// upper[i]`, local constraints `Bᵢ xᵢ = rhs_local[i]` (`s` rows), and all
/// blocks are coupled by `Σᵢ Aᵢ xᵢ = rhs_global` (`r` rows).
#[derive(Debug, Clone)]
pub struct NFoldIP {
    /// Globally coupled rows `r`.
    pub r: usize,
    /// Local rows per block `s`.
    pub s: usize,
    /// Variables per block `t`.
    pub t: usize,
    /// Per-block global coupling matrices `Aᵢ` (`r × t`).
    pub a: Vec<Matrix>,
    /// Per-block local matrices `Bᵢ` (`s × t`).
    pub b: Vec<Matrix>,
    /// Global right-hand side (`r`).
    pub rhs_global: Vec<i64>,
    /// Local right-hand sides (`N × s`).
    pub rhs_local: Vec<Vec<i64>>,
    /// Per-block lower bounds (`N × t`).
    pub lower: Vec<Vec<i64>>,
    /// Per-block upper bounds (`N × t`).
    pub upper: Vec<Vec<i64>>,
    /// Per-block costs (`N × t`), minimized.
    pub cost: Vec<Vec<i64>>,
}

/// A solution: per-block variable assignments and the objective value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// `x[i][j]` = value of variable `j` of block `i`.
    pub x: Vec<Vec<i64>>,
    /// `cᵀx`.
    pub objective: i64,
}

/// Search limits for the reference solver.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of DFS nodes.
    pub max_nodes: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_nodes: 50_000_000,
        }
    }
}

fn dot(row: &[i64], x: &[i64]) -> i64 {
    row.iter().zip(x).map(|(a, b)| a * b).sum()
}

impl NFoldIP {
    /// Number of blocks `N`.
    pub fn blocks(&self) -> usize {
        self.a.len()
    }

    /// Validates the shape of all matrices and vectors; call after manual
    /// construction. Panics with a description on shape mismatch.
    pub fn assert_shape(&self) {
        let n = self.blocks();
        assert_eq!(self.b.len(), n);
        assert_eq!(self.rhs_local.len(), n);
        assert_eq!(self.lower.len(), n);
        assert_eq!(self.upper.len(), n);
        assert_eq!(self.cost.len(), n);
        assert_eq!(self.rhs_global.len(), self.r);
        for i in 0..n {
            assert_eq!(self.a[i].len(), self.r, "A[{i}] row count");
            assert!(self.a[i].iter().all(|row| row.len() == self.t));
            assert_eq!(self.b[i].len(), self.s, "B[{i}] row count");
            assert!(self.b[i].iter().all(|row| row.len() == self.t));
            assert_eq!(self.rhs_local[i].len(), self.s);
            assert_eq!(self.lower[i].len(), self.t);
            assert_eq!(self.upper[i].len(), self.t);
            assert_eq!(self.cost[i].len(), self.t);
            assert!(self.lower[i]
                .iter()
                .zip(&self.upper[i])
                .all(|(l, u)| l <= u));
        }
    }

    /// Objective `cᵀx`.
    pub fn objective(&self, x: &[Vec<i64>]) -> i64 {
        x.iter().zip(&self.cost).map(|(xi, ci)| dot(ci, xi)).sum()
    }

    /// Checks feasibility of `x` exactly.
    pub fn is_feasible(&self, x: &[Vec<i64>]) -> bool {
        if x.len() != self.blocks() {
            return false;
        }
        for (i, xi) in x.iter().enumerate() {
            if xi.len() != self.t {
                return false;
            }
            if xi
                .iter()
                .zip(self.lower[i].iter().zip(&self.upper[i]))
                .any(|(v, (l, u))| v < l || v > u)
            {
                return false;
            }
            for (row, rhs) in self.b[i].iter().zip(&self.rhs_local[i]) {
                if dot(row, xi) != *rhs {
                    return false;
                }
            }
        }
        for (k, rhs) in self.rhs_global.iter().enumerate() {
            let sum: i64 = x
                .iter()
                .enumerate()
                .map(|(i, xi)| dot(&self.a[i][k], xi))
                .sum();
            if sum != *rhs {
                return false;
            }
        }
        true
    }

    /// Direct branch-and-bound over the flattened variables: complete
    /// optimization (or pure feasibility with `optimize = false`). Returns
    /// `None` if infeasible, `Err`-like `None` on node exhaustion is
    /// distinguished via [`BbOutcome`].
    pub fn solve_bb(&self, limits: Limits) -> BbOutcome {
        self.assert_shape();
        let n = self.blocks();
        // Precompute per-variable min/max contributions for pruning.
        let mut state = BbState {
            ip: self,
            x: vec![vec![0; self.t]; n],
            best: None,
            nodes: 0,
            max_nodes: limits.max_nodes,
            overflow: false,
            global_partial: self.rhs_global.clone(),
        };
        state.dfs(0, 0);
        if state.overflow {
            return BbOutcome::NodeBudgetExhausted;
        }
        match state.best {
            Some((objective, x)) => BbOutcome::Optimal(Solution { x, objective }),
            None => BbOutcome::Infeasible,
        }
    }

    /// The N-fold augmentation solver. Starting from `start` (must be
    /// feasible), repeatedly finds an improving step via the brick DP and
    /// applies it with the maximal step length. `step_box` bounds the per
    /// coordinate magnitude of candidate steps (`None` = the full variable
    /// range, which makes the procedure complete); smaller values mirror the
    /// Graver-norm truncation of the theory.
    ///
    /// Returns the reached solution (an optimum when `step_box` is `None`).
    pub fn solve_augmentation(&self, start: Vec<Vec<i64>>, step_box: Option<i64>) -> Solution {
        self.assert_shape();
        assert!(
            self.is_feasible(&start),
            "augmentation requires a feasible start"
        );
        let mut x = start;
        let gamma = step_box.unwrap_or_else(|| {
            (0..self.blocks())
                .flat_map(|i| (0..self.t).map(move |j| (i, j)))
                .map(|(i, j)| self.upper[i][j] - self.lower[i][j])
                .max()
                .unwrap_or(0)
        });
        loop {
            match self.find_improving_step(&x, gamma) {
                Some(step) => {
                    // Maximal step length keeping bounds (equalities are
                    // preserved automatically since A·step = 0, B·step = 0).
                    let mut lambda = i64::MAX;
                    for i in 0..self.blocks() {
                        for j in 0..self.t {
                            let z = step[i][j];
                            match z.cmp(&0) {
                                std::cmp::Ordering::Greater => {
                                    lambda = lambda.min((self.upper[i][j] - x[i][j]) / z);
                                }
                                std::cmp::Ordering::Less => {
                                    lambda = lambda.min((x[i][j] - self.lower[i][j]) / (-z));
                                }
                                std::cmp::Ordering::Equal => {}
                            }
                        }
                    }
                    debug_assert!(lambda >= 1);
                    for (xi, si) in x.iter_mut().zip(&step) {
                        for (xv, sv) in xi.iter_mut().zip(si) {
                            *xv += lambda * sv;
                        }
                    }
                    debug_assert!(self.is_feasible(&x));
                }
                None => {
                    let objective = self.objective(&x);
                    return Solution { x, objective };
                }
            }
        }
    }

    /// Enumerate the local kernel moves of block `i`: all `z ∈ [-γ, γ]ᵗ`
    /// with `Bᵢ z = 0` and `x + z` within bounds, together with their cost
    /// and global contribution `Aᵢ z`.
    fn local_moves(&self, i: usize, x: &[i64], gamma: i64) -> Vec<LocalMove> {
        let mut out = Vec::new();
        let mut z = vec![0i64; self.t];
        self.local_moves_rec(i, x, gamma, 0, &mut z, &mut out);
        out
    }

    fn local_moves_rec(
        &self,
        i: usize,
        x: &[i64],
        gamma: i64,
        j: usize,
        z: &mut Vec<i64>,
        out: &mut Vec<LocalMove>,
    ) {
        if j == self.t {
            if self.b[i].iter().all(|row| dot(row, z) == 0) {
                let contrib: Vec<i64> = (0..self.r).map(|k| dot(&self.a[i][k], z)).collect();
                let cost = dot(&self.cost[i], z);
                out.push((z.clone(), contrib, cost));
            }
            return;
        }
        let lo = (-gamma).max(self.lower[i][j] - x[j]);
        let hi = gamma.min(self.upper[i][j] - x[j]);
        for v in lo..=hi {
            z[j] = v;
            self.local_moves_rec(i, x, gamma, j + 1, z, out);
        }
        z[j] = 0;
    }

    /// The brick DP: find a step `z` with `Σᵢ Aᵢ zᵢ = 0`, `Bᵢ zᵢ = 0`,
    /// `x + z` in bounds and `cᵀz < 0`, minimizing `cᵀz` per partial-sum
    /// state. Returns `None` when no improving step exists within `γ`.
    fn find_improving_step(&self, x: &[Vec<i64>], gamma: i64) -> Option<Vec<Vec<i64>>> {
        type State = Vec<i64>;
        // dp: partial global sum → (cost, per-block choices index trail)
        let mut dp: HashMap<State, (i64, Vec<usize>)> = HashMap::new();
        dp.insert(vec![0; self.r], (0, Vec::new()));
        let mut all_moves: Vec<Vec<LocalMove>> = Vec::new();
        for (i, xi) in x.iter().enumerate() {
            let moves = self.local_moves(i, xi, gamma);
            let mut next: HashMap<State, (i64, Vec<usize>)> = HashMap::new();
            for (state, (cost, trail)) in &dp {
                for (mi, (_, contrib, mcost)) in moves.iter().enumerate() {
                    let mut ns = state.clone();
                    for (a, c) in ns.iter_mut().zip(contrib) {
                        *a += c;
                    }
                    let ncost = cost + mcost;
                    let entry = next.entry(ns).or_insert((i64::MAX, Vec::new()));
                    if ncost < entry.0 {
                        let mut nt = trail.clone();
                        nt.push(mi);
                        *entry = (ncost, nt);
                    }
                }
            }
            all_moves.push(moves);
            dp = next;
        }
        let zero = vec![0i64; self.r];
        let (cost, trail) = dp.get(&zero)?;
        if *cost >= 0 {
            return None;
        }
        let step: Vec<Vec<i64>> = trail
            .iter()
            .enumerate()
            .map(|(i, &mi)| all_moves[i][mi].0.clone())
            .collect();
        Some(step)
    }

    /// Finds *some* feasible solution via the reference search (minimizing
    /// nothing), handy as an augmentation start.
    pub fn any_feasible(&self, limits: Limits) -> Option<Vec<Vec<i64>>> {
        let mut zeroed = self.clone();
        for c in &mut zeroed.cost {
            c.fill(0);
        }
        match zeroed.solve_bb(limits) {
            BbOutcome::Optimal(s) => Some(s.x),
            _ => None,
        }
    }
}

/// Outcome of the reference branch-and-bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BbOutcome {
    /// Proven optimum.
    Optimal(Solution),
    /// Proven infeasible.
    Infeasible,
    /// Node budget exhausted before a proof.
    NodeBudgetExhausted,
}

impl BbOutcome {
    /// The solution, if optimal.
    pub fn optimal(self) -> Option<Solution> {
        match self {
            BbOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

struct BbState<'a> {
    ip: &'a NFoldIP,
    x: Vec<Vec<i64>>,
    best: Option<(i64, Vec<Vec<i64>>)>,
    nodes: u64,
    max_nodes: u64,
    overflow: bool,
    /// Remaining global rhs (rhs_global − A·(assigned prefix)).
    global_partial: Vec<i64>,
}

impl BbState<'_> {
    /// Remaining-range reachability check for the global rows plus the local
    /// rows of the current block; prunes impossible prefixes.
    fn can_reach(&self, block: usize, var: usize) -> bool {
        let ip = self.ip;
        // Global rows: can the remaining variables bridge the residual?
        for k in 0..ip.r {
            let mut min_rest = 0i64;
            let mut max_rest = 0i64;
            for i in block..ip.blocks() {
                let j0 = if i == block { var } else { 0 };
                for j in j0..ip.t {
                    let a = ip.a[i][k][j];
                    let (lo, hi) = (ip.lower[i][j], ip.upper[i][j]);
                    if a >= 0 {
                        min_rest += a * lo;
                        max_rest += a * hi;
                    } else {
                        min_rest += a * hi;
                        max_rest += a * lo;
                    }
                }
            }
            let need = self.global_partial[k];
            if need < min_rest || need > max_rest {
                return false;
            }
        }
        // Local rows of the current block.
        if block < ip.blocks() {
            for (row, rhs) in ip.b[block].iter().zip(&ip.rhs_local[block]) {
                let assigned: i64 = (0..var).map(|j| row[j] * self.x[block][j]).sum();
                let mut min_rest = 0i64;
                let mut max_rest = 0i64;
                for (j, &a) in row.iter().enumerate().take(ip.t).skip(var) {
                    let (lo, hi) = (ip.lower[block][j], ip.upper[block][j]);
                    if a >= 0 {
                        min_rest += a * lo;
                        max_rest += a * hi;
                    } else {
                        min_rest += a * hi;
                        max_rest += a * lo;
                    }
                }
                let need = rhs - assigned;
                if need < min_rest || need > max_rest {
                    return false;
                }
            }
        }
        true
    }

    fn cost_lower_bound(&self, block: usize, var: usize) -> i64 {
        let ip = self.ip;
        let mut assigned = 0i64;
        for i in 0..ip.blocks() {
            for j in 0..ip.t {
                if i < block || (i == block && j < var) {
                    assigned += ip.cost[i][j] * self.x[i][j];
                }
            }
        }
        let mut rest = 0i64;
        for i in block..ip.blocks() {
            let j0 = if i == block { var } else { 0 };
            for j in j0..ip.t {
                let c = ip.cost[i][j];
                rest += if c >= 0 {
                    c * ip.lower[i][j]
                } else {
                    c * ip.upper[i][j]
                };
            }
        }
        assigned + rest
    }

    fn dfs(&mut self, block: usize, var: usize) {
        if self.overflow {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.overflow = true;
            return;
        }
        let ip = self.ip;
        if block == ip.blocks() {
            // All assigned; global_partial must be zero (checked by pruning,
            // but verify exactly).
            if self.global_partial.iter().all(|&v| v == 0) {
                let obj = ip.objective(&self.x);
                if self.best.as_ref().is_none_or(|(b, _)| obj < *b) {
                    self.best = Some((obj, self.x.clone()));
                }
            }
            return;
        }
        let (nb, nv) = if var + 1 == ip.t {
            (block + 1, 0)
        } else {
            (block, var + 1)
        };
        if !self.can_reach(block, var) {
            return;
        }
        if let Some((b, _)) = &self.best {
            if self.cost_lower_bound(block, var) >= *b {
                return;
            }
        }
        let block_completes = var + 1 == ip.t;
        for v in ip.lower[block][var]..=ip.upper[block][var] {
            self.x[block][var] = v;
            for k in 0..ip.r {
                self.global_partial[k] -= ip.a[block][k][var] * v;
            }
            // Exact local-row check when this assignment completes the block.
            let locals_ok = !block_completes
                || ip.b[block]
                    .iter()
                    .zip(&ip.rhs_local[block])
                    .all(|(row, rhs)| dot(row, &self.x[block]) == *rhs);
            if locals_ok {
                self.dfs(nb, nv);
            }
            for k in 0..ip.r {
                self.global_partial[k] += ip.a[block][k][var] * v;
            }
        }
        self.x[block][var] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// min x1 + 2·x2 s.t. x1 + x2 = 5 (two blocks, one var each, no locals).
    fn simple_ip() -> NFoldIP {
        NFoldIP {
            r: 1,
            s: 0,
            t: 1,
            a: vec![vec![vec![1]], vec![vec![1]]],
            b: vec![vec![], vec![]],
            rhs_global: vec![5],
            rhs_local: vec![vec![], vec![]],
            lower: vec![vec![0], vec![0]],
            upper: vec![vec![5], vec![5]],
            cost: vec![vec![1], vec![2]],
        }
    }

    #[test]
    fn bb_solves_simple_program() {
        let sol = simple_ip().solve_bb(Limits::default()).optimal().unwrap();
        assert_eq!(sol.objective, 5); // x1 = 5, x2 = 0
        assert_eq!(sol.x, vec![vec![5], vec![0]]);
    }

    #[test]
    fn bb_detects_infeasibility() {
        let mut ip = simple_ip();
        ip.rhs_global = vec![11]; // max achievable is 10
        assert_eq!(ip.solve_bb(Limits::default()), BbOutcome::Infeasible);
    }

    #[test]
    fn bb_respects_node_budget() {
        let ip = simple_ip();
        assert_eq!(
            ip.solve_bb(Limits { max_nodes: 1 }),
            BbOutcome::NodeBudgetExhausted
        );
    }

    #[test]
    fn augmentation_reaches_bb_optimum() {
        let ip = simple_ip();
        let start = ip.any_feasible(Limits::default()).unwrap();
        let sol = ip.solve_augmentation(start, None);
        assert_eq!(sol.objective, 5);
        assert!(ip.is_feasible(&sol.x));
    }

    /// A program with local constraints: each block has (x, y) with
    /// x − y = 0 locally (so x = y), coupling Σ x = 4, cost block0: 3x+0y,
    /// block1: x+0y → optimum puts everything in block 1.
    fn local_ip() -> NFoldIP {
        NFoldIP {
            r: 1,
            s: 1,
            t: 2,
            a: vec![vec![vec![1, 0]], vec![vec![1, 0]]],
            b: vec![vec![vec![1, -1]], vec![vec![1, -1]]],
            rhs_global: vec![4],
            rhs_local: vec![vec![0], vec![0]],
            lower: vec![vec![0, 0], vec![0, 0]],
            upper: vec![vec![4, 4], vec![4, 4]],
            cost: vec![vec![3, 0], vec![1, 0]],
        }
    }

    #[test]
    fn locals_are_enforced() {
        let sol = local_ip().solve_bb(Limits::default()).optimal().unwrap();
        assert_eq!(sol.objective, 4);
        assert_eq!(sol.x, vec![vec![0, 0], vec![4, 4]]);
        assert!(local_ip().is_feasible(&sol.x));
    }

    #[test]
    fn augmentation_handles_locals() {
        let ip = local_ip();
        // Feasible but expensive start: everything in block 0.
        let start = vec![vec![4, 4], vec![0, 0]];
        assert!(ip.is_feasible(&start));
        let sol = ip.solve_augmentation(start, None);
        assert_eq!(sol.objective, 4);
    }

    #[test]
    fn truncated_step_box_may_stall_but_stays_feasible() {
        let ip = local_ip();
        let start = vec![vec![4, 4], vec![0, 0]];
        let sol = ip.solve_augmentation(start.clone(), Some(1));
        assert!(ip.is_feasible(&sol.x));
        assert!(sol.objective <= ip.objective(&start));
    }

    #[test]
    fn is_feasible_catches_violations() {
        let ip = local_ip();
        assert!(!ip.is_feasible(&[vec![1, 0], vec![3, 3]])); // local broken
        assert!(!ip.is_feasible(&[vec![1, 1], vec![2, 2]])); // global broken (3≠4)
        assert!(!ip.is_feasible(&[vec![5, 5], vec![0, 0]])); // wait: 5 > upper 4
        assert!(ip.is_feasible(&[vec![1, 1], vec![3, 3]]));
    }

    #[test]
    fn negative_coefficients_work() {
        // Σ (x1 − x2) = 0 with block locals none; cost minimizes x1 of blk 0.
        let ip = NFoldIP {
            r: 1,
            s: 0,
            t: 2,
            a: vec![vec![vec![1, -1]], vec![vec![1, -1]]],
            b: vec![vec![], vec![]],
            rhs_global: vec![1],
            rhs_local: vec![vec![], vec![]],
            lower: vec![vec![0, 0], vec![0, 0]],
            upper: vec![vec![3, 3], vec![3, 3]],
            cost: vec![vec![1, 1], vec![1, 1]],
        };
        let sol = ip.solve_bb(Limits::default()).optimal().unwrap();
        assert_eq!(sol.objective, 1); // e.g. x = (1,0),(0,0)
        assert!(ip.is_feasible(&sol.x));
    }
}
