//! Cross-validation of the augmentation solver against the reference
//! branch-and-bound on randomized small N-fold programs, plus brute-force
//! audit of the branch-and-bound itself.

use msrs_nfold::{BbOutcome, Limits, NFoldIP};
use proptest::prelude::*;

/// Random small N-fold IP: N ∈ [1,3] blocks, t ∈ [1,3] vars, r ∈ [0,2]
/// global rows, s ∈ [0,1] local rows, coefficients in [-2, 2], bounds in
/// [0, 3]. RHS values are generated from a random feasible point so that
/// most programs are feasible.
fn arb_ip() -> impl Strategy<Value = NFoldIP> {
    (
        1usize..=3, // blocks
        1usize..=3, // t
        0usize..=2, // r
        0usize..=1, // s
        any::<u64>(),
    )
        .prop_map(|(n, t, r, s, seed)| {
            // xorshift for deterministic coefficient generation
            let mut state = seed | 1;
            let mut next = move |m: i64| -> i64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % (2 * m as u64 + 1)) as i64 - m
            };
            let a: Vec<Vec<Vec<i64>>> = (0..n)
                .map(|_| {
                    (0..r)
                        .map(|_| (0..t).map(|_| next(2)).collect::<Vec<i64>>())
                        .collect()
                })
                .collect();
            let b: Vec<Vec<Vec<i64>>> = (0..n)
                .map(|_| {
                    (0..s)
                        .map(|_| (0..t).map(|_| next(2)).collect::<Vec<i64>>())
                        .collect()
                })
                .collect();
            let lower = vec![vec![0i64; t]; n];
            let upper = vec![vec![3i64; t]; n];
            let cost: Vec<_> = (0..n)
                .map(|_| (0..t).map(|_| next(3)).collect::<Vec<_>>())
                .collect();
            // Feasible seed point → consistent RHS.
            let x0: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..t).map(|_| next(3).rem_euclid(4)).collect())
                .collect();
            let rhs_global: Vec<i64> = (0..r)
                .map(|k| {
                    (0..n)
                        .map(|i| {
                            (0..t)
                                .map(|j| {
                                    let aij: &Vec<i64> = &a[i][k];
                                    aij[j] * x0[i][j]
                                })
                                .sum::<i64>()
                        })
                        .sum()
                })
                .collect();
            let rhs_local: Vec<Vec<i64>> = (0..n)
                .map(|i| {
                    (0..s)
                        .map(|k| {
                            let bik: &Vec<i64> = &b[i][k];
                            (0..t).map(|j| bik[j] * x0[i][j]).sum()
                        })
                        .collect()
                })
                .collect();
            NFoldIP {
                r,
                s,
                t,
                a,
                b,
                rhs_global,
                rhs_local,
                lower,
                upper,
                cost,
            }
        })
}

/// Brute force optimum by full enumeration (bounds are tiny).
fn brute_force(ip: &NFoldIP) -> Option<i64> {
    let n = ip.blocks();
    let total = n * ip.t;
    let mut best: Option<i64> = None;
    let mut x = vec![vec![0i64; ip.t]; n];
    fn rec(ip: &NFoldIP, idx: usize, total: usize, x: &mut Vec<Vec<i64>>, best: &mut Option<i64>) {
        if idx == total {
            if ip.is_feasible(x) {
                let obj = ip.objective(x);
                if best.is_none() || obj < best.unwrap() {
                    *best = Some(obj);
                }
            }
            return;
        }
        let (i, j) = (idx / ip.t, idx % ip.t);
        for v in ip.lower[i][j]..=ip.upper[i][j] {
            x[i][j] = v;
            rec(ip, idx + 1, total, x, best);
        }
        x[i][j] = 0;
    }
    rec(ip, 0, total, &mut x, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bb_matches_brute_force(ip in arb_ip()) {
        let bf = brute_force(&ip);
        match ip.solve_bb(Limits::default()) {
            BbOutcome::Optimal(sol) => {
                prop_assert!(ip.is_feasible(&sol.x));
                prop_assert_eq!(Some(sol.objective), bf);
            }
            BbOutcome::Infeasible => prop_assert_eq!(bf, None),
            BbOutcome::NodeBudgetExhausted => prop_assert!(false, "budget too small"),
        }
    }

    #[test]
    fn augmentation_matches_bb_optimum(ip in arb_ip()) {
        if let Some(start) = ip.any_feasible(Limits::default()) {
            let aug = ip.solve_augmentation(start, None);
            prop_assert!(ip.is_feasible(&aug.x));
            let bb = ip.solve_bb(Limits::default()).optimal().expect("feasible");
            prop_assert_eq!(aug.objective, bb.objective);
        }
    }

    #[test]
    fn truncated_augmentation_is_sound(ip in arb_ip()) {
        if let Some(start) = ip.any_feasible(Limits::default()) {
            let start_obj = ip.objective(&start);
            let aug = ip.solve_augmentation(start, Some(1));
            prop_assert!(ip.is_feasible(&aug.x));
            prop_assert!(aug.objective <= start_obj);
        }
    }
}
