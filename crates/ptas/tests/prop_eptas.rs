//! Property and ground-truth tests for the EPTAS drivers:
//! * every output schedule is valid (both variants, arbitrary instances);
//! * the augmented variant never uses more than `m + ⌊εm⌋` machines;
//! * against exact OPT on small instances, the achieved ratio stays within
//!   the `(1+O(ε))` envelope (with the documented additive slack for tiny
//!   processing times).

use msrs_core::{bounds::lower_bound, validate, Instance};
use msrs_exact::{optimal, SolveLimits};
use msrs_ptas::{eptas_augmented, eptas_fixed_m, EptasConfig};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        1usize..=4,
        prop::collection::vec(prop::collection::vec(1u64..=40, 1..=4), 1..=7),
    )
        .prop_map(|(m, classes)| Instance::from_classes(m, &classes).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fixed_m_always_valid(inst in arb_instance()) {
        let cfg = EptasConfig { eps_k: 2, node_budget: 200_000 };
        let out = eptas_fixed_m(&inst, cfg);
        prop_assert_eq!(out.instance.machines(), inst.machines());
        prop_assert_eq!(validate(&out.instance, &out.schedule), Ok(()));
        prop_assert!(out.makespan() >= lower_bound(&inst) || out.makespan() == 0);
    }

    #[test]
    fn augmented_always_valid_and_bounded_machines(inst in arb_instance()) {
        let cfg = EptasConfig { eps_k: 2, node_budget: 200_000 };
        let out = eptas_augmented(&inst, cfg);
        let m = inst.machines();
        prop_assert_eq!(out.instance.machines(), m + m / 2);
        prop_assert_eq!(validate(&out.instance, &out.schedule), Ok(()));
        prop_assert!(out.schedule.machines_used(&out.instance) <= m + m / 2);
    }
}

#[test]
fn ratio_envelope_against_exact_opt() {
    // Structured small instances with sizes large enough that the additive
    // layer slack is second-order. For each, compare against true OPT.
    let shapes: Vec<(usize, Vec<Vec<u64>>)> = vec![
        (2, vec![vec![80, 40], vec![60, 60], vec![100]]),
        (2, vec![vec![120], vec![90, 30], vec![60, 60]]),
        (3, vec![vec![100], vec![100], vec![100], vec![50, 50]]),
        (2, vec![vec![70, 70], vec![70], vec![70]]),
        (3, vec![vec![90, 30], vec![80, 40], vec![60, 60], vec![120]]),
    ];
    for (m, classes) in shapes {
        let inst = Instance::from_classes(m, &classes).unwrap();
        let opt = optimal(&inst, SolveLimits::default())
            .expect("small")
            .makespan;
        for k in [2u64, 3, 4] {
            let cfg = EptasConfig {
                eps_k: k,
                node_budget: 2_000_000,
            };
            let out = eptas_fixed_m(&inst, cfg);
            assert_eq!(validate(&out.instance, &out.schedule), Ok(()));
            let ratio = out.makespan() as f64 / opt as f64;
            // (1 + O(ε)) with the small-T additive slack: generous envelope.
            let cap = 1.0 + 8.0 / k as f64;
            assert!(
                ratio <= cap,
                "m={m} k={k}: ratio {ratio:.3} exceeds {cap:.3} (opt={opt}, got={})",
                out.makespan()
            );
            assert!(
                out.t_star <= opt || !out.guarantee_intact,
                "accepted guess {} exceeds OPT {opt} without a flag",
                out.t_star
            );
        }
    }
}

#[test]
fn epsilon_monotonicity_in_expectation() {
    // Tighter ε should not systematically worsen quality: compare summed
    // makespans over a deterministic family.
    let mut sum_k2 = 0u64;
    let mut sum_k4 = 0u64;
    for seed in 0..6u64 {
        let inst = msrs_gen::uniform(seed, 3, 14, 6, 20, 90);
        let a = eptas_fixed_m(
            &inst,
            EptasConfig {
                eps_k: 2,
                node_budget: 500_000,
            },
        );
        let b = eptas_fixed_m(
            &inst,
            EptasConfig {
                eps_k: 4,
                node_budget: 500_000,
            },
        );
        assert_eq!(validate(&a.instance, &a.schedule), Ok(()));
        assert_eq!(validate(&b.instance, &b.schedule), Ok(()));
        sum_k2 += a.makespan();
        sum_k4 += b.makespan();
    }
    assert!(
        sum_k4 <= sum_k2 + sum_k2 / 4,
        "ε=1/4 ({sum_k4}) much worse than ε=1/2 ({sum_k2})"
    );
}
