//! Property tests for the EPTAS parameter machinery (§4.1): the pigeonhole
//! δ-choice must satisfy its mass conditions whenever it reports success,
//! and the derived quantities must obey the relations the reconstruction
//! relies on.

use msrs_core::{Instance, Time};
use msrs_ptas::{build_params, choose_delta, SizeClass};
use proptest::prelude::*;

fn arb_instance_and_t() -> impl Strategy<Value = (Instance, Time)> {
    (
        1usize..=4,
        prop::collection::vec(prop::collection::vec(1u64..=60, 1..=5), 1..=8),
    )
        .prop_map(|(m, classes)| {
            let inst = Instance::from_classes(m, &classes).expect("valid");
            let t = msrs_core::bounds::lower_bound(&inst).max(1);
            (inst, t)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn delta_choice_conditions_hold_when_reported((inst, t) in arb_instance_and_t(), k in 2u64..=6) {
        for augmented in [false, true] {
            let choice = choose_delta(&inst, t, k, augmented);
            prop_assert!(choice.den >= k as u128, "δ must be ≤ ε");
            if !choice.conditions_met {
                continue; // fallback path, no promise
            }
            // Recompute the masses at the chosen δ and check the §4.1 bounds.
            let den = choice.den;
            let k2 = (k as u128) * (k as u128);
            let t128 = t as u128;
            let mut medium: u64 = 0;
            let mut cond2: u64 = 0;
            for c in inst.nonempty_classes() {
                let mut small = 0u64;
                for &j in inst.class_jobs(c) {
                    let p = inst.size(j) as u128;
                    if p * den > t128 {
                        // big
                    } else if p * den * k2 > t128 {
                        medium += inst.size(j);
                    } else {
                        small += inst.size(j);
                    }
                }
                let s = small as u128;
                if s * den <= t128 && s * den * k2 > t128 {
                    cond2 += small;
                }
            }
            let (m128, c128) = (medium as u128, cond2 as u128);
            if augmented {
                let m = inst.machines() as u128;
                prop_assert!(m128 * k2 <= m * t128, "medium mass condition");
                prop_assert!(c128 * k2 <= m * t128, "condition-2 mass");
            } else {
                prop_assert!(m128 * (k as u128) <= t128, "medium mass (fixed m)");
                prop_assert!(c128 * (k as u128) <= t128, "condition-2 (fixed m)");
            }
        }
    }

    #[test]
    fn derived_quantities_obey_reconstruction_relations((inst, t) in arb_instance_and_t(), k in 2u64..=6) {
        let p = build_params(&inst, t, k, true);
        // g ≥ 1; every small job fits the pad; the horizon covers (1+2ε)T.
        prop_assert!(p.g >= 1);
        for j in 0..inst.num_jobs() {
            if p.classify(inst.size(j)) == SizeClass::Small {
                prop_assert!(
                    inst.size(j) <= p.pad || inst.size(j) == 0 || p.pad == 0 && inst.size(j) == 0,
                    "small job {} exceeds pad {}",
                    inst.size(j),
                    p.pad
                );
            }
        }
        prop_assert!(
            (p.layers as u128) * (p.g as u128) * (p.k as u128)
                >= (t as u128) * (p.k as u128 + 2),
            "layer horizon must cover (1+2ε)T"
        );
        // Rounding: ⌈p/g⌉·g ≥ p and < p + g.
        for j in 0..inst.num_jobs() {
            if p.classify(inst.size(j)) == SizeClass::Big {
                let rounded = p.layers_of(inst.size(j)) * p.g;
                prop_assert!(rounded >= inst.size(j));
                prop_assert!(rounded < inst.size(j) + p.g);
            }
        }
    }

    #[test]
    fn classification_is_a_partition((inst, t) in arb_instance_and_t(), k in 2u64..=6) {
        let p = build_params(&inst, t, k, false);
        for j in 0..inst.num_jobs() {
            // classify is total and consistent with the threshold ordering:
            // Big > Medium > Small by size bands.
            let size = inst.size(j);
            let c = p.classify(size);
            if c == SizeClass::Big {
                prop_assert!((size as u128) * p.den > t as u128);
            }
            if c == SizeClass::Small {
                let k2 = (k as u128) * (k as u128);
                prop_assert!((size as u128) * p.den * k2 <= t as u128);
            }
        }
    }
}
