//! The EPTAS drivers (Theorem 14): binary search over the makespan guess,
//! simplification (Lemmas 15–17), layered solve (Lemma 18 / §4.2–4.3), and
//! reconstruction (Lemma 19).

use msrs_core::cancel::CancelToken;
use msrs_core::{
    bounds::lower_bound, validate, Assignment, ClassId, Instance, JobId, MachineId, Schedule, Time,
};

use crate::layered::{LayeredInstance, LayeredJobKind, LayeredOutcome};
use crate::params::{build_params, Params, SizeClass};

/// Configuration of an EPTAS run.
#[derive(Debug, Clone, Copy)]
pub struct EptasConfig {
    /// `ε = 1 / eps_k` (needs `eps_k ≥ 2`).
    pub eps_k: u64,
    /// Node budget for each exact layered decision; exhaustion is treated as
    /// "infeasible" and flagged in the outcome.
    pub node_budget: u64,
}

impl Default for EptasConfig {
    fn default() -> Self {
        EptasConfig {
            eps_k: 3,
            node_budget: 2_000_000,
        }
    }
}

/// Result of an EPTAS run.
#[derive(Debug, Clone)]
pub struct EptasOutcome {
    /// The instance the schedule addresses: identical to the input for
    /// [`eptas_fixed_m`]; `m + ⌊εm⌋` machines for [`eptas_augmented`].
    pub instance: Instance,
    /// The produced (valid) schedule.
    pub schedule: Schedule,
    /// The accepted makespan guess `T* ≤ OPT` (when `guarantee_intact`).
    pub t_star: Time,
    /// `ε = 1/eps_k` used.
    pub eps_k: u64,
    /// Whether every solver answer was proven and every pigeonhole condition
    /// met — i.e. the theoretical `(1+O(ε))` guarantee applies untouched.
    pub guarantee_intact: bool,
    /// Whether the `Algorithm_3/2` fallback schedule was returned.
    pub used_fallback: bool,
}

impl EptasOutcome {
    /// Makespan of the produced schedule.
    pub fn makespan(&self) -> Time {
        self.schedule.makespan(&self.instance)
    }
}

/// Per-guess simplification plan (Lemmas 15–17 bookkeeping).
struct Plan {
    big_jobs: Vec<JobId>,
    /// `(class, ⌈s_c/g⌉)` for heavy small loads.
    placeholders: Vec<(ClassId, u64)>,
    /// The small jobs to refill into the class's placeholder slots.
    slot_smalls: Vec<(ClassId, Vec<JobId>)>,
    /// `s_c ≤ µT` bundles appended inside the class's big-job window.
    micro_bundles: Vec<(ClassId, Vec<JobId>)>,
    /// Small-only classes with `s_c ≤ δT`, placed as whole blocks at the end
    /// of the least-loaded machines.
    filler_classes: Vec<Vec<JobId>>,
    /// Per-class glued bundles appended after the global makespan
    /// (light mediums + condition-2 small loads).
    end_bundles: Vec<Vec<JobId>>,
    /// Whole classes with medium load `> εT` (augmentation variant only).
    extra_classes: Vec<Vec<JobId>>,
}

fn build_plan(inst: &Instance, params: &Params, augmented: bool) -> Plan {
    let mut plan = Plan {
        big_jobs: Vec::new(),
        placeholders: Vec::new(),
        slot_smalls: Vec::new(),
        micro_bundles: Vec::new(),
        filler_classes: Vec::new(),
        end_bundles: Vec::new(),
        extra_classes: Vec::new(),
    };
    let t128 = params.t as u128;
    let k2 = (params.k as u128) * (params.k as u128);
    for c in inst.nonempty_classes() {
        let mut bigs = Vec::new();
        let mut mediums = Vec::new();
        let mut smalls = Vec::new();
        let mut s_c: Time = 0;
        let mut md_c: Time = 0;
        // Walk the class's parallel flat spans (sizes + job ids) directly
        // instead of chasing per-job lookups through the job table.
        for (&p, &j) in inst.class_sizes(c).iter().zip(inst.class_jobs(c)) {
            match params.classify(p) {
                SizeClass::Big => bigs.push(j),
                SizeClass::Medium => {
                    md_c += p;
                    mediums.push(j);
                }
                SizeClass::Small => {
                    s_c += p;
                    smalls.push(j);
                }
            }
        }
        if augmented && params.exceeds_eps_t(md_c) {
            // Lemma 16: the whole class moves to an augmentation machine.
            plan.extra_classes.push(inst.class_jobs(c).to_vec());
            continue;
        }
        let mut endb = mediums; // light mediums (or all mediums, fixed m)
        let s128 = s_c as u128;
        if s128 * params.den > t128 {
            // Heavy small load: placeholders, refilled after the solve.
            let n = s_c.div_ceil(params.g);
            plan.placeholders.push((c, n));
            plan.slot_smalls.push((c, smalls));
        } else if s128 * params.den * k2 > t128 {
            // Condition-2 band (µT, δT]: deferred to the end-append.
            endb.extend(smalls);
        } else if !smalls.is_empty() {
            if !bigs.is_empty() {
                // ≤ µT: fits the slack of the class's big-job window.
                plan.micro_bundles.push((c, smalls));
            } else {
                plan.filler_classes.push(smalls);
            }
        }
        plan.big_jobs.extend(bigs);
        if !endb.is_empty() {
            plan.end_bundles.push(endb);
        }
    }
    plan
}

fn job_load(inst: &Instance, jobs: &[JobId]) -> Time {
    jobs.iter().map(|&j| inst.size(j)).sum()
}

/// Reconstruction (Lemma 19): expand layers by `pad`, restore true sizes,
/// refill placeholder slots, then fillers, augmentation classes, and the
/// end-append bundles.
fn reconstruct(
    inst: &Instance,
    target_m: usize,
    params: &Params,
    plan: &Plan,
    layered: &LayeredInstance,
    lsched: &Schedule,
) -> Schedule {
    let g_padded = params.padded_layer();
    let mut asg: Vec<Option<Assignment>> = vec![None; inst.num_jobs()];
    // Per original class: placeholder slots and big-job windows.
    let mut slots: Vec<Vec<(MachineId, Time)>> = vec![Vec::new(); inst.num_classes()];
    let mut big_windows: Vec<Vec<(MachineId, Time, Time)>> = vec![Vec::new(); inst.num_classes()];
    for (lj, kind) in layered.kinds.iter().enumerate() {
        let a = lsched.assignment(lj);
        let real_start = a.start * g_padded;
        let orig_class = layered.class_map[layered.inst.class_of(lj)];
        match *kind {
            LayeredJobKind::Big(j) => {
                asg[j] = Some(Assignment {
                    machine: a.machine,
                    start: real_start,
                });
                let window_end = real_start + layered.inst.size(lj) * g_padded;
                big_windows[orig_class].push((a.machine, real_start + inst.size(j), window_end));
            }
            LayeredJobKind::Placeholder => {
                slots[orig_class].push((a.machine, real_start));
            }
        }
    }

    // Micro bundles: right after the first big job of the class, inside its
    // window (slack ≥ pad ≥ µT ≥ bundle load).
    for (c, jobs) in &plan.micro_bundles {
        let &(machine, mut cur, window_end) = big_windows[*c]
            .first()
            .expect("micro bundle class has a big job");
        for &j in jobs {
            asg[j] = Some(Assignment {
                machine,
                start: cur,
            });
            cur += inst.size(j);
        }
        assert!(
            cur <= window_end,
            "invariant violation: micro bundle exceeds its window ({cur} > {window_end})"
        );
    }

    // Placeholder refills: greedy per class across its slots in time order.
    for (c, jobs) in &plan.slot_smalls {
        let mut class_slots = slots[*c].clone();
        class_slots.sort_unstable_by_key(|&(_, s)| s);
        let mut slot_iter = class_slots.into_iter();
        let mut current = slot_iter.next();
        let mut used: Time = 0;
        for &j in jobs {
            let p = inst.size(j);
            loop {
                let (machine, start) =
                    current.expect("invariant violation: placeholder capacity exhausted");
                if used + p <= g_padded {
                    asg[j] = Some(Assignment {
                        machine,
                        start: start + used,
                    });
                    used += p;
                    break;
                }
                current = slot_iter.next();
                used = 0;
            }
        }
    }

    // Machine ends so far (over the augmented machine count).
    let mut ends: Vec<Time> = vec![0; target_m];
    for (j, a) in asg.iter().enumerate() {
        if let Some(a) = a {
            ends[a.machine] = ends[a.machine].max(a.start + inst.size(j));
        }
    }

    // Fillers: whole small-only classes onto the least-loaded machine
    // (main machines only).
    let m = inst.machines();
    let mut fillers: Vec<&Vec<JobId>> = plan.filler_classes.iter().collect();
    fillers.sort_by_key(|jobs| std::cmp::Reverse(job_load(inst, jobs)));
    for jobs in fillers {
        let q = (0..m).min_by_key(|&q| ends[q]).expect("m ≥ 1");
        let mut cur = ends[q];
        for &j in jobs {
            asg[j] = Some(Assignment {
                machine: q,
                start: cur,
            });
            cur += inst.size(j);
        }
        ends[q] = cur;
    }

    // Augmentation classes: one fresh machine each; overflow joins the
    // end-append set (valid, guarantee flagged by the caller via plan size).
    let mut end_bundles: Vec<Vec<JobId>> = plan.end_bundles.clone();
    for (i, cls) in plan.extra_classes.iter().enumerate() {
        let q = m + i;
        if q < target_m {
            let mut cur = 0;
            for &j in cls {
                asg[j] = Some(Assignment {
                    machine: q,
                    start: cur,
                });
                cur += inst.size(j);
            }
            ends[q] = cur;
        } else {
            end_bundles.push(cls.clone());
        }
    }

    // End-append: every bundle starts at or after the global makespan, so no
    // bundle job can conflict with its class's jobs inside the horizon.
    let c0 = ends.iter().copied().max().unwrap_or(0);
    end_bundles.sort_by_key(|jobs| std::cmp::Reverse(job_load(inst, jobs)));
    let mut cursors: Vec<Time> = vec![c0; m];
    for bundle in &end_bundles {
        let q = (0..m).min_by_key(|&q| cursors[q]).expect("m ≥ 1");
        let mut cur = cursors[q];
        for &j in bundle {
            asg[j] = Some(Assignment {
                machine: q,
                start: cur,
            });
            cur += inst.size(j);
        }
        cursors[q] = cur;
    }

    let assignments: Vec<Assignment> = asg
        .into_iter()
        .enumerate()
        .map(|(j, a)| a.unwrap_or_else(|| panic!("job {j} was never reinserted")))
        .collect();
    Schedule::new(assignments)
}

/// Marker: the caller's [`CancelToken`] fired mid-search.
struct Cancelled;

/// One dual-approximation probe: can we schedule within `(1+O(ε))·t`?
fn try_guess(
    inst: &Instance,
    target_m: usize,
    t: Time,
    cfg: &EptasConfig,
    augmented: bool,
    cancel: Option<&CancelToken>,
) -> Result<(Option<Schedule>, bool), Cancelled> {
    let params = build_params(inst, t, cfg.eps_k, augmented);
    let plan = build_plan(inst, &params, augmented);
    let layered = LayeredInstance::build(inst, &params, &plan.big_jobs, &plan.placeholders);
    match layered.solve_cancellable(params.layers, cfg.node_budget, cancel) {
        LayeredOutcome::Feasible(lsched) => {
            let schedule = reconstruct(inst, target_m, &params, &plan, &layered, &lsched);
            let extra_ok = plan.extra_classes.len() <= target_m - inst.machines();
            Ok((Some(schedule), params.conditions_met && extra_ok))
        }
        LayeredOutcome::Infeasible => Ok((None, true)),
        LayeredOutcome::Unknown => Ok((None, false)),
        LayeredOutcome::Cancelled => Err(Cancelled),
    }
}

fn run(
    inst: &Instance,
    cfg: EptasConfig,
    augmented: bool,
    cancel: Option<&CancelToken>,
) -> Option<EptasOutcome> {
    assert!(cfg.eps_k >= 2, "ε = 1/k needs k ≥ 2");
    let m = inst.machines();
    let extra = if augmented { m / cfg.eps_k as usize } else { 0 };
    let target_m = m + extra;
    let target = if augmented {
        Instance::new(target_m, inst.jobs().to_vec()).expect("m ≥ 1")
    } else {
        inst.clone()
    };

    // Trivial paths (empty / zero-load / one machine per class).
    let fallback = msrs_approx::three_halves(inst);
    let ub = fallback.schedule.makespan(inst);
    let lb = lower_bound(inst);
    if ub == lb || inst.num_jobs() == 0 {
        return Some(EptasOutcome {
            instance: target,
            schedule: fallback.schedule,
            t_star: lb,
            eps_k: cfg.eps_k,
            guarantee_intact: true,
            used_fallback: false,
        });
    }

    // Dual approximation: binary search the smallest accepted guess. Each
    // probe polls the token inside its exact oracle call, and the loop
    // re-checks it between probes, so a deadline bounds the whole search.
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let mut intact = true;
    let mut lo = lb;
    let mut hi = ub;
    let mut best: Option<(Time, Schedule)> = None;
    while lo < hi {
        if cancelled() {
            return None;
        }
        let mid = lo + (hi - lo) / 2;
        let (res, proven) = try_guess(inst, target_m, mid, &cfg, augmented, cancel).ok()?;
        intact &= proven;
        match res {
            Some(s) => {
                best = Some((mid, s));
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    if best.as_ref().is_none_or(|(t, _)| *t != lo) {
        if cancelled() {
            return None;
        }
        let (res, proven) = try_guess(inst, target_m, lo, &cfg, augmented, cancel).ok()?;
        intact &= proven;
        if let Some(s) = res {
            best = Some((lo, s));
        }
    }

    Some(match best {
        Some((t_star, schedule)) => {
            debug_assert_eq!(validate(&target, &schedule), Ok(()));
            EptasOutcome {
                instance: target,
                schedule,
                t_star,
                eps_k: cfg.eps_k,
                guarantee_intact: intact,
                used_fallback: false,
            }
        }
        None => EptasOutcome {
            instance: target,
            schedule: fallback.schedule,
            t_star: ub,
            eps_k: cfg.eps_k,
            guarantee_intact: false,
            used_fallback: true,
        },
    })
}

/// The EPTAS for a constant number of machines (Theorem 14, first variant):
/// schedules on exactly `m` machines with makespan `(1+O(ε))·OPT`.
pub fn eptas_fixed_m(inst: &Instance, cfg: EptasConfig) -> EptasOutcome {
    run(inst, cfg, false, None).expect("uncancellable run always completes")
}

/// The EPTAS with resource augmentation (Theorem 14, second variant): may
/// use up to `⌊εm⌋` additional machines; makespan `(1+O(ε))·OPT`, where OPT
/// refers to the *original* `m` machines.
pub fn eptas_augmented(inst: &Instance, cfg: EptasConfig) -> EptasOutcome {
    run(inst, cfg, true, None).expect("uncancellable run always completes")
}

/// As [`eptas_fixed_m`], polling `cancel` between and inside the dual-
/// approximation probes. Returns `None` when the token fired before the
/// search finished (callers report the run as timed out).
pub fn eptas_fixed_m_cancellable(
    inst: &Instance,
    cfg: EptasConfig,
    cancel: &CancelToken,
) -> Option<EptasOutcome> {
    run(inst, cfg, false, Some(cancel))
}

/// As [`eptas_augmented`], with cooperative cancellation (see
/// [`eptas_fixed_m_cancellable`]).
pub fn eptas_augmented_cancellable(
    inst: &Instance,
    cfg: EptasConfig,
    cancel: &CancelToken,
) -> Option<EptasOutcome> {
    run(inst, cfg, true, Some(cancel))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(inst: &Instance, cfg: EptasConfig, augmented: bool) -> EptasOutcome {
        let out = if augmented {
            eptas_augmented(inst, cfg)
        } else {
            eptas_fixed_m(inst, cfg)
        };
        assert_eq!(
            validate(&out.instance, &out.schedule),
            Ok(()),
            "invalid schedule"
        );
        assert!(out.makespan() >= lower_bound(inst).min(out.makespan()));
        out
    }

    #[test]
    fn simple_instance_both_variants() {
        let inst =
            Instance::from_classes(2, &[vec![60, 4, 4], vec![55], vec![30, 30], vec![2, 2, 2]])
                .unwrap();
        for augmented in [false, true] {
            let out = check(&inst, EptasConfig::default(), augmented);
            assert!(out.t_star >= lower_bound(&inst));
        }
    }

    #[test]
    fn augmented_uses_extra_machines_at_most() {
        let inst = Instance::from_classes(
            4,
            &[
                vec![50; 2],
                vec![50; 2],
                vec![40, 20],
                vec![25; 4],
                vec![10; 10],
            ],
        )
        .unwrap();
        let out = check(
            &inst,
            EptasConfig {
                eps_k: 2,
                node_budget: 500_000,
            },
            true,
        );
        assert!(out.instance.machines() == 4 + 2);
        assert!(out.schedule.machines_used(&out.instance) <= 6);
    }

    #[test]
    fn fixed_m_stays_on_m_machines() {
        let inst = Instance::from_classes(2, &[vec![30, 30], vec![20, 20], vec![15]]).unwrap();
        let out = check(&inst, EptasConfig::default(), false);
        assert_eq!(out.instance.machines(), 2);
    }

    #[test]
    fn quality_close_to_lower_bound_on_clean_instance() {
        // Large sizes so that additive slack is negligible; per-class
        // machines … not trivial (5 classes on 3 machines).
        let inst = Instance::from_classes(
            3,
            &[
                vec![120],
                vec![120],
                vec![120],
                vec![60, 60],
                vec![40, 40, 40],
            ],
        )
        .unwrap();
        let out = check(
            &inst,
            EptasConfig {
                eps_k: 4,
                node_budget: 2_000_000,
            },
            false,
        );
        let lb = lower_bound(&inst) as f64;
        let ratio = out.makespan() as f64 / lb;
        assert!(ratio <= 1.8, "EPTAS ratio {ratio} too large");
    }

    #[test]
    fn medium_heavy_class_goes_to_extra_machine() {
        // One class dominated by medium jobs: with ε = 1/2 and suitable T it
        // exceeds εT and lands on an augmentation machine.
        let inst =
            Instance::from_classes(2, &[vec![100], vec![90, 6], vec![30, 30, 30], vec![8, 8]])
                .unwrap();
        let out = check(
            &inst,
            EptasConfig {
                eps_k: 2,
                node_budget: 500_000,
            },
            true,
        );
        assert_eq!(out.instance.machines(), 3);
    }

    #[test]
    fn pre_cancelled_token_aborts_the_search() {
        let inst =
            Instance::from_classes(2, &[vec![60, 4, 4], vec![55], vec![30, 30], vec![2, 2, 2]])
                .unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert!(eptas_fixed_m_cancellable(&inst, EptasConfig::default(), &token).is_none());
        assert!(eptas_augmented_cancellable(&inst, EptasConfig::default(), &token).is_none());
        // An unfired token changes nothing.
        let live = CancelToken::new();
        let out = eptas_fixed_m_cancellable(&inst, EptasConfig::default(), &live)
            .expect("no cancellation");
        assert_eq!(validate(&out.instance, &out.schedule), Ok(()));
    }

    #[test]
    fn zero_jobs_and_degenerate_cases() {
        let empty = Instance::new(2, vec![]).unwrap();
        let out = eptas_fixed_m(&empty, EptasConfig::default());
        assert!(out.schedule.is_empty());

        let zeros = Instance::from_classes(2, &[vec![0, 0], vec![0]]).unwrap();
        let out = check(&zeros, EptasConfig::default(), false);
        assert_eq!(out.makespan(), 0);
    }

    #[test]
    fn trivial_per_class_instances() {
        let inst = Instance::from_classes(4, &[vec![9, 1], vec![5]]).unwrap();
        let out = check(&inst, EptasConfig::default(), true);
        assert_eq!(out.makespan(), 10);
    }
}
