//! Parameter selection for the EPTAS: `ε = 1/k`, the pigeonhole choice of
//! `δ ∈ {ε, ε², …}` with `µ = ε²δ`, and the induced size classification
//! (§4.1 "Choosing the Parameters").

use msrs_core::{Instance, Time};

/// Size classification of a job against the chosen parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// `p > δT`.
    Big,
    /// `µT < p ≤ δT`.
    Medium,
    /// `p ≤ µT` (includes zero-size jobs).
    Small,
}

/// The outcome of the pigeonhole δ-search.
#[derive(Debug, Clone, Copy)]
pub struct DeltaChoice {
    /// `δ = 1 / den` (δ = ε^i gives `den = k^i`).
    pub den: u128,
    /// Whether both mass conditions of §4.1 were met (otherwise the
    /// least-mass candidate was used and the guarantee degrades gracefully).
    pub conditions_met: bool,
}

/// All derived parameters for one makespan guess `T`.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// `ε = 1/k`.
    pub k: u64,
    /// The makespan guess.
    pub t: Time,
    /// The chosen δ denominator (`δ = 1/den`).
    pub den: u128,
    /// Layer width `g = max(1, ⌊εδT⌋)`.
    pub g: Time,
    /// Layer padding `pad = ⌊µT⌋` (the Lemma 19 stretch). Since small jobs
    /// are integral and `≤ µT`, each is `≤ ⌊µT⌋`, so the flooring keeps all
    /// packing arguments intact while avoiding any padding in the degenerate
    /// `µT < 1` regime (where the only small jobs have size zero).
    pub pad: Time,
    /// Number of layers for the horizon `(1+2ε)T`.
    pub layers: Time,
    /// Whether the pigeonhole conditions were met.
    pub conditions_met: bool,
}

impl Params {
    /// Classifies a processing time.
    pub fn classify(&self, p: Time) -> SizeClass {
        let p = p as u128;
        let t = self.t as u128;
        let k2 = (self.k as u128) * (self.k as u128);
        if p * self.den > t {
            SizeClass::Big
        } else if p * self.den * k2 > t {
            SizeClass::Medium
        } else {
            SizeClass::Small
        }
    }

    /// `x > εT`?
    pub fn exceeds_eps_t(&self, x: Time) -> bool {
        (x as u128) * (self.k as u128) > self.t as u128
    }

    /// Padded layer width `G = g + pad`.
    pub fn padded_layer(&self) -> Time {
        self.g + self.pad
    }

    /// Rounded size of a big job in layers: `⌈p / g⌉`.
    pub fn layers_of(&self, p: Time) -> Time {
        p.div_ceil(self.g)
    }
}

/// Per-class small/medium masses against a candidate δ.
fn class_masses(inst: &Instance, t: Time, k: u64, den: u128) -> (Time, Time) {
    // Returns (total medium mass, condition-2 mass).
    let k2 = (k as u128) * (k as u128);
    let t128 = t as u128;
    let mut medium = 0u64;
    let mut cond2 = 0u64;
    for c in inst.nonempty_classes() {
        let mut small_load = 0u64;
        // Sizes only: read the class's contiguous flat span directly.
        for &p in inst.class_sizes(c) {
            let p128 = p as u128;
            if p128 * den > t128 {
                // big
            } else if p128 * den * k2 > t128 {
                medium += p;
            } else {
                small_load += p;
            }
        }
        let s128 = small_load as u128;
        if s128 * den <= t128 && s128 * den * k2 > t128 {
            cond2 += small_load;
        }
    }
    (medium, cond2)
}

/// Pigeonhole search for δ (general-`m` bounds `ε²mT` when `augmented`,
/// constant-`m` bounds `εT` otherwise).
pub fn choose_delta(inst: &Instance, t: Time, k: u64, augmented: bool) -> DeltaChoice {
    let t128 = t as u128;
    let m = inst.machines() as u128;
    let k128 = k as u128;
    // Candidate cap: the paper uses 2/ε² (general) resp. 2m/ε (fixed)
    // exponents; additionally stop once δT < 1 (no medium range remains).
    let max_i = if augmented {
        2 * k * k
    } else {
        2 * (inst.machines() as u64) * k
    }
    .clamp(2, 64) as usize;
    let mut den: u128 = k128; // δ = ε
    let mut best: Option<(u128, u128)> = None; // (mass sum, den)
    for _ in 0..max_i {
        let (medium, cond2) = class_masses(inst, t, k, den);
        let (m128, c128) = (medium as u128, cond2 as u128);
        let ok = if augmented {
            m128 * k128 * k128 <= m * t128 && c128 * k128 * k128 <= m * t128
        } else {
            m128 * k128 <= t128 && c128 * k128 <= t128
        };
        if ok {
            return DeltaChoice {
                den,
                conditions_met: true,
            };
        }
        let sum = m128 + c128;
        if best.is_none_or(|(s, _)| sum < s) {
            best = Some((sum, den));
        }
        // Next candidate δ ← δ·ε; stop if δT < 1 (no medium jobs possible —
        // a final, trivially valid candidate).
        match den.checked_mul(k128) {
            Some(next) if next <= t128 * k128 * k128 => den = next,
            _ => break,
        }
    }
    // δT < 1 ⟹ no mediums and no non-empty (µT, δT] small band.
    let (medium, cond2) = class_masses(inst, t, k, den);
    if medium == 0 && cond2 == 0 {
        return DeltaChoice {
            den,
            conditions_met: true,
        };
    }
    let (_, den) = best.expect("at least one candidate evaluated");
    DeltaChoice {
        den,
        conditions_met: false,
    }
}

/// Builds all derived parameters for guess `t`.
pub fn build_params(inst: &Instance, t: Time, k: u64, augmented: bool) -> Params {
    assert!(k >= 2, "ε = 1/k needs k ≥ 2");
    assert!(t >= 1);
    let choice = choose_delta(inst, t, k, augmented);
    let den = choice.den;
    let k128 = k as u128;
    let g = ((t as u128) / (den * k128)).max(1) as Time;
    let pad = ((t as u128) / (den * k128 * k128)) as Time;
    // Horizon (1+2ε)T in layers, plus one slack layer for alignment.
    let horizon = ((t as u128) * (k128 + 2)).div_ceil(k128) as Time;
    let layers = horizon.div_ceil(g) + 1;
    Params {
        k,
        t,
        den,
        g,
        pad,
        layers,
        conditions_met: choice.conditions_met,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        // Medium band (7.5, 30] at T = 60, k = 2 is empty, so δ = ε holds.
        Instance::from_classes(2, &[vec![60, 4, 4], vec![7], vec![2, 2, 2]]).unwrap()
    }

    #[test]
    fn classify_against_thresholds() {
        // T = 60, k = 2 → δ = 1/2 (if conditions hold): big > 30, medium ∈
        // (7.5, 30], small ≤ 7.5.
        let p = build_params(&inst(), 60, 2, true);
        assert_eq!(p.den, 2);
        assert_eq!(p.classify(60), SizeClass::Big);
        assert_eq!(p.classify(31), SizeClass::Big);
        assert_eq!(p.classify(30), SizeClass::Medium);
        assert_eq!(p.classify(8), SizeClass::Medium);
        assert_eq!(p.classify(7), SizeClass::Small);
        assert_eq!(p.classify(0), SizeClass::Small);
    }

    #[test]
    fn derived_quantities() {
        let p = build_params(&inst(), 60, 2, true);
        // g = ⌊εδT⌋ = ⌊60/4⌋ = 15; pad = ⌊µT⌋ = ⌊60/8⌋ = 7.
        assert_eq!(p.g, 15);
        assert_eq!(p.pad, 7);
        assert_eq!(p.padded_layer(), 22);
        // horizon (1+1)·60 = 120 → layers ⌈120/15⌉+1 = 9.
        assert_eq!(p.layers, 9);
        assert_eq!(p.layers_of(31), 3);
        assert_eq!(p.layers_of(45), 3);
        assert_eq!(p.layers_of(46), 4);
    }

    #[test]
    fn delta_descends_when_medium_mass_is_large() {
        // All load concentrated in the (µT, δT] band for δ = ε forces a
        // smaller δ. T = 100, k = 2: δ=1/2 → medium ∈ (12.5, 50].
        let heavy_medium =
            Instance::from_classes(2, &[vec![40, 40], vec![40, 40], vec![40]]).unwrap();
        let choice = choose_delta(&heavy_medium, 100, 2, true);
        assert!(
            choice.den > 2,
            "δ must shrink below ε, got 1/{}",
            choice.den
        );
    }

    #[test]
    fn tiny_delta_means_no_mediums() {
        // With δT < 1 the medium band is empty and conditions hold.
        let inst = Instance::from_classes(1, &[vec![2, 2]]).unwrap();
        let choice = choose_delta(&inst, 4, 2, false);
        assert!(choice.conditions_met);
    }

    #[test]
    fn eps_t_comparison() {
        let p = build_params(&inst(), 60, 3, true);
        assert!(p.exceeds_eps_t(21)); // 21 > 60/3 = 20
        assert!(!p.exceeds_eps_t(20));
    }

    #[test]
    fn g_is_at_least_one() {
        let p = build_params(&inst(), 3, 2, false);
        assert!(p.g >= 1);
        assert!(p.layers >= 1);
    }
}
