//! The module-configuration IP of §4.2, *verbatim*: constraints (1)–(4) over
//! configuration variables `x_K` and window variables `y^{(c)}_{(ℓ,p)}`,
//! assembled as a generalized N-fold program (§4.3) and solved with
//! `msrs-nfold`.
//!
//! This module exists to demonstrate the paper's actual IP machinery at
//! small scale and to cross-validate the practical layered solver
//! (`crate::layered`) against it; the production EPTAS path uses the
//! structure-aware solver (see DESIGN.md, substitutions). As in §4.3, the
//! `x_K` variables are *copied into every block* but only block 0's copies
//! may be non-zero, and slack variables turn constraint (4) into an
//! equation.
//!
//! All quantities are in layer units: a window `(ℓ, p)` reserves `p` layers
//! starting at layer `ℓ`.

use msrs_core::{Assignment, Schedule, Time};
use msrs_nfold::{Limits, NFoldIP};

use crate::layered::LayeredInstance;

/// A time window: starting layer and length in layers.
pub type Window = (Time, Time);

/// The assembled module-configuration IP for one layered instance.
#[derive(Debug, Clone)]
pub struct ModuleConfigIp {
    /// All windows `(ℓ, p)` with `ℓ + p ≤ Λ`.
    pub windows: Vec<Window>,
    /// All configurations: sets of pairwise non-overlapping window indices.
    pub configs: Vec<Vec<usize>>,
    /// Distinct job lengths (in layers).
    pub sizes: Vec<Time>,
    /// `n^{(c)}_p` demand per (class, size-index).
    pub demand: Vec<Vec<u64>>,
    /// The N-fold program.
    pub ip: NFoldIP,
    horizon: Time,
    machines: usize,
}

#[cfg(test)]
fn overlaps(a: Window, b: Window) -> bool {
    a.0 < b.0 + b.1 && b.0 < a.0 + a.1
}

/// Enumerates all configurations (antichains of non-overlapping windows) by
/// walking the layers: at each layer either idle or start a window.
fn enumerate_configs(windows: &[Window], horizon: Time) -> Vec<Vec<usize>> {
    // start_at[ℓ] = windows starting at ℓ.
    let mut start_at: Vec<Vec<usize>> = vec![Vec::new(); horizon as usize + 1];
    for (i, &(l, _)) in windows.iter().enumerate() {
        start_at[l as usize].push(i);
    }
    let mut out = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    fn rec(
        layer: usize,
        horizon: usize,
        start_at: &[Vec<usize>],
        windows: &[Window],
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if layer >= horizon {
            out.push(cur.clone());
            return;
        }
        // Idle this layer.
        rec(layer + 1, horizon, start_at, windows, cur, out);
        // Start one of the windows at this layer.
        for &w in &start_at[layer] {
            cur.push(w);
            rec(
                layer + windows[w].1 as usize,
                horizon,
                start_at,
                windows,
                cur,
                out,
            );
            cur.pop();
        }
    }
    rec(0, horizon as usize, &start_at, windows, &mut cur, &mut out);
    out
}

impl ModuleConfigIp {
    /// Assembles the IP for `layered` within `horizon` layers.
    ///
    /// Block layout (per class `c`): `|K|` copies of `x_K` (usable only in
    /// block 0), then one `y^{(c)}_w` per window, then one slack per layer.
    pub fn build(layered: &LayeredInstance, horizon: Time) -> Self {
        let inst = &layered.inst;
        let machines = inst.machines();
        let classes = inst.num_classes().max(1);

        // Distinct sizes and per-class demands.
        let mut sizes: Vec<Time> = inst.jobs().iter().map(|j| j.size).collect();
        sizes.sort_unstable();
        sizes.dedup();
        let mut demand = vec![vec![0u64; sizes.len()]; classes];
        for j in inst.jobs() {
            let p = sizes.binary_search(&j.size).expect("size present");
            demand[j.class][p] += 1;
        }

        // Windows and configurations.
        let windows: Vec<Window> = (0..horizon)
            .flat_map(|l| {
                sizes
                    .iter()
                    .filter(move |&&p| l + p <= horizon)
                    .map(move |&p| (l, p))
                    .collect::<Vec<_>>()
            })
            .collect();
        let configs = enumerate_configs(&windows, horizon);

        let nk = configs.len();
        let nw = windows.len();
        let nl = horizon as usize;
        let t = nk + nw + nl;
        let r = 1 + nw;
        let s = sizes.len() + nl;

        // Global rows: (1) Σ x_K = m; (2) per window: Σ_K K_w x_K − Σ_c y_w = 0.
        let mut a_block = vec![vec![0i64; t]; r];
        for (k, cfg) in configs.iter().enumerate() {
            a_block[0][k] = 1;
            for &w in cfg {
                a_block[1 + w][k] = 1;
            }
        }
        for w in 0..nw {
            a_block[1 + w][nk + w] = -1;
        }

        // Local rows per class: (3) per size; (4) per layer (+ slack).
        let mut b_block = vec![vec![0i64; t]; s];
        for (w, &(l, p)) in windows.iter().enumerate() {
            let pi = sizes.binary_search(&p).expect("size present");
            b_block[pi][nk + w] = 1;
            for ll in l..(l + p).min(horizon) {
                b_block[sizes.len() + ll as usize][nk + w] = 1;
            }
        }
        for l in 0..nl {
            b_block[sizes.len() + l][nk + nw + l] = 1; // slack
        }

        let mut rhs_global = vec![0i64; r];
        rhs_global[0] = machines as i64;
        let rhs_local: Vec<Vec<i64>> = (0..classes)
            .map(|c| {
                let mut rhs = vec![0i64; s];
                for (pi, &d) in demand[c].iter().enumerate() {
                    rhs[pi] = d as i64;
                }
                for l in 0..nl {
                    rhs[sizes.len() + l] = 1;
                }
                rhs
            })
            .collect();

        let n_total = inst.num_jobs() as i64;
        let (mut lower, mut upper) = (Vec::new(), Vec::new());
        for c in 0..classes {
            let mut lo = vec![0i64; t];
            let mut hi = vec![0i64; t];
            for k in 0..nk {
                // x_K copies live in block 0 only (§4.3).
                hi[k] = if c == 0 { machines as i64 } else { 0 };
                lo[k] = 0;
            }
            for w in 0..nw {
                hi[nk + w] = n_total.max(1);
            }
            for l in 0..nl {
                hi[nk + nw + l] = 1;
            }
            lower.push(lo);
            upper.push(hi);
        }
        let cost = vec![vec![0i64; t]; classes];

        let ip = NFoldIP {
            r,
            s,
            t,
            a: vec![a_block; classes],
            b: vec![b_block; classes],
            rhs_global,
            rhs_local,
            lower,
            upper,
            cost,
        };
        ModuleConfigIp {
            windows,
            configs,
            sizes,
            demand,
            ip,
            horizon,
            machines,
        }
    }

    /// Solves the IP (feasibility) and extracts a layered schedule: machines
    /// get configurations per `x_K`, classes claim their reserved windows.
    /// Returns `None` if the IP is infeasible or the node budget runs out.
    pub fn solve(&self, layered: &LayeredInstance, limits: Limits) -> Option<Schedule> {
        let sol = self.ip.solve_bb(limits).optimal()?;
        let nk = self.configs.len();

        // Machines ← configurations (multiplicities from block 0's x_K).
        let mut machine_windows: Vec<Vec<usize>> = Vec::new();
        for (k, cfg) in self.configs.iter().enumerate() {
            for _ in 0..sol.x[0][k] {
                machine_windows.push(cfg.clone());
            }
        }
        debug_assert_eq!(machine_windows.len(), self.machines);

        // Per window type: the machine slots providing it.
        let mut providers: Vec<Vec<usize>> = vec![Vec::new(); self.windows.len()];
        for (q, cfg) in machine_windows.iter().enumerate() {
            for &w in cfg {
                providers[w].push(q);
            }
        }

        // Per class: claimed windows (y > 0 means one reservation per unit).
        // Assign jobs: within a class, jobs of size p go to its (ℓ, p)
        // windows in any order.
        let inst = &layered.inst;
        let mut per_class_jobs: Vec<Vec<Vec<usize>>> =
            vec![vec![Vec::new(); self.sizes.len()]; inst.num_classes()];
        for (j, job) in inst.jobs().iter().enumerate() {
            let pi = self.sizes.binary_search(&job.size).expect("size present");
            per_class_jobs[job.class][pi].push(j);
        }
        let mut assignments = vec![
            Assignment {
                machine: 0,
                start: 0
            };
            inst.num_jobs()
        ];
        for (c, xc) in sol.x.iter().enumerate() {
            if c >= inst.num_classes() {
                break;
            }
            for (w, &(l, p)) in self.windows.iter().enumerate() {
                let count = xc[nk + w];
                let pi = self.sizes.binary_search(&p).expect("size present");
                for _ in 0..count {
                    let q = providers[w].pop().expect("constraint (2) balances supply");
                    let j = per_class_jobs[c][pi]
                        .pop()
                        .expect("constraint (3) balances demand");
                    assignments[j] = Assignment {
                        machine: q,
                        start: l,
                    };
                }
            }
        }
        Some(Schedule::new(assignments))
    }

    /// The layer horizon the IP was built for.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Problem-size summary: `(|W|, |K|, blocks, vars/block, global rows,
    /// local rows)` — the quantities of Observation 20.
    pub fn dimensions(&self) -> (usize, usize, usize, usize, usize, usize) {
        (
            self.windows.len(),
            self.configs.len(),
            self.ip.blocks(),
            self.ip.t,
            self.ip.r,
            self.ip.s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layered::LayeredInstance;
    use crate::params::build_params;
    use msrs_core::{validate, Instance};

    /// A tiny layered setting: two classes, jobs of 1–2 layers, horizon 3–4.
    fn tiny(
        horizon_classes: (Time, Vec<Vec<Time>>),
        m: usize,
    ) -> (Instance, LayeredInstance, Time) {
        let (t, classes) = horizon_classes;
        let orig = Instance::from_classes(m, &classes).unwrap();
        let params = build_params(&orig, t, 2, false);
        let big: Vec<usize> = (0..orig.num_jobs()).filter(|&j| orig.size(j) > 0).collect();
        let layered = LayeredInstance::build(&orig, &params, &big, &[]);
        (orig, layered, params.layers)
    }

    #[test]
    fn configs_are_nonoverlapping_and_include_empty() {
        let windows = vec![(0, 1), (0, 2), (1, 1), (1, 2), (2, 1)];
        let configs = enumerate_configs(&windows, 3);
        assert!(configs.iter().any(Vec::is_empty));
        for cfg in &configs {
            for i in 0..cfg.len() {
                for k in i + 1..cfg.len() {
                    assert!(
                        !overlaps(windows[cfg[i]], windows[cfg[k]]),
                        "overlapping windows in config {cfg:?}"
                    );
                }
            }
        }
        // A maximal tiling of 3 layers by units must be present.
        assert!(configs.iter().any(|c| {
            let mut ls: Vec<Time> = c.iter().map(|&w| windows[w].0).collect();
            ls.sort_unstable();
            c.len() == 3 && ls == vec![0, 1, 2]
        }));
    }

    #[test]
    fn ip_feasible_and_schedule_valid() {
        // Two classes of one 30-size job each on 2 machines at T=30, k=2:
        // g = ⌊30/4⌋ = 7 → jobs round to ⌈30/7⌉ = 5 layers; Λ = 9.
        let (_, layered, horizon) = tiny((30, vec![vec![30], vec![30]]), 2);
        let ip = ModuleConfigIp::build(&layered, horizon.min(6));
        let s = ip.solve(
            &layered,
            Limits {
                max_nodes: 30_000_000,
            },
        );
        let s = s.expect("feasible layered IP");
        assert_eq!(validate(&layered.inst, &s), Ok(()));
        assert!(s.makespan(&layered.inst) <= horizon.min(6));
    }

    #[test]
    fn ip_matches_practical_layered_solver() {
        // Cross-validation: the IP and the structure-aware solver must agree
        // on feasibility at a squeezed horizon.
        let (_, layered, _) = tiny((30, vec![vec![30, 28], vec![30]]), 2);
        let job_layers: Vec<Time> = (0..layered.inst.num_jobs())
            .map(|j| layered.inst.size(j))
            .collect();
        let serial: Time = job_layers.iter().take(2).sum(); // class 0 serializes
        for horizon in [serial - 1, serial] {
            let ip = ModuleConfigIp::build(&layered, horizon);
            let ip_feasible = ip
                .solve(
                    &layered,
                    Limits {
                        max_nodes: 50_000_000,
                    },
                )
                .is_some();
            let practical = matches!(
                layered.solve(horizon, 5_000_000),
                crate::layered::LayeredOutcome::Feasible(_)
            );
            assert_eq!(ip_feasible, practical, "disagreement at horizon {horizon}");
        }
    }

    #[test]
    fn ip_detects_infeasibility() {
        // One class of three 2-layer jobs must serialize to 6 layers.
        let orig = Instance::from_classes(2, &[vec![14, 14, 14]]).unwrap();
        let params = build_params(&orig, 42, 2, false);
        let layered = LayeredInstance::build(&orig, &params, &[0, 1, 2], &[]);
        let per = layered.inst.size(0);
        let ip = ModuleConfigIp::build(&layered, 3 * per - 1);
        assert!(ip
            .solve(
                &layered,
                Limits {
                    max_nodes: 50_000_000
                }
            )
            .is_none());
    }

    #[test]
    fn dimensions_match_observation20_shape() {
        let (_, layered, _) = tiny((30, vec![vec![30], vec![30]]), 2);
        let ip = ModuleConfigIp::build(&layered, 6);
        let (w, k, blocks, t, r, s) = ip.dimensions();
        assert_eq!(blocks, layered.inst.num_classes());
        assert_eq!(r, 1 + w, "global rows = |W| + 1 (constraints (1)+(2))");
        assert_eq!(t, k + w + 6, "vars/block = |K| + |W| + |Ξ|");
        assert!(s >= 6, "local rows include one per layer");
    }
}
