//! The layered instance of Lemma 18: big jobs rounded to layer multiples and
//! unit placeholders for heavy small-job loads, scheduled on `m` machines
//! within the `(1+2ε)T` layer horizon.
//!
//! A layered instance is *again* an MSRS instance (sizes counted in layers),
//! so the whole machinery of this workspace applies: the decision "is there a
//! layered schedule within `Λ` layers" is answered by first trying the
//! 3/2- and 5/3-approximations (any valid schedule within the horizon is a
//! witness) and only then falling back to the exact branch-and-bound — the
//! practical stand-in for the paper's N-fold oracle (see DESIGN.md).

use msrs_core::cancel::CancelToken;
use msrs_core::{ClassId, Instance, Job, JobId, Schedule, Time};
use msrs_exact::{SolveLimits, SolveOutcome};

use crate::params::Params;

/// What a layered job stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayeredJobKind {
    /// A rounded original big job.
    Big(JobId),
    /// A placeholder slot (one layer) for the small jobs of a class.
    Placeholder,
}

/// The layered MSRS instance plus the mapping back to the original one.
#[derive(Debug, Clone)]
pub struct LayeredInstance {
    /// The layered instance (sizes in layers).
    pub inst: Instance,
    /// Meaning of each layered job.
    pub kinds: Vec<LayeredJobKind>,
    /// Original class of each layered class id.
    pub class_map: Vec<ClassId>,
}

/// Outcome of the layered decision.
#[derive(Debug, Clone)]
pub enum LayeredOutcome {
    /// A layered schedule within the horizon.
    Feasible(Schedule),
    /// Proven: no layered schedule fits the horizon.
    Infeasible,
    /// Node budget exhausted before a proof (treated as infeasible by the
    /// binary search; flags the outcome as non-exact).
    Unknown,
    /// The caller's [`CancelToken`] fired mid-decision; the EPTAS driver
    /// aborts its search instead of continuing with partial answers.
    Cancelled,
}

impl LayeredInstance {
    /// Builds the layered instance: every big job becomes a job of
    /// `⌈p/g⌉` layers, and class `c` receives `placeholders[c]` unit jobs.
    pub fn build(
        orig: &Instance,
        params: &Params,
        big_jobs: &[JobId],
        placeholders: &[(ClassId, u64)],
    ) -> Self {
        // Compact the participating original classes.
        let mut class_map: Vec<ClassId> = Vec::new();
        let mut lookup = vec![usize::MAX; orig.num_classes()];
        let mut compact = |c: ClassId, class_map: &mut Vec<ClassId>| -> usize {
            if lookup[c] == usize::MAX {
                lookup[c] = class_map.len();
                class_map.push(c);
            }
            lookup[c]
        };
        let mut jobs: Vec<Job> = Vec::new();
        let mut kinds: Vec<LayeredJobKind> = Vec::new();
        for &j in big_jobs {
            let c = compact(orig.class_of(j), &mut class_map);
            jobs.push(Job::new(params.layers_of(orig.size(j)), c));
            kinds.push(LayeredJobKind::Big(j));
        }
        for &(c, n) in placeholders {
            let cc = compact(c, &mut class_map);
            for _ in 0..n {
                jobs.push(Job::new(1, cc));
                kinds.push(LayeredJobKind::Placeholder);
            }
        }
        let inst = Instance::new(orig.machines(), jobs).expect("m ≥ 1");
        LayeredInstance {
            inst,
            kinds,
            class_map,
        }
    }

    /// Decides whether the layered instance fits within `horizon` layers.
    pub fn solve(&self, horizon: Time, node_budget: u64) -> LayeredOutcome {
        self.solve_cancellable(horizon, node_budget, None)
    }

    /// As [`LayeredInstance::solve`], polling `cancel` inside the exact
    /// decision so a deadline bounds the EPTAS's inner oracle calls.
    pub fn solve_cancellable(
        &self,
        horizon: Time,
        node_budget: u64,
        cancel: Option<&CancelToken>,
    ) -> LayeredOutcome {
        if self.inst.num_jobs() == 0 {
            return LayeredOutcome::Feasible(Schedule::new(vec![]));
        }
        // Fast path: any heuristic schedule within the horizon is a witness.
        for r in [
            msrs_approx::three_halves(&self.inst),
            msrs_approx::five_thirds(&self.inst),
            msrs_approx::baselines::list_scheduler(&self.inst),
        ] {
            if r.schedule.makespan(&self.inst) <= horizon {
                return LayeredOutcome::Feasible(r.schedule);
            }
        }
        // Exact decision (the N-fold oracle stand-in).
        match msrs_exact::solve(
            &self.inst,
            SolveLimits {
                max_nodes: node_budget,
            },
            cancel,
        ) {
            SolveOutcome::Optimal(res) if res.makespan <= horizon => {
                LayeredOutcome::Feasible(res.schedule)
            }
            SolveOutcome::Optimal(_) => LayeredOutcome::Infeasible,
            SolveOutcome::Exhausted { .. } => LayeredOutcome::Unknown,
            SolveOutcome::Cancelled { .. } => LayeredOutcome::Cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::build_params;
    use msrs_core::validate;

    fn orig() -> Instance {
        Instance::from_classes(2, &[vec![60, 4, 4], vec![7], vec![2, 2, 2]]).unwrap()
    }

    #[test]
    fn build_rounds_and_places_placeholders() {
        let orig = orig();
        let p = build_params(&orig, 60, 2, true); // g = 15
        let li = LayeredInstance::build(&orig, &p, &[0], &[(2, 2)]);
        assert_eq!(li.inst.num_jobs(), 3);
        assert_eq!(li.inst.size(0), 4); // ⌈60/15⌉
        assert_eq!(li.inst.size(1), 1);
        assert_eq!(li.inst.size(2), 1);
        assert_eq!(li.kinds[0], LayeredJobKind::Big(0));
        assert_eq!(li.kinds[1], LayeredJobKind::Placeholder);
        // class compaction: big job's class 0 → 0, placeholders class 2 → 1.
        assert_eq!(li.class_map, vec![0, 2]);
        assert_eq!(li.inst.class_of(1), 1);
    }

    #[test]
    fn solve_feasible_within_horizon() {
        let orig = orig();
        let p = build_params(&orig, 60, 2, true);
        let li = LayeredInstance::build(&orig, &p, &[0], &[(2, 2)]);
        match li.solve(p.layers, 1_000_000) {
            LayeredOutcome::Feasible(s) => {
                assert_eq!(validate(&li.inst, &s), Ok(()));
                assert!(s.makespan(&li.inst) <= p.layers);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn solve_detects_infeasibility() {
        // One class of three 2-layer jobs must serialize to 6 layers; a
        // horizon of 5 on any machine count is infeasible.
        let orig = Instance::from_classes(2, &[vec![30, 30, 30]]).unwrap();
        let p = build_params(&orig, 90, 2, true);
        let li = LayeredInstance::build(&orig, &p, &[0, 1, 2], &[]);
        let per_job = li.inst.size(0);
        match li.solve(3 * per_job - 1, 1_000_000) {
            LayeredOutcome::Infeasible => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn empty_layered_instance_is_feasible() {
        let orig = orig();
        let p = build_params(&orig, 60, 2, true);
        let li = LayeredInstance::build(&orig, &p, &[], &[]);
        assert!(matches!(li.solve(0, 10), LayeredOutcome::Feasible(_)));
    }
}
