//! # msrs-ptas — approximation schemes for MSRS (paper §4)
//!
//! Implements the EPTAS pipeline of Theorem 14 in both variants:
//!
//! * [`eptas_fixed_m`] — for a constant number of machines;
//! * [`eptas_augmented`] — for general `m` with `⌊εm⌋` additional machines
//!   (resource augmentation).
//!
//! The pipeline follows the paper exactly:
//!
//! 1. **makespan guess** `T` via binary search (dual approximation,
//!    Hochbaum–Shmoys) between the combined lower bound and the
//!    `Algorithm_3/2` makespan;
//! 2. **parameter choice** `δ ∈ {ε, ε², …}`, `µ = ε²δ` by pigeonhole so the
//!    medium jobs and the light-small classes carry negligible mass
//!    (§4.1 "Choosing the Parameters");
//! 3. **simplification**: mediums removed (wholesale classes onto the
//!    augmentation machines when their medium load exceeds `εT` — Lemma 16 —
//!    or gathered for the final greedy re-insertion — Lemma 15); small job
//!    loads per class either replaced by `⌈s_c/(εδT)⌉` unit *placeholders*
//!    (heavy), deferred to the end-append (condition-2 mass), glued into the
//!    class's big-job window (`≤ µT`), or kept as whole-class *fillers*;
//! 4. **layering** (Lemma 18): big jobs rounded up to multiples of the layer
//!    width `g = ⌊εδT⌋`, horizon `(1+2ε)T` in layers;
//! 5. **layered solve**: the layered instance is again an MSRS instance (in
//!    layer units) and is decided *exactly* — the paper's N-fold oracle
//!    (Theorem 22) is replaced by the event-anchored branch-and-bound of
//!    `msrs-exact`, which is practical at these sizes (see DESIGN.md,
//!    substitutions); `msrs-nfold` demonstrates the N-fold machinery itself;
//! 6. **reconstruction** (Lemma 19): every layer is padded by `⌈µT⌉`, big
//!    jobs return to their true sizes inside their windows, placeholder
//!    slots are greedily refilled with the class's small jobs, fillers and
//!    the end-append bundles are placed after the layered horizon.
//!
//! Every output schedule is an ordinary [`msrs_core::Schedule`] validated
//! exactly; the [`EptasOutcome`] records whether any fallback or unproven
//! solver answer degraded the theoretical guarantee.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eptas;
pub mod ip;
mod layered;
mod params;

pub use eptas::{
    eptas_augmented, eptas_augmented_cancellable, eptas_fixed_m, eptas_fixed_m_cancellable,
    EptasConfig, EptasOutcome,
};
pub use ip::ModuleConfigIp;
pub use layered::{LayeredInstance, LayeredJobKind, LayeredOutcome};
pub use params::{build_params, choose_delta, DeltaChoice, Params, SizeClass};
