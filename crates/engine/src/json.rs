//! A dependency-free JSON value: integer-exact emission and parsing.
//!
//! The engine's corpus formats only need objects, arrays, strings, booleans,
//! `null`, and *integers* (all schedule arithmetic is integral `u64`), so
//! numbers are carried as `i128` and floating-point literals are rejected on
//! parse — round trips are exact by construction.

use std::fmt;

/// A JSON value (numbers restricted to integers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON number without fraction/exponent).
    Num(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key–value pairs (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0 && *n <= u64::MAX as i128 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `usize`, if representable.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped_str(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a quoted JSON string: `"`, `\`, `\n`, `\r`, `\t` escaped,
/// other control characters as `\u00xx`, everything else verbatim. The
/// single source of truth for the crate's string escaping — both
/// [`Json::Str`]'s `Display` and the allocation-free report byte writer
/// ([`crate::report::SolveReport::write_json_line`]) go through it, so the
/// two serialization paths cannot diverge.
pub(crate) fn write_escaped_str(s: &str, out: &mut impl fmt::Write) -> fmt::Result {
    out.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_str("\"")
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub at: usize,
    /// Description.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// The tree-building parser. NOTE: `crate::jsonl`'s `Scan` is a
/// non-materializing twin of this grammar (same tokens, same restrictions,
/// same error offsets/messages) for the streaming instance decoder — a
/// change to the lexing rules here (numbers, escapes, surrogates) must be
/// mirrored there; `jsonl`'s differential tests compare the two decoders
/// line by line and catch a divergence.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        // RFC 8259: no leading zeros ("-0" and "0" are fine, "007" is not).
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(self.err("leading zeros are not allowed"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are not supported"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        // `i128::from_str` errors (rather than wrapping) on out-of-range
        // literals, which we surface as a parse error.
        text.parse::<i128>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("integer out of range `{text}`")))
    }

    /// Reads 4 hex digits starting at byte offset `at`.
    fn hex4(&self, at: usize) -> Result<u32, JsonError> {
        self.bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..0xDC00).contains(&hex) {
                                // High surrogate: a low surrogate must follow
                                // as another \uXXXX escape (RFC 8259 §7).
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(
                                        self.err("high surrogate not followed by \\u escape")
                                    );
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(
                                        self.err("high surrogate not followed by low surrogate")
                                    );
                                }
                                self.pos += 6;
                                0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                hex
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Json::Obj(vec![
            ("id".into(), Json::Str("a \"b\"\n".into())),
            ("n".into(), Json::Num(-42)),
            ("ok".into(), Json::Bool(true)),
            ("xs".into(), Json::Arr(vec![Json::Num(1), Json::Null])),
            ("nested".into(), Json::Obj(vec![("k".into(), Json::Num(0))])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u00e9✓\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str(),
            Some("é✓")
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83d\\ude00 ok\"").unwrap();
        assert_eq!(v, Json::Str("😀 ok".into()));
        // Lone or malformed surrogates are rejected, not mis-decoded.
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(Json::parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integer_literal_edge_cases() {
        // Exactly representable extremes round trip.
        assert_eq!(
            Json::parse(&i128::MAX.to_string()).unwrap(),
            Json::Num(i128::MAX)
        );
        assert_eq!(
            Json::parse(&i128::MIN.to_string()).unwrap(),
            Json::Num(i128::MIN)
        );
        // One past the extremes: a parse error, never a wrap or a panic.
        let too_big = "170141183460469231731687303715884105728"; // i128::MAX + 1
        let err = Json::parse(too_big).unwrap_err();
        assert!(err.reason.contains("out of range"), "{err}");
        assert!(Json::parse("-170141183460469231731687303715884105729").is_err());
        // Absurdly long literals are rejected, not truncated.
        let huge = "9".repeat(200);
        assert!(Json::parse(&huge).is_err());
        assert!(Json::parse(&format!("{{\"n\":{huge}}}")).is_err());
        // `-0` is valid JSON and parses to zero.
        assert_eq!(Json::parse("-0").unwrap(), Json::Num(0));
        assert_eq!(Json::parse("0").unwrap(), Json::Num(0));
        // Leading zeros are malformed per RFC 8259.
        assert!(Json::parse("007").is_err());
        assert!(Json::parse("-012").is_err());
        assert!(Json::parse("[01]").is_err());
        // A bare sign or non-digit after `-` is malformed.
        assert!(Json::parse("-").is_err());
        assert!(Json::parse("-x").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"m\":3,\"s\":\"x\"}").unwrap();
        assert_eq!(v.get("m").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("m").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(-1).as_u64(), None);
    }
}
