//! # msrs-engine — solver-portfolio orchestration for MSRS
//!
//! The algorithm crates of this workspace implement the solver zoo of
//! *Scheduling with Many Shared Resources* (Deppert et al., 2023); this crate
//! is the layer that *serves* them:
//!
//! * [`profile`] — classifies an [`Instance`](msrs_core::Instance) (size,
//!   machine count, class structure, huge-job presence) into an
//!   [`InstanceProfile`];
//! * [`portfolio`] — plans a solver portfolio for a profile:
//!   [`SolverKind::FiveThirds`] as an instant incumbent,
//!   [`SolverKind::ThreeHalves`] for a certified 1.5·T horizon, the exact
//!   branch-and-bound and the EPTAS raced under configurable node budgets on
//!   instances where they are viable, and the prior-work baselines
//!   (Hebrard-style greedy, list scheduling, class-merging LPT) as cheap
//!   quality/latency trade-off probes;
//! * [`engine`] — the [`Engine`]: runs portfolio members and whole instance
//!   *batches* in parallel on worker threads, deterministically for a fixed
//!   configuration, with optional wall-clock deadline cancellation, and
//!   selects the best schedule *certified* by re-validation through
//!   [`msrs_core::validate()`];
//! * [`report`] — the typed [`SolveRequest`] / [`SolveReport`] API (solver
//!   used, makespan, lower bound, certified horizon/ratio, wall time, one
//!   [`SolverRun`] per portfolio member), suitable for a service frontend;
//! * [`json`] + [`jsonl`] — dependency-free JSON emission/parsing and the
//!   JSON-lines instance/report corpus format used by the `msrs` CLI;
//! * [`families`] — the named generator families (re-using `msrs-gen`) the
//!   CLI's `gen` and `bench` subcommands draw from;
//! * [`telemetry`] (re-export of `msrs-telemetry`) — the process-global
//!   metrics registry every layer above records into: counters, gauges,
//!   stage-latency histograms for each data-plane hop, and the
//!   per-(profile, member) outcome table fed by every solve. Recording
//!   never allocates; [`telemetry::snapshot()`] materializes a point-in-time
//!   view for reporting.
//!
//! ## Determinism
//!
//! Every solver in the portfolio is deterministic, and batch parallelism —
//! running on the workspace's work-distributing `rayon` backend — only
//! fans *instances* out across pool workers: each instance's report is
//! computed sequentially by a single worker with a fixed configuration, and
//! collection is order-preserving, so every report field except the
//! `wall_micros` timings is bit-identical regardless of thread count. The
//! only opt-in source of result nondeterminism is a wall-clock deadline
//! ([`EngineConfig::deadline`]), enforced *cooperatively inside* the
//! unbounded members (exact branch-and-bound, EPTAS) via a shared
//! [`CancelToken`](msrs_core::CancelToken), which may cut off slow members
//! on a loaded machine.
//!
//! ## Example
//!
//! ```
//! use msrs_engine::{Engine, EngineConfig, SolveRequest};
//!
//! let inst = msrs_gen::uniform(7, 4, 60, 10, 1, 50);
//! let engine = Engine::new(EngineConfig::default());
//! let report = engine.solve(&SolveRequest::new(inst.clone()));
//! assert!(msrs_core::validate(&inst, &report.schedule).is_ok());
//! assert!(report.makespan <= report.certified_horizon);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cachestore;
pub mod checkpoint;
pub mod dispatch;
pub mod engine;
pub mod families;
pub mod json;
pub mod jsonl;
pub mod portfolio;
pub mod profile;
pub mod remote;
pub mod report;
pub mod service;
pub mod stream;

pub use msrs_telemetry as telemetry;

pub use cache::{CacheKey, CacheStats, ReportCache};
pub use cachestore::{CacheLoadStats, CacheStore, CacheStoreEntry};
pub use checkpoint::{CheckpointHeader, CheckpointLog, ShardRecord, ShardStats};
pub use dispatch::{
    dispatch, dispatch_fleet, run_worker, DispatchConfig, DispatchOutcome, QuarantinedShard,
};
pub use engine::{Engine, EngineConfig, EptasPolicy, ExactPolicy, DEFAULT_CACHE_CAPACITY};
pub use families::{family, family_names, FamilySpec};
pub use jsonl::LineDecoder;
pub use portfolio::{plan, Portfolio, SolverKind};
pub use profile::{classify, InstanceProfile, SizeTier};
pub use rayon::PoolStats;
pub use remote::{run_remote_worker, RemoteHub, RemoteWorkerConfig, REMOTE_PROTO_VERSION};
pub use report::{RunStatus, SolveReport, SolveRequest, SolverRun};
pub use stream::{
    serve_jsonl, solve_stream, JsonlReader, JsonlServer, ServiceCore, StreamOutcome, StreamStats,
    DEFAULT_SHARD_SIZE,
};
