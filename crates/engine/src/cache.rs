//! Sharded LRU memoization of solve reports, keyed by canonical forms.
//!
//! The paper observes that an MSRS instance is fully described by its
//! multiset of class job-size multisets plus the machine count — IDs and
//! order carry no information. [`msrs_core::CanonicalForm`] materializes
//! that quotient with a stable 128-bit fingerprint, which makes result
//! caching sound: two requests with equal fingerprints (solved under the
//! same [config fingerprint](crate::EngineConfig::content_fingerprint))
//! receive the *same canonical report*, each remapped to its own job ids.
//!
//! The cache stores canonical reports (no request id, canonical schedule)
//! behind a small fixed number of independently locked shards; each shard
//! evicts its least-recently-used entry when over its share of the
//! capacity. Small caches (≤ [`SHARD_THRESHOLD`] entries) use a single
//! shard, so their eviction order is exact global LRU; larger caches trade
//! that for lock spread, making eviction per-shard LRU (an approximation
//! of global LRU). Hit/miss/eviction counters are monotone and lock-free.
//!
//! Every counter event is *dual-recorded*: the per-cache atomics stay the
//! source of truth for [`CacheStats`] (each [`Engine`](crate::Engine) owns
//! its cache, and callers may meter caches individually), and the same
//! event is mirrored into the process-global `msrs_telemetry` registry
//! (`msrs_cache_*` counters, `msrs_cache_entries` residency gauge) so one
//! telemetry snapshot covers every cache in the process. Lookups
//! additionally record a `cache_lookup` stage span. None of this allocates.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use msrs_telemetry::{registry, Stage};
use parking_lot::Mutex;

use crate::cachestore::CacheStore;
use crate::report::SolveReport;

/// Caches at most this many entries stay single-sharded (exact LRU).
pub const SHARD_THRESHOLD: usize = 64;
/// Shard count for caches above [`SHARD_THRESHOLD`].
const SHARDS: usize = 8;
/// Bounded depth of the persistence queue between [`ReportCache::insert`]
/// and the background flusher; a full queue drops the enqueue (counted)
/// rather than ever blocking the insert path on disk.
const PERSIST_QUEUE: usize = 1024;
/// Records the flusher drains per wakeup before fsyncing once.
const PERSIST_BATCH: usize = 256;

/// Cache key: the canonical-instance fingerprint plus the fingerprint of
/// the report-content-relevant engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`msrs_core::CanonicalForm::fingerprint`] of the instance.
    pub instance: u128,
    /// [`crate::EngineConfig::content_fingerprint`] of the solving config.
    pub config: u64,
}

/// Monotone counter snapshot of a [`ReportCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (including intra-batch dedup
    /// fan-outs, which reuse a solve exactly like a cache hit does).
    pub hits: u64,
    /// Lookups that required a fresh solve.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity (0 = caching disabled).
    pub capacity: usize,
}

struct Entry {
    /// Last-touch stamp from the shard's logical clock.
    stamp: u64,
    report: Arc<SolveReport>,
}

/// One insert queued for durable persistence: the canonical instance
/// fingerprint plus the report to append.
type PersistItem = (u128, Arc<SolveReport>);

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// A sharded LRU cache of canonical [`SolveReport`]s.
pub struct ReportCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry budget.
    shard_capacity: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Write-through persistence: inserts are enqueued (never blocking)
    /// for a background flusher that appends them to a [`CacheStore`].
    persist: Mutex<Option<SyncSender<PersistItem>>>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for ReportCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ReportCache")
            .field("capacity", &self.capacity)
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

impl ReportCache {
    /// A cache holding `capacity` reports; `capacity == 0` disables
    /// caching entirely ([`get`](Self::get) always misses without counting,
    /// [`insert`](Self::insert) is a no-op). Sharded caches (capacity
    /// above [`SHARD_THRESHOLD`]) round the per-shard budget up, so they
    /// may hold up to `SHARDS - 1` entries more than `capacity`.
    pub fn new(capacity: usize) -> Self {
        let shard_count = if capacity <= SHARD_THRESHOLD {
            1
        } else {
            SHARDS
        };
        // The capacity gauge reflects the most recently constructed cache
        // (one engine per process in the CLI, where this matters).
        registry().cache_capacity.set(capacity as i64);
        ReportCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity: capacity.div_ceil(shard_count).max(1),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persist: Mutex::new(None),
            flusher: Mutex::new(None),
        }
    }

    /// Whether this cache stores anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mix = (key.instance as u64) ^ ((key.instance >> 64) as u64) ^ key.config;
        &self.shards[(mix as usize) % self.shards.len()]
    }

    /// Looks `key` up, refreshing its recency and counting a hit or miss.
    /// Hits hand back a shared `Arc` of the stored canonical report — no
    /// report clone happens inside the cache, so a hit costs one refcount
    /// bump (the streaming serve path serializes straight from the `Arc`).
    pub fn get(&self, key: &CacheKey) -> Option<Arc<SolveReport>> {
        if !self.enabled() {
            return None;
        }
        let _span = Stage::CacheLookup.span();
        let mut shard = self.shard(key).lock();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = clock;
                let report = entry.report.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                registry().cache_hits_total.inc();
                Some(report)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                registry().cache_misses_total.inc();
                None
            }
        }
    }

    /// Looks `key` up *without* counting a hit/miss or refreshing its
    /// recency — for side-channel consumers (the fleet cache exchange)
    /// that must not perturb the cache metrics or eviction order.
    pub(crate) fn peek(&self, key: &CacheKey) -> Option<Arc<SolveReport>> {
        if !self.enabled() {
            return None;
        }
        self.shard(key)
            .lock()
            .map
            .get(key)
            .map(|e| e.report.clone())
    }

    /// Attaches a durable [`CacheStore`]: from now on every insert is
    /// enqueued for a background flusher thread that appends it to the
    /// store (deduplicated against `seen`, typically the warm-loaded
    /// fingerprints) and fsyncs per drained batch. The insert path never
    /// blocks on disk — a full queue drops the enqueue and counts it as
    /// `msrs_cache_store_queue_drops_total`.
    pub(crate) fn attach_store(
        &self,
        mut store: CacheStore,
        config_fp: u64,
        mut seen: HashSet<u128>,
    ) {
        let (tx, rx) = mpsc::sync_channel::<(u128, Arc<SolveReport>)>(PERSIST_QUEUE);
        let handle = std::thread::spawn(move || {
            // recv drains messages queued before the sender dropped, so
            // everything enqueued is flushed before the thread exits.
            while let Ok(first) = rx.recv() {
                let mut batch = vec![first];
                while batch.len() < PERSIST_BATCH {
                    match rx.try_recv() {
                        Ok(item) => batch.push(item),
                        Err(_) => break,
                    }
                }
                let mut wrote = false;
                for (fp, report) in batch {
                    if !seen.insert(fp) {
                        continue; // already durable (warm load or earlier insert)
                    }
                    let payload = report.to_store_json().to_string();
                    match store.append(fp, config_fp, &payload) {
                        Ok(()) => wrote = true,
                        Err(e) => eprintln!("msrs: cache store append failed: {e}"),
                    }
                }
                if wrote {
                    if let Err(e) = store.sync() {
                        eprintln!("msrs: cache store sync failed: {e}");
                    }
                }
            }
        });
        *self.persist.lock() = Some(tx);
        *self.flusher.lock() = Some(handle);
    }

    /// Records a hit that was answered without consulting the map (the
    /// intra-batch dedup fan-out path, which shares one solve across
    /// duplicate requests exactly like a cache hit would).
    pub fn count_dedup_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        registry().cache_hits_total.inc();
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least-recently
    /// used entry when over budget.
    pub fn insert(&self, key: CacheKey, report: Arc<SolveReport>) {
        if !self.enabled() {
            return;
        }
        {
            // Offer the entry to the persistence queue first (an Arc
            // clone and a bounded try_send — no allocation, no disk I/O;
            // the flusher deduplicates, so re-inserts are harmless).
            let persist = self.persist.lock();
            if let Some(tx) = persist.as_ref() {
                if let Err(TrySendError::Full(_)) = tx.try_send((key.instance, report.clone())) {
                    registry().cache_store_queue_drops_total.inc();
                }
            }
        }
        let mut shard = self.shard(&key).lock();
        shard.clock += 1;
        let stamp = shard.clock;
        let fresh = shard.map.insert(key, Entry { stamp, report }).is_none();
        let mut evicted = 0u64;
        while shard.map.len() > self.shard_capacity {
            let oldest = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("over-budget shard is non-empty");
            shard.map.remove(&oldest);
            evicted += 1;
        }
        drop(shard);
        let reg = registry();
        reg.cache_inserts_total.inc();
        if fresh {
            reg.cache_entries.add(1);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            reg.cache_evictions_total.add(evicted);
            reg.cache_entries.sub(evicted as i64);
        }
    }

    /// Current counter snapshot (per-cache; the process-global mirror is
    /// available via `msrs_telemetry::snapshot()`).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().map.len()).sum(),
            capacity: self.capacity,
        }
    }
}

impl Drop for ReportCache {
    fn drop(&mut self) {
        // Closing the sender lets the flusher drain its queue and exit;
        // joining it makes "process exited cleanly" imply "every
        // enqueued entry is durable".
        drop(self.persist.lock().take());
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
        // Return this cache's residency to the global gauge so it tracks
        // live entries across engines coming and going.
        let resident: usize = self.shards.iter().map(|s| s.lock().map.len()).sum();
        if resident > 0 {
            registry().cache_entries.sub(resident as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::SolverKind;
    use msrs_core::Schedule;

    fn key(i: u128) -> CacheKey {
        CacheKey {
            instance: i,
            config: 7,
        }
    }

    fn report(makespan: u64) -> Arc<SolveReport> {
        Arc::new(SolveReport {
            id: None,
            jobs: 1,
            machines: 1,
            classes: 1,
            lower_bound: makespan,
            makespan,
            winner: SolverKind::FiveThirds,
            certified_horizon: makespan,
            certified_by: SolverKind::FiveThirds,
            proven_optimal: true,
            cache_hit: false,
            wall_micros: 0,
            runs: vec![],
            schedule: Schedule::new(vec![]),
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ReportCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), report(10));
        assert_eq!(cache.get(&key(1)).unwrap().makespan, 10);
        assert!(cache
            .get(&CacheKey {
                instance: 1,
                config: 8
            })
            .is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn capacity_zero_disables() {
        let cache = ReportCache::new(0);
        assert!(!cache.enabled());
        cache.insert(key(1), report(10));
        assert!(cache.get(&key(1)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn lru_eviction_order_is_exact_for_small_caches() {
        let cache = ReportCache::new(2);
        cache.insert(key(1), report(1));
        cache.insert(key(2), report(2));
        // Touch 1 so 2 becomes the least recently used.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), report(3));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&key(2)).is_none(), "LRU entry 2 evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn large_caches_shard_but_respect_total_budget() {
        let cache = ReportCache::new(SHARD_THRESHOLD + 16);
        for i in 0..1000u128 {
            cache.insert(key(i), report(i as u64));
        }
        let stats = cache.stats();
        assert!(stats.entries <= SHARD_THRESHOLD + 16 + SHARDS);
        assert!(stats.evictions >= 1000 - (SHARD_THRESHOLD as u64 + 16 + SHARDS as u64));
    }

    #[test]
    fn reinserting_refreshes_instead_of_duplicating() {
        let cache = ReportCache::new(2);
        cache.insert(key(1), report(1));
        cache.insert(key(1), report(9));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.get(&key(1)).unwrap().makespan, 9);
    }
}
