//! Named generator families for the CLI's `gen` and `bench` subcommands,
//! re-using the seeded `msrs-gen` generators with engine-standard parameter
//! shapes (scaled by machine count, as in the experiment harness).

use msrs_core::Instance;

/// A named, seeded, machine-count-parameterized generator family.
#[derive(Clone, Copy)]
pub struct FamilySpec {
    /// Stable family name.
    pub name: &'static str,
    /// One-line description for `msrs gen --list`.
    pub about: &'static str,
    /// The generator: `(seed, machines) -> Instance`.
    pub generate: fn(u64, usize) -> Instance,
}

/// All families, in canonical order.
pub const FAMILIES: &[FamilySpec] = &[
    FamilySpec {
        name: "uniform",
        about: "uniform sizes over 6m classes, 40m jobs",
        generate: |seed, m| msrs_gen::uniform(seed, m, 40 * m, 6 * m, 1, 100),
    },
    FamilySpec {
        name: "zipf",
        about: "heavy-tailed class cardinalities (a few hot resources)",
        generate: |seed, m| msrs_gen::zipf_classes(seed, m, 40 * m, 6 * m, 1, 100),
    },
    FamilySpec {
        name: "satellite",
        about: "satellite-downlink bursts (Hebrard et al. motivation)",
        generate: |seed, m| msrs_gen::satellite(seed, m, 3 * m, 10),
    },
    FamilySpec {
        name: "photolitho",
        about: "photolithography reticles/steppers (bimodal lots)",
        generate: |seed, m| msrs_gen::photolithography(seed, m, 3 * m, 8),
    },
    FamilySpec {
        name: "adversarial",
        about: "m+1 unit-job classes: worst case for class-merging baselines",
        // The construction is deterministic by nature; the seed varies the
        // per-class job count (40..=80) so `gen --count N` emits N distinct
        // instances rather than one instance N times.
        generate: |seed, m| msrs_gen::adversarial_merged_lpt(m, 40 + (seed % 41) as usize),
    },
    FamilySpec {
        name: "boundary",
        about: "sizes planted on the T/4, T/2, 2T/3, 3T/4 case thresholds",
        generate: |seed, m| msrs_gen::boundary_stress(seed, m, 3 * m, 120),
    },
    FamilySpec {
        name: "huge",
        about: "classes led by jobs > (3/4)T (Algorithm_3/2 general case)",
        generate: |seed, m| msrs_gen::huge_heavy(seed, m, m, 2 * m, 96),
    },
    FamilySpec {
        name: "traffic",
        about: "duplicate-heavy repeated traffic (90% canonical duplicates, relabelled)",
        // Seeds are quantized in buckets of 10: a corpus of consecutive
        // seeds is 90% canonical duplicates that only canonicalization can
        // detect (class ids and job order are shuffled per seed) —
        // exercises the result cache and intra-batch dedup.
        generate: |seed, m| msrs_gen::traffic(seed, m, 10),
    },
];

/// Looks a family up by name.
pub fn family(name: &str) -> Option<&'static FamilySpec> {
    FAMILIES.iter().find(|f| f.name == name)
}

/// All family names, in canonical order.
pub fn family_names() -> Vec<&'static str> {
    FAMILIES.iter().map(|f| f.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_nonempty_deterministic_instances() {
        for spec in FAMILIES {
            let a = (spec.generate)(3, 4);
            let b = (spec.generate)(3, 4);
            assert_eq!(a, b, "{} must be deterministic per seed", spec.name);
            assert!(
                a.num_jobs() > 0,
                "{} generated an empty instance",
                spec.name
            );
            assert_eq!(a.machines(), 4);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(family("satellite").is_some());
        assert!(family("nope").is_none());
        assert_eq!(family_names().len(), FAMILIES.len());
    }
}
