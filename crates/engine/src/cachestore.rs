//! Durable, crash-safe persistence for the result cache.
//!
//! A cache store is an append-only JSONL segment log holding
//! `(canonical fingerprint, config fingerprint, serialized report)`
//! records, keyed — like the dispatch checkpoint journal — by the
//! engine's content-relevant configuration fingerprint: a store written
//! under one configuration refuses to load under another, because the
//! reports it holds would be wrong answers there.
//!
//! ## File format
//!
//! ```text
//! {"cache":"msrs-cache","version":1,"config_fp":…}      header
//! {"fp":"<32-hex>","config":…,"sum":…,"report":{…}}     record × N
//! {"segment":0}                                          segment marker
//! {"fp":…}                                               record × N
//! {"segment":1}
//! …
//! ```
//!
//! Every record carries an FNV-1a checksum over its key *and* payload
//! (`fp:config:report-json`), and the embedded report is the
//! [`SolveReport::to_store_json`] canonical serialization — parsing a
//! record and re-serializing its report reproduces the checksummed bytes
//! exactly, which is how the loader verifies integrity without storing
//! the payload twice.
//!
//! ## Durability and recovery semantics
//!
//! * Appends are buffered by the caller ([`ReportCache`]'s background
//!   flusher batches them) and made durable by [`CacheStore::sync`];
//!   a record the store synced survives a `kill -9`.
//! * A crash mid-append can tear at most the final line; the loader
//!   drops an unterminated tail silently (the entry is simply re-solved
//!   and re-appended later) and reopening truncates it away.
//! * A corrupt *complete* record — checksum mismatch, invalid UTF-8 or
//!   JSON, unknown solver name — quarantines its whole segment: the
//!   segment's buffered records are discarded, a structured telemetry
//!   counter (`msrs_cache_store_segments_quarantined_total`) and a log
//!   line record the loss, and loading continues at the next segment
//!   marker. Corruption can therefore cost at most one segment
//!   ([`SEGMENT_RECORDS`] entries), never the store and never a wrong
//!   answer.
//! * A parseable header with the wrong magic, version, or configuration
//!   fingerprint refuses the file outright (`InvalidData`) — silent
//!   cross-configuration reuse would serve reports the current engine
//!   could not have produced.
//!
//! Reopening for append truncates the torn tail (if any) and writes a
//! fresh segment marker, so new appends can never be swallowed by a
//! quarantined trailing segment.
//!
//! The deterministic fault kinds `cache-torn:at=N` and
//! `cache-flip:record=K` (see the [`mod@crate::dispatch`] module docs) mutate
//! the file inside [`CacheStore::open`] *before* loading, so tests and CI
//! can exercise these recovery paths byte-deterministically.
//!
//! [`ReportCache`]: crate::cache::ReportCache

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use msrs_telemetry::registry;

use crate::checkpoint::fnv1a_64;
use crate::dispatch::{CacheFault, FaultSpec};
use crate::json::Json;
use crate::report::SolveReport;

/// Magic string identifying a cache store.
pub const CACHE_STORE_MAGIC: &str = "msrs-cache";
/// Store format version; bumped on incompatible record changes.
pub const CACHE_STORE_VERSION: u64 = 1;
/// Records per segment — the quarantine blast radius of one corrupt
/// record.
pub const SEGMENT_RECORDS: usize = 64;

/// One entry loaded from a store: the canonical fingerprint, the parsed
/// report, and the exact payload bytes it was stored with (what the
/// dispatch cache authority serves to `#cacheq` probes without
/// re-serializing).
#[derive(Debug, Clone)]
pub struct CacheStoreEntry {
    /// [`msrs_core::CanonicalForm::fingerprint`] of the instance.
    pub fingerprint: u128,
    /// The verified canonical report.
    pub report: Arc<SolveReport>,
    /// The report's canonical store serialization (checksummed bytes).
    pub payload: Arc<str>,
}

/// What loading a store found; mirrored into the process-global
/// telemetry (`msrs_cache_store_{loads,load_errors,segments_quarantined}
/// _total`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLoadStats {
    /// Records that verified and loaded.
    pub loaded: u64,
    /// Complete records that failed verification (checksum mismatch,
    /// unparsable, foreign config).
    pub errors: u64,
    /// Segments discarded because they held a corrupt record.
    pub segments_quarantined: u64,
}

/// The append side of a cache store. Obtained from [`CacheStore::open`],
/// which also replays the existing contents.
#[derive(Debug)]
pub struct CacheStore {
    file: File,
    /// Records appended into the current segment.
    in_segment: usize,
    /// Id of the next segment marker to write.
    next_segment: u64,
}

/// FNV-1a over the record's key and payload: the canonical fingerprint
/// (hex), the config fingerprint (decimal), and the report's store
/// serialization, colon-separated.
fn record_checksum(fp: u128, config_fp: u64, payload: &str) -> u64 {
    fnv1a_64(format!("{fp:032x}:{config_fp}:{payload}").as_bytes())
}

fn header_line(config_fp: u64) -> String {
    Json::Obj(vec![
        ("cache".into(), Json::Str(CACHE_STORE_MAGIC.into())),
        ("version".into(), Json::Num(CACHE_STORE_VERSION as i128)),
        ("config_fp".into(), Json::Num(config_fp as i128)),
    ])
    .to_string()
}

/// Serializes one record line for `fp` under `config_fp`. `payload` must
/// be a [`SolveReport::to_store_json`] serialization (the loader verifies
/// by re-serializing).
pub fn record_line(fp: u128, config_fp: u64, payload: &str) -> String {
    let sum = record_checksum(fp, config_fp, payload);
    format!("{{\"fp\":\"{fp:032x}\",\"config\":{config_fp},\"sum\":{sum},\"report\":{payload}}}")
}

/// Parses and verifies one complete record line under `config_fp`.
/// `None` means the record is corrupt or foreign — never a panic.
fn parse_record(line: &str, config_fp: u64) -> Option<(u128, Arc<str>, Arc<SolveReport>)> {
    let v = Json::parse(line).ok()?;
    let fp = u128::from_str_radix(v.get("fp")?.as_str()?, 16).ok()?;
    let config = v.get("config")?.as_u64()?;
    if config != config_fp {
        return None;
    }
    let sum = v.get("sum")?.as_u64()?;
    let report_json = v.get("report")?;
    // The store serialization is canonical: re-serializing the parsed
    // tree reproduces the exact bytes the checksum covered, so any bit
    // that changed the content changes the recomputed sum.
    let payload = report_json.to_string();
    if record_checksum(fp, config, &payload) != sum {
        return None;
    }
    let report = SolveReport::from_store_json(report_json)?;
    Some((fp, payload.into(), Arc::new(report)))
}

/// Applies a `cache-torn` / `cache-flip` fault from `MSRS_FAULT` to the
/// file at `path` (no-op when absent, the spec names another kind, or
/// the file does not exist). Truncation cuts the file to `at` bytes; a
/// flip inverts one bit in the middle of the `record`-th record line.
fn apply_env_fault(path: &Path) -> io::Result<()> {
    let Some(fault) = FaultSpec::from_env().and_then(|f| f.cache_fault()) else {
        return Ok(());
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    match fault {
        CacheFault::Torn { at } => {
            let at = (at as usize).min(bytes.len());
            eprintln!(
                "msrs cachestore: injected torn tail at byte {at} of {}",
                path.display()
            );
            std::fs::write(path, &bytes[..at])
        }
        CacheFault::Flip { record } => {
            let mut bytes = bytes;
            let mut start = 0usize;
            let mut seen = 0u64;
            for line in bytes.split(|&b| b == b'\n') {
                if line.starts_with(b"{\"fp\":") {
                    if seen == record {
                        let mid = start + line.len() / 2;
                        bytes[mid] ^= 0x01;
                        eprintln!(
                            "msrs cachestore: injected bit flip in record {record} (byte {mid}) \
                             of {}",
                            path.display()
                        );
                        return std::fs::write(path, &bytes);
                    }
                    seen += 1;
                }
                start += line.len() + 1;
            }
            Ok(()) // fewer records than requested: nothing to flip
        }
    }
}

impl CacheStore {
    /// Opens (or creates) the store at `path` for the engine
    /// configuration fingerprinted by `config_fp`, replaying and
    /// verifying its contents: every verified entry is returned, the
    /// load outcome is mirrored into telemetry, a torn tail is truncated
    /// away, and the store is left positioned for appending. Fails with
    /// `InvalidData` when the file exists but is not a cache store or
    /// belongs to a different configuration.
    pub fn open(
        path: &Path,
        config_fp: u64,
    ) -> io::Result<(CacheStore, Vec<CacheStoreEntry>, CacheLoadStats)> {
        apply_env_fault(path)?;
        let invalid = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
        let mut entries = Vec::new();
        let mut stats = CacheLoadStats::default();
        // Byte offset just past the last fully terminated line: what a
        // reopen may keep. Everything after it is a torn tail.
        let mut good_len = 0u64;
        let mut next_segment = 0u64;
        let mut have_header = false;
        match File::open(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
            Ok(file) => {
                let mut reader = BufReader::new(file);
                let mut buf: Vec<u8> = Vec::new();
                // Records verified so far in the current segment; committed
                // at the next segment marker (or EOF), discarded wholesale
                // if the segment turns out to hold a corrupt record.
                let mut segment: Vec<CacheStoreEntry> = Vec::new();
                let mut quarantined = false;
                loop {
                    buf.clear();
                    if reader.read_until(b'\n', &mut buf)? == 0 {
                        break;
                    }
                    if !buf.ends_with(b"\n") {
                        // Torn tail from an interrupted append: drop the
                        // partial line, keep everything before it.
                        break;
                    }
                    let line_len = buf.len() as u64;
                    let line = std::str::from_utf8(&buf[..buf.len() - 1]).ok();
                    if !have_header {
                        let Some(line) = line else {
                            return Err(invalid(format!(
                                "{}: not a cache store (binary header)",
                                path.display()
                            )));
                        };
                        let header = Json::parse(line)
                            .ok()
                            .filter(|v| {
                                v.get("cache").and_then(Json::as_str) == Some(CACHE_STORE_MAGIC)
                            })
                            .ok_or_else(|| {
                                invalid(format!("{}: not a cache store", path.display()))
                            })?;
                        if header.get("version").and_then(Json::as_u64) != Some(CACHE_STORE_VERSION)
                        {
                            return Err(invalid(format!(
                                "{}: unsupported cache store version",
                                path.display()
                            )));
                        }
                        let file_fp = header.get("config_fp").and_then(Json::as_u64);
                        if file_fp != Some(config_fp) {
                            return Err(invalid(format!(
                                "{}: cache store belongs to a different engine configuration \
                                 (config_fp {:#x} recorded, {config_fp:#x} requested)",
                                path.display(),
                                file_fp.unwrap_or(0),
                            )));
                        }
                        have_header = true;
                        good_len += line_len;
                        continue;
                    }
                    good_len += line_len;
                    if let Some(marker) = line
                        .and_then(|l| Json::parse(l).ok())
                        .as_ref()
                        .and_then(|v| v.get("segment"))
                        .and_then(Json::as_u64)
                    {
                        // Segment boundary: commit the survivors, reset the
                        // quarantine state.
                        entries.append(&mut segment);
                        quarantined = false;
                        next_segment = next_segment.max(marker + 1);
                        continue;
                    }
                    match line.and_then(|l| parse_record(l, config_fp)) {
                        Some((fingerprint, payload, report)) if !quarantined => {
                            segment.push(CacheStoreEntry {
                                fingerprint,
                                report,
                                payload,
                            });
                        }
                        Some(_) => {} // rest of a quarantined segment
                        None => {
                            stats.errors += 1;
                            if !quarantined {
                                quarantined = true;
                                stats.segments_quarantined += 1;
                                segment.clear();
                                eprintln!(
                                    "msrs cachestore: corrupt record at byte {} of {} — \
                                     quarantining its segment",
                                    good_len - line_len,
                                    path.display()
                                );
                            }
                        }
                    }
                }
                if !quarantined {
                    entries.append(&mut segment);
                }
            }
        }
        stats.loaded = entries.len() as u64;
        let reg = registry();
        reg.cache_store_loads_total.add(stats.loaded);
        reg.cache_store_load_errors_total.add(stats.errors);
        reg.cache_store_segments_quarantined_total
            .add(stats.segments_quarantined);
        let mut store = if have_header {
            let file = OpenOptions::new().read(true).write(true).open(path)?;
            // Truncate the torn tail (and any unterminated garbage after
            // the last good line) before appending.
            file.set_len(good_len)?;
            let mut file = file;
            file.seek(SeekFrom::End(0))?;
            CacheStore {
                file,
                in_segment: 0,
                next_segment,
            }
        } else {
            // Missing, empty, or header-torn file: start fresh.
            let mut file = File::create(path)?;
            writeln!(file, "{}", header_line(config_fp))?;
            CacheStore {
                file,
                in_segment: 0,
                next_segment: 0,
            }
        };
        // A fresh segment marker isolates new appends from whatever the
        // trailing loaded segment held (possibly quarantined records).
        store.write_marker()?;
        store.file.sync_data()?;
        Ok((store, entries, stats))
    }

    fn write_marker(&mut self) -> io::Result<()> {
        writeln!(self.file, "{{\"segment\":{}}}", self.next_segment)?;
        self.next_segment += 1;
        self.in_segment = 0;
        Ok(())
    }

    /// Appends one record (buffered — call [`sync`](Self::sync) to make
    /// a batch durable). `payload` must be the report's
    /// [`SolveReport::to_store_json`] serialization.
    pub fn append(&mut self, fp: u128, config_fp: u64, payload: &str) -> io::Result<()> {
        writeln!(self.file, "{}", record_line(fp, config_fp, payload))?;
        self.in_segment += 1;
        if self.in_segment >= SEGMENT_RECORDS {
            self.write_marker()?;
        }
        Ok(())
    }

    /// Makes every appended record durable (one `fsync`, counted as one
    /// `msrs_cache_store_flushes_total` batch).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        registry().cache_store_flushes_total.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::SolverKind;
    use crate::report::{RunStatus, SolverRun};
    use msrs_core::{Assignment, Schedule};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msrs-cachestore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn report(seed: u64) -> SolveReport {
        SolveReport {
            id: None,
            jobs: 2,
            machines: 1,
            classes: 1,
            lower_bound: seed,
            makespan: seed + 1,
            winner: SolverKind::FiveThirds,
            certified_horizon: seed + 2,
            certified_by: SolverKind::FiveThirds,
            proven_optimal: false,
            cache_hit: false,
            wall_micros: 3,
            runs: vec![SolverRun {
                solver: SolverKind::FiveThirds,
                status: RunStatus::Completed,
                makespan: Some(seed + 1),
                certified_horizon: Some(seed + 2),
                nodes: None,
                wall_micros: 3,
            }],
            schedule: Schedule::new(vec![
                Assignment {
                    machine: 0,
                    start: 0,
                },
                Assignment {
                    machine: 0,
                    start: seed,
                },
            ]),
        }
    }

    fn fill(path: &Path, config_fp: u64, n: u64) {
        let (mut store, entries, _) = CacheStore::open(path, config_fp).unwrap();
        assert!(entries.is_empty());
        for i in 0..n {
            let payload = report(i).to_store_json().to_string();
            store.append(i as u128 + 1, config_fp, &payload).unwrap();
        }
        store.sync().unwrap();
    }

    #[test]
    fn round_trips_entries_across_reopen() {
        let path = tmp("round_trip.mcache");
        let _ = std::fs::remove_file(&path);
        fill(&path, 7, 3);
        let (_store, entries, stats) = CacheStore::open(&path, 7).unwrap();
        assert_eq!(stats.loaded, 3);
        assert_eq!((stats.errors, stats.segments_quarantined), (0, 0));
        assert_eq!(entries.len(), 3);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.fingerprint, i as u128 + 1);
            assert_eq!(e.report.makespan, i as u64 + 1);
            assert_eq!(*e.payload, report(i as u64).to_store_json().to_string());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refuses_foreign_config_and_foreign_files() {
        let path = tmp("foreign.mcache");
        let _ = std::fs::remove_file(&path);
        fill(&path, 7, 1);
        let err = CacheStore::open(&path, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different engine configuration"));
        std::fs::write(&path, "{\"makespan\":3}\n").unwrap();
        assert!(CacheStore::open(&path, 7).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = tmp("torn.mcache");
        let _ = std::fs::remove_file(&path);
        fill(&path, 7, 2);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"fp\":\"00000000").unwrap();
        drop(f);
        let (_store, entries, stats) = CacheStore::open(&path, 7).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(stats.errors, 0, "a torn tail is not corruption");
        // The reopen truncated the tail: a fresh load sees a clean file.
        let (_store2, entries2, stats2) = CacheStore::open(&path, 7).unwrap();
        assert_eq!(entries2.len(), 2);
        assert_eq!(stats2.errors, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_quarantines_only_its_segment() {
        let path = tmp("quarantine.mcache");
        let _ = std::fs::remove_file(&path);
        // Two segments: records 0..SEGMENT_RECORDS and a second batch.
        fill(&path, 7, SEGMENT_RECORDS as u64 + 4);
        // Corrupt one record in the first segment.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let victim = lines
            .iter()
            .position(|l| l.starts_with("{\"fp\":"))
            .unwrap();
        lines[victim] = lines[victim].replace("\"sum\":", "\"sum\":9");
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let (_store, entries, stats) = CacheStore::open(&path, 7).unwrap();
        assert_eq!(stats.segments_quarantined, 1);
        assert_eq!(stats.errors, 1);
        // The second segment survived untouched.
        assert_eq!(entries.len(), 4);
        assert!(entries
            .iter()
            .all(|e| e.fingerprint > SEGMENT_RECORDS as u128));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_and_missing_files_start_fresh() {
        let path = tmp("fresh.mcache");
        let _ = std::fs::remove_file(&path);
        let (_store, entries, stats) = CacheStore::open(&path, 7).unwrap();
        assert!(entries.is_empty());
        assert_eq!(stats, CacheLoadStats::default());
        drop(_store);
        std::fs::write(&path, "").unwrap();
        let (_store, entries, _) = CacheStore::open(&path, 7).unwrap();
        assert!(entries.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
