//! The typed request/report API of the engine.

use msrs_core::{Instance, Schedule, Time};

use crate::json::Json;
use crate::portfolio::SolverKind;

/// A solve request: one instance plus an optional caller-supplied id that is
/// echoed into the report (batch correlation, service tracing).
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Caller-supplied identifier (echoed verbatim in the report).
    pub id: Option<String>,
    /// The instance to solve.
    pub instance: Instance,
}

impl SolveRequest {
    /// Request without an id.
    pub fn new(instance: Instance) -> Self {
        SolveRequest { id: None, instance }
    }

    /// Request with an id.
    pub fn with_id(id: impl Into<String>, instance: Instance) -> Self {
        SolveRequest {
            id: Some(id.into()),
            instance,
        }
    }
}

/// Terminal status of one portfolio member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Produced a schedule that re-validated.
    Completed,
    /// Gave up within its budget (exact node budget, EPTAS decision budget).
    Exhausted,
    /// Interrupted by the portfolio deadline: either never started, or
    /// cancelled cooperatively inside its search loop (its `wall_micros`
    /// then reports the true, overshoot-free runtime).
    TimedOut,
    /// Produced output that failed re-validation (defense in depth — never
    /// expected; such output is discarded and reported).
    Invalid(String),
}

impl RunStatus {
    /// Stable machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            RunStatus::Completed => "completed",
            RunStatus::Exhausted => "exhausted",
            RunStatus::TimedOut => "timed_out",
            RunStatus::Invalid(_) => "invalid",
        }
    }

    /// Parses a [`label`](Self::label) back; the `invalid` label restores
    /// its diagnostic from `message` (empty when absent).
    pub fn from_label(label: &str, message: Option<&str>) -> Option<Self> {
        Some(match label {
            "completed" => RunStatus::Completed,
            "exhausted" => RunStatus::Exhausted,
            "timed_out" => RunStatus::TimedOut,
            "invalid" => RunStatus::Invalid(message.unwrap_or("").to_string()),
            _ => return None,
        })
    }
}

/// Outcome of one portfolio member.
#[derive(Debug, Clone)]
pub struct SolverRun {
    /// Which solver ran.
    pub solver: SolverKind,
    /// How it ended.
    pub status: RunStatus,
    /// Achieved makespan (when [`RunStatus::Completed`]).
    pub makespan: Option<Time>,
    /// The a-priori certified horizon this run proves for its own schedule:
    /// `⌊(5/3)·T⌋` / `⌊(3/2)·T⌋` for the approximation algorithms, the
    /// optimal makespan for a completed exact run, `None` for heuristics.
    pub certified_horizon: Option<Time>,
    /// Branch-and-bound nodes (exact solver only).
    pub nodes: Option<u64>,
    /// Wall time of this member in microseconds.
    pub wall_micros: u64,
}

/// The engine's answer for one instance.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Echo of [`SolveRequest::id`].
    pub id: Option<String>,
    /// Number of jobs.
    pub jobs: usize,
    /// Number of machines.
    pub machines: usize,
    /// Number of non-empty classes.
    pub classes: usize,
    /// The certified lower bound `T ≤ OPT`.
    pub lower_bound: Time,
    /// Makespan of the selected schedule.
    pub makespan: Time,
    /// The winning solver (least makespan; ties broken by canonical order).
    pub winner: SolverKind,
    /// The best proven upper bound on the selected makespan:
    /// `min` over completed certifying runs of their certified horizon.
    /// Always `≥ makespan`; equals `makespan` when the exact solver proved
    /// optimality.
    pub certified_horizon: Time,
    /// The solver whose certificate `certified_horizon` is.
    pub certified_by: SolverKind,
    /// Whether optimality was proven: the exact member completed, or the
    /// selected makespan met the lower bound (`T ≤ OPT ≤ makespan = T`).
    pub proven_optimal: bool,
    /// Whether this report was served from the engine's canonical-form
    /// result cache (or an intra-batch dedup fan-out) instead of a fresh
    /// solve. Cached reports are bit-identical to freshly solved ones
    /// except this flag and the `wall_micros` timings.
    pub cache_hit: bool,
    /// Total wall time for this instance in microseconds.
    pub wall_micros: u64,
    /// One entry per planned portfolio member, in canonical order.
    pub runs: Vec<SolverRun>,
    /// The selected schedule (re-validated by the engine before selection).
    pub schedule: Schedule,
}

impl SolveReport {
    /// Empirical ratio of the selected makespan against the lower bound
    /// (an upper bound on the true ratio vs OPT); `1.0` when `T = 0`.
    pub fn ratio_vs_bound(&self) -> f64 {
        if self.lower_bound == 0 {
            1.0
        } else {
            self.makespan as f64 / self.lower_bound as f64
        }
    }

    /// Serializes the report (without the schedule) directly into a byte
    /// buffer — byte-identical to `self.to_json().to_string()`, but with no
    /// intermediate [`Json`] tree or `String`: with a warm reusable buffer
    /// the serialization performs zero heap allocations. This is the emit
    /// primitive of the streaming serve path.
    pub fn write_json_line(&self, out: &mut Vec<u8>) {
        self.write_json_line_as(self.id.as_deref(), self.cache_hit, self.wall_micros, out);
    }

    /// As [`write_json_line`](Self::write_json_line), overriding the
    /// serving-dependent fields: the request id, the `cache_hit` flag, and
    /// the headline `wall_micros`. Used to emit a *cached canonical* report
    /// on behalf of a request without cloning the report (the per-member
    /// `runs` timings are the cached solve's own, exactly as the typed
    /// cache-hit path reports them).
    pub fn write_json_line_as(
        &self,
        id: Option<&str>,
        cache_hit: bool,
        wall_micros: u64,
        out: &mut Vec<u8>,
    ) {
        use std::io::Write;
        out.clear();
        // `write!` into a Vec<u8> cannot fail and does not allocate beyond
        // the buffer itself.
        let w = out;
        w.push(b'{');
        if let Some(id) = id {
            w.extend_from_slice(b"\"id\":");
            write_json_str(w, id);
            w.push(b',');
        }
        let _ = write!(
            w,
            "\"jobs\":{},\"machines\":{},\"classes\":{},\"lower_bound\":{},\"makespan\":{}",
            self.jobs, self.machines, self.classes, self.lower_bound, self.makespan
        );
        let _ = write!(w, ",\"winner\":\"{}\"", self.winner.name());
        let _ = write!(w, ",\"certified_horizon\":{}", self.certified_horizon);
        let _ = write!(w, ",\"certified_by\":\"{}\"", self.certified_by.name());
        let _ = write!(
            w,
            ",\"proven_optimal\":{},\"cache_hit\":{cache_hit},\"wall_micros\":{wall_micros}",
            self.proven_optimal
        );
        w.extend_from_slice(b",\"runs\":[");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                w.push(b',');
            }
            let _ = write!(
                w,
                "{{\"solver\":\"{}\",\"status\":\"{}\"",
                r.solver.name(),
                r.status.label()
            );
            if let Some(mk) = r.makespan {
                let _ = write!(w, ",\"makespan\":{mk}");
            }
            if let Some(h) = r.certified_horizon {
                let _ = write!(w, ",\"certified_horizon\":{h}");
            }
            if let Some(n) = r.nodes {
                let _ = write!(w, ",\"nodes\":{n}");
            }
            let _ = write!(w, ",\"wall_micros\":{}}}", r.wall_micros);
        }
        w.extend_from_slice(b"]}");
    }

    /// Serializes the report (without the schedule) as one JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = Vec::new();
        if let Some(id) = &self.id {
            obj.push(("id".into(), Json::Str(id.clone())));
        }
        obj.push(("jobs".into(), Json::Num(self.jobs as i128)));
        obj.push(("machines".into(), Json::Num(self.machines as i128)));
        obj.push(("classes".into(), Json::Num(self.classes as i128)));
        obj.push(("lower_bound".into(), Json::Num(self.lower_bound as i128)));
        obj.push(("makespan".into(), Json::Num(self.makespan as i128)));
        obj.push(("winner".into(), Json::Str(self.winner.name().into())));
        obj.push((
            "certified_horizon".into(),
            Json::Num(self.certified_horizon as i128),
        ));
        obj.push((
            "certified_by".into(),
            Json::Str(self.certified_by.name().into()),
        ));
        obj.push(("proven_optimal".into(), Json::Bool(self.proven_optimal)));
        obj.push(("cache_hit".into(), Json::Bool(self.cache_hit)));
        obj.push(("wall_micros".into(), Json::Num(self.wall_micros as i128)));
        let runs = self
            .runs
            .iter()
            .map(|r| {
                let mut run = vec![
                    ("solver".into(), Json::Str(r.solver.name().into())),
                    ("status".into(), Json::Str(r.status.label().into())),
                ];
                if let Some(mk) = r.makespan {
                    run.push(("makespan".into(), Json::Num(mk as i128)));
                }
                if let Some(h) = r.certified_horizon {
                    run.push(("certified_horizon".into(), Json::Num(h as i128)));
                }
                if let Some(n) = r.nodes {
                    run.push(("nodes".into(), Json::Num(n as i128)));
                }
                run.push(("wall_micros".into(), Json::Num(r.wall_micros as i128)));
                Json::Obj(run)
            })
            .collect();
        obj.push(("runs".into(), Json::Arr(runs)));
        Json::Obj(obj)
    }

    /// Serializes the report for durable storage: the [`to_json`](Self::to_json)
    /// wire object *plus* the fields the wire format elides because the
    /// caller already has them — the canonical `schedule` (as
    /// `[[machine, start], …]` pairs in job order) and the diagnostic of any
    /// `invalid` run. The output is canonical: serializing, parsing with
    /// [`from_store_json`](Self::from_store_json), and serializing again is
    /// bit-identical, which is what lets the cache store checksum records by
    /// re-serialization.
    pub fn to_store_json(&self) -> Json {
        let Json::Obj(mut obj) = self.to_json() else {
            unreachable!("to_json always returns an object")
        };
        if let Some((_, Json::Arr(runs))) = obj.iter_mut().find(|(k, _)| k == "runs") {
            for (run_json, run) in runs.iter_mut().zip(&self.runs) {
                if let (Json::Obj(fields), RunStatus::Invalid(msg)) = (run_json, &run.status) {
                    fields.push(("error".into(), Json::Str(msg.clone())));
                }
            }
        }
        let schedule = self
            .schedule
            .assignments()
            .iter()
            .map(|a| {
                Json::Arr(vec![
                    Json::Num(a.machine as i128),
                    Json::Num(a.start as i128),
                ])
            })
            .collect();
        obj.push(("schedule".into(), Json::Arr(schedule)));
        Json::Obj(obj)
    }

    /// Parses a [`to_store_json`](Self::to_store_json) object back into a
    /// typed report. Returns `None` on any structural mismatch — an unknown
    /// solver or status name, a missing field, a malformed schedule pair —
    /// never panics on foreign input.
    pub fn from_store_json(v: &Json) -> Option<SolveReport> {
        let id = match v.get("id") {
            Some(j) => Some(j.as_str()?.to_string()),
            None => None,
        };
        let as_bool = |key: &str| match v.get(key)? {
            Json::Bool(b) => Some(*b),
            _ => None,
        };
        let runs = v
            .get("runs")?
            .as_arr()?
            .iter()
            .map(|r| {
                let opt_num = |key: &str| match r.get(key) {
                    Some(j) => j.as_u64().map(Some),
                    None => Some(None),
                };
                Some(SolverRun {
                    solver: SolverKind::from_name(r.get("solver")?.as_str()?)?,
                    status: RunStatus::from_label(
                        r.get("status")?.as_str()?,
                        r.get("error").and_then(Json::as_str),
                    )?,
                    makespan: opt_num("makespan")?,
                    certified_horizon: opt_num("certified_horizon")?,
                    nodes: opt_num("nodes")?,
                    wall_micros: r.get("wall_micros")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let assignments = v
            .get("schedule")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr()?;
                if pair.len() != 2 {
                    return None;
                }
                Some(msrs_core::Assignment {
                    machine: pair[0].as_usize()?,
                    start: pair[1].as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(SolveReport {
            id,
            jobs: v.get("jobs")?.as_usize()?,
            machines: v.get("machines")?.as_usize()?,
            classes: v.get("classes")?.as_usize()?,
            lower_bound: v.get("lower_bound")?.as_u64()?,
            makespan: v.get("makespan")?.as_u64()?,
            winner: SolverKind::from_name(v.get("winner")?.as_str()?)?,
            certified_horizon: v.get("certified_horizon")?.as_u64()?,
            certified_by: SolverKind::from_name(v.get("certified_by")?.as_str()?)?,
            proven_optimal: as_bool("proven_optimal")?,
            cache_hit: as_bool("cache_hit")?,
            wall_micros: v.get("wall_micros")?.as_u64()?,
            runs,
            schedule: Schedule::new(assignments),
        })
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: makespan {} (T = {}, ratio {:.3}, certified ≤ {} by {}{}{}) in {} µs",
            self.id.as_deref().unwrap_or("instance"),
            self.makespan,
            self.lower_bound,
            self.ratio_vs_bound(),
            self.certified_horizon,
            self.certified_by,
            if self.proven_optimal { ", optimal" } else { "" },
            if self.cache_hit { ", cached" } else { "" },
            self.wall_micros,
        )
    }
}

/// JSON string escaping into a byte buffer — delegates to the crate's
/// single escaping routine ([`crate::json`]'s `write_escaped_str`, which
/// also backs [`Json::Str`]'s `Display`), through a no-allocation
/// `fmt::Write` adapter over the `Vec<u8>`.
fn write_json_str(out: &mut Vec<u8>, s: &str) {
    struct BytesWriter<'a>(&'a mut Vec<u8>);
    impl std::fmt::Write for BytesWriter<'_> {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.0.extend_from_slice(s.as_bytes());
            Ok(())
        }
    }
    crate::json::write_escaped_str(s, &mut BytesWriter(out)).expect("Vec writes are infallible");
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrs_core::Schedule;

    fn sample_report() -> SolveReport {
        SolveReport {
            id: Some("u-1".into()),
            jobs: 4,
            machines: 2,
            classes: 2,
            lower_bound: 10,
            makespan: 12,
            winner: SolverKind::ThreeHalves,
            certified_horizon: 15,
            certified_by: SolverKind::ThreeHalves,
            proven_optimal: false,
            cache_hit: false,
            wall_micros: 42,
            runs: vec![SolverRun {
                solver: SolverKind::ThreeHalves,
                status: RunStatus::Completed,
                makespan: Some(12),
                certified_horizon: Some(15),
                nodes: None,
                wall_micros: 42,
            }],
            schedule: Schedule::new(vec![]),
        }
    }

    #[test]
    fn json_contains_the_headline_fields() {
        let text = sample_report().to_json().to_string();
        for needle in [
            "\"id\":\"u-1\"",
            "\"makespan\":12",
            "\"winner\":\"three_halves\"",
            "\"certified_horizon\":15",
            "\"runs\":[{",
            "\"status\":\"completed\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn byte_writer_matches_tree_serialization() {
        let mut buf = Vec::new();
        let mut r = sample_report();
        r.runs.push(SolverRun {
            solver: SolverKind::Exact,
            status: RunStatus::Exhausted,
            makespan: None,
            certified_horizon: None,
            nodes: Some(123456),
            wall_micros: 9,
        });
        for id in [Some("plain"), Some("esc \"x\"\\\n\té✓\u{1}"), None] {
            r.id = id.map(str::to_owned);
            r.write_json_line(&mut buf);
            assert_eq!(
                std::str::from_utf8(&buf).unwrap(),
                r.to_json().to_string(),
                "id {id:?}"
            );
        }
        // The override variant matches a tree serialization of the
        // overridden report.
        let mut base = sample_report();
        base.id = None;
        base.write_json_line_as(Some("req-1"), true, 7, &mut buf);
        let mut over = base.clone();
        over.id = Some("req-1".into());
        over.cache_hit = true;
        over.wall_micros = 7;
        assert_eq!(
            std::str::from_utf8(&buf).unwrap(),
            over.to_json().to_string()
        );
    }

    #[test]
    fn store_serialization_round_trips_bit_identically() {
        use msrs_core::Assignment;
        let mut r = sample_report();
        r.runs.push(SolverRun {
            solver: SolverKind::Exact,
            status: RunStatus::Invalid("ghost overlap on machine 1".into()),
            makespan: None,
            certified_horizon: None,
            nodes: Some(77),
            wall_micros: 5,
        });
        r.schedule = Schedule::new(vec![
            Assignment {
                machine: 0,
                start: 0,
            },
            Assignment {
                machine: 1,
                start: 3,
            },
        ]);
        for id in [Some("x"), None] {
            r.id = id.map(str::to_owned);
            let text = r.to_store_json().to_string();
            assert!(text.contains("\"schedule\":[[0,0],[1,3]]"), "{text}");
            assert!(text.contains("\"error\":\"ghost overlap on machine 1\""));
            let back = SolveReport::from_store_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.to_store_json().to_string(), text, "id {id:?}");
            assert_eq!(back.runs[1].status, r.runs[1].status);
            assert_eq!(back.schedule, r.schedule);
            // The stored report still serves the wire format bit-identically.
            let mut wire = Vec::new();
            back.write_json_line(&mut wire);
            let mut expect = Vec::new();
            r.write_json_line(&mut expect);
            assert_eq!(wire, expect);
        }
        assert!(SolveReport::from_store_json(&Json::parse("{\"jobs\":1}").unwrap()).is_none());
        assert_eq!(RunStatus::from_label("bogus", None), None);
    }

    #[test]
    fn ratio_handles_zero_bound() {
        let mut r = sample_report();
        assert!((r.ratio_vs_bound() - 1.2).abs() < 1e-9);
        r.lower_bound = 0;
        assert_eq!(r.ratio_vs_bound(), 1.0);
    }
}
