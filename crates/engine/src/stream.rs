//! Streaming sharded batch pipeline: solve arbitrarily large JSONL corpora
//! in O(shard) memory.
//!
//! The module is layered around one transport-agnostic data plane:
//!
//! * [`ServiceCore`] — the reusable **service core**: admit a decoded line
//!   (fingerprint in place via [`msrs_core::flat_fingerprint`], probe the
//!   engine's result cache, dedup within the shard), batch-solve the
//!   misses, and serialize every report — cache **hits straight from the
//!   `Arc`'d canonical report** into a reusable byte buffer: no `Instance`,
//!   no `SolveRequest`, no report clone, zero heap allocations per instance
//!   once the buffers are warm. Both the batch driver below and the TCP
//!   front end in [`crate::service`] run on it, so there is exactly one
//!   data plane.
//! * [`serve_jsonl`] / [`JsonlServer`] — the thin *batch driver*: JSONL in,
//!   JSONL out, feeding `ServiceCore` shard by shard. With
//!   [`JsonlServer::set_decode_threads`] the single-reader parse bottleneck
//!   is broken: whole shards of raw lines are decoded on pool workers
//!   (thread-local [`LineDecoder`]s, chunked deterministically,
//!   order-preserving merge) before the sequential cache-probe/solve/emit
//!   steps. Output is byte-identical to the sequential path.
//! * [`solve_stream`] — the *typed* pipeline: an iterator of
//!   [`SolveRequest`]s (e.g. a [`JsonlReader`]) is fed through
//!   [`Engine::solve_batch_vec`] shard by shard and each [`SolveReport`] is
//!   handed to a callback in corpus order.
//!
//! Error semantics are *prefix-faithful* for all paths: when a malformed
//! line is hit mid-stream, everything successfully parsed before it —
//! including a partial final shard — is solved and emitted, and the error
//! (with its 1-based line number) is surfaced in [`StreamOutcome::error`]
//! afterwards.
//!
//! Determinism: a sharded run's reports are bit-identical to an unsharded
//! [`Engine::solve_batch`] over the same corpus — at any thread count, with
//! or without parallel decode — except for the `wall_micros` timings and
//! `cache_hit` provenance flags (sharding changes *when* a duplicate is
//! served from the cache versus deduplicated within its batch, never what
//! the report says about the schedule). Covered by `tests/stream.rs`,
//! `tests/serve.rs`, and `tests/service.rs`.

use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use msrs_core::CanonicalScratch;
use msrs_telemetry::{registry, Stage};
use rayon::prelude::*;

use crate::engine::Engine;
use crate::jsonl::{CorpusError, LineDecoder};
use crate::report::{SolveReport, SolveRequest};

/// Default shard size for streamed batches: large enough to keep every pool
/// worker saturated and let intra-shard dedup bite, small enough that a
/// shard of requests plus reports stays a bounded, cache-friendly working
/// set regardless of corpus length.
pub const DEFAULT_SHARD_SIZE: usize = 4096;

/// An incremental JSONL instance reader: yields one [`SolveRequest`] per
/// non-blank, non-`#` line, parsed as it is read (the input is never
/// materialized as a whole). Line numbers are physical and 1-based, exactly
/// as [`crate::jsonl::read_corpus`] reports them. Decoding goes through a
/// retained
/// [`LineDecoder`], so per-line parsing reuses its buffers; only the
/// materialized [`SolveRequest`] itself is allocated.
pub struct JsonlReader<R> {
    inner: R,
    line_no: usize,
    buf: String,
    decoder: LineDecoder,
}

impl<R: BufRead> JsonlReader<R> {
    /// Wraps a buffered reader positioned at the start of a corpus.
    pub fn new(inner: R) -> Self {
        JsonlReader {
            inner,
            line_no: 0,
            buf: String::new(),
            decoder: LineDecoder::new(),
        }
    }

    /// The number of the last physical line read (1-based; 0 before the
    /// first read).
    pub fn line_no(&self) -> usize {
        self.line_no
    }
}

impl<R: BufRead> Iterator for JsonlReader<R> {
    type Item = Result<SolveRequest, CorpusError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            match self.inner.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    return Some(Err(CorpusError::Io {
                        line: self.line_no,
                        message: e.to_string(),
                    }))
                }
            }
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return Some(
                self.decoder
                    .decode(self.line_no, line)
                    .map(|()| self.decoder.build_request()),
            );
        }
    }
}

/// Merged summary statistics of one streamed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Requests solved (and reports emitted).
    pub instances: usize,
    /// Shards dispatched to the engine.
    pub shards: usize,
    /// Configured shard size.
    pub shard_size: usize,
    /// Largest number of requests resident at once (≤ `shard_size`) — the
    /// memory high-water mark of the pipeline, in requests. The byte-level
    /// serve path only materializes cache *misses*, so there this counts
    /// materialized requests (0 for a fully cache-served stream).
    pub max_resident: usize,
    /// Reports with a proven-optimal schedule.
    pub proven_optimal: usize,
    /// Requests served directly from the result cache by the byte-level
    /// serve path (0 for [`solve_stream`], which reports hits per report).
    pub fast_path_hits: usize,
    /// Sum of per-report `makespan / lower_bound` ratios (mean =
    /// `ratio_sum / instances`).
    pub ratio_sum: f64,
    /// Worst per-report ratio (1.0 when no instances were solved).
    pub ratio_worst: f64,
    /// Wall time of the whole stream, µs.
    pub wall_micros: u64,
    /// Time spent reading and decoding input (JSONL parse), µs.
    pub parse_micros: u64,
    /// Time spent fingerprinting/canonicalizing decoded lines and probing
    /// the result cache, µs. Only the byte-level serve path populates this:
    /// the typed pipeline canonicalizes inside the solver batch, where the
    /// time lands in `solve_micros`.
    pub canon_micros: u64,
    /// Time spent inside the solver batches, µs.
    pub solve_micros: u64,
    /// Time spent serializing and writing reports, µs.
    pub serialize_micros: u64,
}

impl Default for StreamStats {
    fn default() -> Self {
        StreamStats {
            instances: 0,
            shards: 0,
            shard_size: DEFAULT_SHARD_SIZE,
            max_resident: 0,
            proven_optimal: 0,
            fast_path_hits: 0,
            ratio_sum: 0.0,
            ratio_worst: 1.0,
            wall_micros: 0,
            parse_micros: 0,
            canon_micros: 0,
            solve_micros: 0,
            serialize_micros: 0,
        }
    }
}

impl StreamStats {
    /// Mean `makespan / lower_bound` ratio (1.0 when nothing was solved).
    pub fn ratio_mean(&self) -> f64 {
        if self.instances == 0 {
            1.0
        } else {
            self.ratio_sum / self.instances as f64
        }
    }

    fn record_report(&mut self, report: &SolveReport) {
        self.instances += 1;
        if report.proven_optimal {
            self.proven_optimal += 1;
        }
        let ratio = report.ratio_vs_bound();
        self.ratio_sum += ratio;
        self.ratio_worst = self.ratio_worst.max(ratio);
    }
}

/// What a streamed run produced: the merged stats, plus the corpus error
/// that cut the stream short, if any. Reports for every line before the
/// error have already been emitted when the error is surfaced.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Merged summary counters.
    pub stats: StreamStats,
    /// `Some` when the stream terminated on a malformed/unreadable line.
    pub error: Option<CorpusError>,
}

/// Saturating nanosecond view of a duration, for stage-histogram recording
/// (a span would need to exceed ~584 years to clip).
fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Counts one request answered on the byte-level fast path (cache hit or
/// in-shard duplicate). Misses are counted once by `Engine::finalize` when
/// their batched solve lands, so the two sites together count every request
/// exactly once.
fn count_fast_path() {
    let reg = registry();
    reg.requests_total.inc();
    reg.serve_fast_path_total.inc();
}

/// Duration accumulators for the data-plane time split (converted to µs
/// once at the end, so sub-µs per-line slices are not truncated away).
#[derive(Default)]
struct Phases {
    parse: Duration,
    canon: Duration,
    solve: Duration,
    serialize: Duration,
}

impl Phases {
    fn write_into(&self, stats: &mut StreamStats) {
        stats.parse_micros = self.parse.as_micros() as u64;
        stats.canon_micros = self.canon.as_micros() as u64;
        stats.solve_micros = self.solve.as_micros() as u64;
        stats.serialize_micros = self.serialize.as_micros() as u64;
    }
}

/// Streams `requests` through `engine` in shards of `shard_size`, calling
/// `emit` for every report in corpus order. Memory stays O(`shard_size`):
/// one shard of requests and its reports at a time.
///
/// `Err` is returned only for `emit` failures (typically downstream I/O);
/// corpus-level parse errors end the stream early and come back in
/// [`StreamOutcome::error`] *after* all prior reports were emitted.
pub fn solve_stream<I, F>(
    engine: &Engine,
    requests: I,
    shard_size: usize,
    mut emit: F,
) -> io::Result<StreamOutcome>
where
    I: IntoIterator<Item = Result<SolveRequest, CorpusError>>,
    F: FnMut(&SolveReport) -> io::Result<()>,
{
    let shard_size = shard_size.max(1);
    let started = Instant::now();
    let mut stats = StreamStats {
        shard_size,
        ..StreamStats::default()
    };
    let mut phases = Phases::default();
    let mut error = None;
    let mut shard: Vec<SolveRequest> = Vec::with_capacity(shard_size.min(1024));
    let mut iter = requests.into_iter();
    loop {
        let t0 = Instant::now();
        let item = iter.next();
        phases.parse += t0.elapsed();
        match item {
            None => break,
            Some(Ok(req)) => {
                shard.push(req);
                if shard.len() >= shard_size {
                    solve_shard(engine, &mut shard, &mut stats, &mut phases, &mut emit)?;
                }
            }
            Some(Err(e)) => {
                error = Some(e);
                break;
            }
        }
    }
    // Flush the partial final shard — on the error path too, so every line
    // parsed before a malformed one still yields its report.
    if !shard.is_empty() {
        solve_shard(engine, &mut shard, &mut stats, &mut phases, &mut emit)?;
    }
    phases.write_into(&mut stats);
    stats.wall_micros = started.elapsed().as_micros() as u64;
    Ok(StreamOutcome { stats, error })
}

fn solve_shard<F>(
    engine: &Engine,
    shard: &mut Vec<SolveRequest>,
    stats: &mut StreamStats,
    phases: &mut Phases,
    emit: &mut F,
) -> io::Result<()>
where
    F: FnMut(&SolveReport) -> io::Result<()>,
{
    let reqs = std::mem::take(shard);
    stats.max_resident = stats.max_resident.max(reqs.len());
    let t0 = Instant::now();
    let reports = engine.solve_batch_vec(reqs);
    phases.solve += t0.elapsed();
    stats.shards += 1;
    for report in &reports {
        stats.record_report(report);
        let t1 = Instant::now();
        emit(report)?;
        phases.serialize += t1.elapsed();
    }
    Ok(())
}

/// One line of an in-flight serve shard: either a cache hit (the shared
/// canonical report, the id span in the core's id arena, and the probe
/// instant for the serving-time stamp) or an index into the materialized
/// miss batch.
enum Slot {
    Hit {
        report: Arc<SolveReport>,
        id: Option<(usize, usize)>,
        /// Serving time (decode + fingerprint + probe), stamped at decode —
        /// the byte-path analogue of the typed path's hit `wall_micros`
        /// (which covers probe + fan-out, never the rest of the batch).
        serve_micros: u64,
    },
    /// An in-shard duplicate of miss `first` (same canonical fingerprint):
    /// served at the byte level from the first occurrence's report — the
    /// duplicate line is never materialized as an `Instance` or request.
    Dup {
        first: usize,
        id: Option<(usize, usize)>,
        /// See [`Slot::Hit::serve_micros`].
        serve_micros: u64,
    },
    Miss(usize),
}

/// The transport-agnostic service core of the byte-level data plane:
/// decoder, canonical scratch, shard slot table, id arena, and the report
/// byte buffer, plus the stats/phase accumulators of the run in progress.
///
/// A transport drives it with three calls:
///
/// 1. [`begin`](Self::begin) once per run (resets stats and shard state);
/// 2. [`admit_line`](Self::admit_line) per meaningful input line — decode,
///    fingerprint, cache/dedup probe, classify into the pending shard
///    (or [`admit_prepared`](Self::admit_prepared) when the line was
///    already decoded elsewhere, e.g. on a pool worker);
/// 3. [`flush_with`](Self::flush_with) whenever the pending shard should be
///    solved and emitted (reports come back in admission order).
///
/// [`finish`](Self::finish) closes the run and returns the merged
/// [`StreamOutcome`]. One warm core serves an all-cache-hit corpus with
/// zero heap allocations per instance (asserted by `tests/alloc_free.rs`).
#[derive(Default)]
pub struct ServiceCore {
    decoder: LineDecoder,
    scratch: CanonicalScratch,
    slots: Vec<Slot>,
    ids: Vec<u8>,
    misses: Vec<SolveRequest>,
    /// Canonical fingerprint → miss index of its first occurrence in the
    /// current shard (duplicate-heavy traffic collapses here before any
    /// request is materialized).
    shard_forms: std::collections::HashMap<u128, usize>,
    report_buf: Vec<u8>,
    stats: StreamStats,
    phases: Phases,
}

impl ServiceCore {
    /// A fresh core (buffers grow on first use, then persist).
    pub fn new() -> Self {
        ServiceCore::default()
    }

    /// Starts a new run: resets the stats/phase accumulators and drops any
    /// unflushed shard state. Buffer capacity is retained.
    pub fn begin(&mut self, shard_size: usize) {
        self.stats = StreamStats {
            shard_size: shard_size.max(1),
            ..StreamStats::default()
        };
        self.phases = Phases::default();
        self.slots.clear();
        self.ids.clear();
        self.misses.clear();
        self.shard_forms.clear();
    }

    /// Number of admitted lines waiting in the pending shard.
    pub fn pending(&self) -> usize {
        self.slots.len()
    }

    /// The stats accumulated since [`begin`](Self::begin) (phase splits and
    /// wall time are only filled in by [`finish`](Self::finish)).
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Attributes `spent` input-side time (reading, skipping blanks) to the
    /// parse phase, keeping the phase split an honest partition of the
    /// driver's wall time.
    pub fn note_parse(&mut self, spent: Duration) {
        self.phases.parse += spent;
    }

    /// Admits one meaningful (non-blank, non-comment, trimmed) line:
    /// decodes it into the retained buffers, fingerprints the flat data in
    /// place, probes the result cache and the in-shard dedup table, and
    /// classifies the line into the pending shard. `started` is the
    /// transport's per-line start instant — it anchors both the
    /// decode-stage span and a hit's `wall_micros` serving-time stamp.
    ///
    /// With an inactive serve cache (disabled, or a configured deadline)
    /// every line is materialized, exactly as the typed pipeline behaves.
    /// On a decode error the pending shard is untouched and the core
    /// remains usable — batch transports treat the error as fatal
    /// (prefix-faithful), session transports report it and continue.
    pub fn admit_line(
        &mut self,
        engine: &Engine,
        line_no: usize,
        line: &str,
        started: Instant,
    ) -> Result<(), CorpusError> {
        if let Err(e) = self.decoder.decode(line_no, line) {
            self.phases.parse += started.elapsed();
            return Err(e);
        }
        // Decode is done: close the parse slice here so the
        // fingerprint/canonicalize/probe work below is attributed to its
        // own phase (and stage histogram), not folded into parse — the
        // phase sums then track wall time hop by hop.
        let decoded = started.elapsed();
        self.phases.parse += decoded;
        Stage::Decode.record_nanos(nanos(decoded));
        let t_canon = Instant::now();
        if engine.serve_cache_active() {
            let builder = self.decoder.builder();
            let fp = msrs_core::flat_fingerprint(
                builder.machines(),
                builder.sizes(),
                builder.offsets(),
                &mut self.scratch,
            );
            Stage::Canonicalize.record_nanos(nanos(t_canon.elapsed()));
            let id = self.decoder.id().map(|bytes| {
                let start = self.ids.len();
                self.ids.extend_from_slice(bytes);
                (start, self.ids.len())
            });
            self.classify(engine, fp, id, started, |core| core.decoder.build_request());
        } else {
            self.slots.push(Slot::Miss(self.misses.len()));
            self.misses.push(self.decoder.build_request());
        }
        self.phases.canon += t_canon.elapsed();
        Ok(())
    }

    /// Admits a line that was already decoded (and, with an active serve
    /// cache, fingerprinted) elsewhere — the merge half of the parallel
    /// decode path. The cache/dedup probe still happens here, sequentially
    /// and in admission order, so classification is identical to
    /// [`admit_line`](Self::admit_line): nothing was inserted into the
    /// cache between the worker's decode and this probe that a sequential
    /// pass would not also have seen.
    ///
    /// `fingerprint` must be `Some` exactly when the engine's serve cache
    /// is active (the driver captures that before fanning out).
    pub fn admit_prepared(
        &mut self,
        engine: &Engine,
        fingerprint: Option<u128>,
        request: SolveRequest,
        started: Instant,
    ) {
        let t_canon = Instant::now();
        if let Some(fp) = fingerprint {
            let id = request.id.as_deref().map(|id| {
                let start = self.ids.len();
                self.ids.extend_from_slice(id.as_bytes());
                (start, self.ids.len())
            });
            self.classify(engine, fp, id, started, move |_| request);
        } else {
            self.slots.push(Slot::Miss(self.misses.len()));
            self.misses.push(request);
        }
        self.phases.canon += t_canon.elapsed();
    }

    /// Probes cache → in-shard dedup table → miss, pushing the resulting
    /// slot. `materialize` builds the request only on the miss path.
    fn classify<F>(
        &mut self,
        engine: &Engine,
        fp: u128,
        id: Option<(usize, usize)>,
        started: Instant,
        materialize: F,
    ) where
        F: FnOnce(&mut Self) -> SolveRequest,
    {
        // `serve_cached` times the probe as a `cache_lookup` stage span
        // inside the cache itself.
        if let Some(report) = engine.serve_cached(fp) {
            self.stats.fast_path_hits += 1;
            count_fast_path();
            self.slots.push(Slot::Hit {
                report,
                id,
                serve_micros: started.elapsed().as_micros() as u64,
            });
        } else if let Some(&first) = self.shard_forms.get(&fp) {
            engine.count_serve_dedup_hit();
            self.stats.fast_path_hits += 1;
            count_fast_path();
            self.slots.push(Slot::Dup {
                first,
                id,
                serve_micros: started.elapsed().as_micros() as u64,
            });
        } else {
            self.shard_forms.insert(fp, self.misses.len());
            self.slots.push(Slot::Miss(self.misses.len()));
            let request = materialize(self);
            self.misses.push(request);
        }
    }

    /// Solves the pending shard's misses and emits every admitted line's
    /// report in admission order, then clears the shard. `emit` receives
    /// the serialized report line (including the trailing newline) and the
    /// report it was rendered from; its error aborts the flush (typically
    /// downstream I/O). A no-op when nothing is pending.
    pub fn flush_with<F>(&mut self, engine: &Engine, mut emit: F) -> io::Result<()>
    where
        F: FnMut(&[u8], &SolveReport) -> io::Result<()>,
    {
        if self.slots.is_empty() {
            return Ok(());
        }
        self.stats.max_resident = self.stats.max_resident.max(self.misses.len());
        let reports = if self.misses.is_empty() {
            Vec::new()
        } else {
            let t1 = Instant::now();
            let reports = engine.solve_batch_vec(std::mem::take(&mut self.misses));
            self.phases.solve += t1.elapsed();
            reports
        };
        self.stats.shards += 1;
        for slot in &self.slots {
            let t2 = Instant::now();
            let report: &SolveReport = match slot {
                Slot::Hit {
                    report,
                    id,
                    serve_micros,
                } => {
                    let id = id.map(|(start, end)| {
                        std::str::from_utf8(&self.ids[start..end]).expect("decoder emits UTF-8")
                    });
                    report.write_json_line_as(id, true, *serve_micros, &mut self.report_buf);
                    report
                }
                Slot::Dup {
                    first,
                    id,
                    serve_micros,
                } => {
                    let id = id.map(|(start, end)| {
                        std::str::from_utf8(&self.ids[start..end]).expect("decoder emits UTF-8")
                    });
                    reports[*first].write_json_line_as(
                        id,
                        true,
                        *serve_micros,
                        &mut self.report_buf,
                    );
                    &reports[*first]
                }
                Slot::Miss(index) => {
                    reports[*index].write_json_line(&mut self.report_buf);
                    &reports[*index]
                }
            };
            self.stats.record_report(report);
            self.report_buf.push(b'\n');
            emit(&self.report_buf, report)?;
            let serialized = t2.elapsed();
            self.phases.serialize += serialized;
            Stage::Serialize.record_nanos(nanos(serialized));
        }
        self.slots.clear();
        self.ids.clear();
        self.shard_forms.clear();
        Ok(())
    }

    /// Closes the run started by [`begin`](Self::begin): folds the phase
    /// accumulators into the stats, stamps the wall time against `started`,
    /// and returns the merged outcome. The core is ready for the next
    /// `begin`.
    pub fn finish(&mut self, started: Instant, error: Option<CorpusError>) -> StreamOutcome {
        self.phases.write_into(&mut self.stats);
        self.stats.wall_micros = started.elapsed().as_micros() as u64;
        StreamOutcome {
            stats: self.stats,
            error,
        }
    }
}

/// A shard of raw input accumulated for parallel decode: the concatenated
/// trimmed line text plus one `(line_no, start, end)` span per meaningful
/// line. `Arc`-shared with the pool workers and recycled between shards
/// when no stranded pool ticket still holds a clone.
#[derive(Default)]
struct RawShard {
    text: String,
    spans: Vec<(usize, usize, usize)>,
}

/// Lines per parallel-decode work unit. Fixed (independent of thread
/// count) so the chunking — and therefore every worker-side decode — is
/// deterministic for any pool size; small enough that a default shard
/// (4096 lines) splits into enough units to keep every worker busy.
const DECODE_UNIT_LINES: usize = 64;

/// One worker-decoded line: the canonical fingerprint (when the serve
/// cache was active at fan-out) and the materialized request.
pub(crate) type DecodedLine = Result<(Option<u128>, SolveRequest), CorpusError>;

/// Decodes `shard.spans[lo..hi]` with thread-local decoder/scratch
/// buffers (workers are persistent, so the buffers stay warm across
/// shards). Stops at the first malformed line in the range: the merge
/// walks results in corpus order, so the earliest error wins exactly as in
/// the sequential path.
fn decode_range(shard: &RawShard, lo: usize, hi: usize, fingerprint: bool) -> Vec<DecodedLine> {
    thread_local! {
        static DECODE_TLS: std::cell::RefCell<(LineDecoder, CanonicalScratch)> =
            std::cell::RefCell::new((LineDecoder::new(), CanonicalScratch::default()));
    }
    DECODE_TLS.with(|tls| {
        let (decoder, scratch) = &mut *tls.borrow_mut();
        let mut out = Vec::with_capacity(hi - lo);
        for &(line_no, start, end) in &shard.spans[lo..hi] {
            let t0 = Instant::now();
            match decoder.decode(line_no, &shard.text[start..end]) {
                Ok(()) => {
                    Stage::Decode.record_nanos(nanos(t0.elapsed()));
                    let fp = if fingerprint {
                        let t1 = Instant::now();
                        let builder = decoder.builder();
                        let fp = msrs_core::flat_fingerprint(
                            builder.machines(),
                            builder.sizes(),
                            builder.offsets(),
                            scratch,
                        );
                        Stage::Canonicalize.record_nanos(nanos(t1.elapsed()));
                        Some(fp)
                    } else {
                        None
                    };
                    out.push(Ok((fp, decoder.build_request())));
                }
                Err(e) => {
                    out.push(Err(e));
                    break;
                }
            }
        }
        out
    })
}

/// Like [`decode_range`], but an error does not stop the unit: serve
/// sessions are conversations, so a malformed line gets an error
/// response while the lines after it are still decoded and served.
fn decode_range_lenient(
    shard: &RawShard,
    lo: usize,
    hi: usize,
    fingerprint: bool,
) -> Vec<DecodedLine> {
    thread_local! {
        static DECODE_TLS: std::cell::RefCell<(LineDecoder, CanonicalScratch)> =
            std::cell::RefCell::new((LineDecoder::new(), CanonicalScratch::default()));
    }
    DECODE_TLS.with(|tls| {
        let (decoder, scratch) = &mut *tls.borrow_mut();
        let mut out = Vec::with_capacity(hi - lo);
        for &(line_no, start, end) in &shard.spans[lo..hi] {
            let t0 = Instant::now();
            match decoder.decode(line_no, &shard.text[start..end]) {
                Ok(()) => {
                    Stage::Decode.record_nanos(nanos(t0.elapsed()));
                    let fp = if fingerprint {
                        let t1 = Instant::now();
                        let builder = decoder.builder();
                        let fp = msrs_core::flat_fingerprint(
                            builder.machines(),
                            builder.sizes(),
                            builder.offsets(),
                            scratch,
                        );
                        Stage::Canonicalize.record_nanos(nanos(t1.elapsed()));
                        Some(fp)
                    } else {
                        None
                    };
                    out.push(Ok((fp, decoder.build_request())));
                }
                Err(e) => out.push(Err(e)),
            }
        }
        out
    })
}

/// Decodes a burst of pipelined request lines on pool workers in
/// deterministic fixed-size units: one result per input line, in input
/// order, errors included ([`decode_range_lenient`]). Used by the serve
/// sessions' `--decode-threads` path.
pub(crate) fn decode_burst(
    pool: &rayon::ThreadPool,
    lines: &[(usize, &str)],
    fingerprint: bool,
) -> Vec<DecodedLine> {
    let mut raw = RawShard::default();
    for &(line_no, text) in lines {
        let start = raw.text.len();
        raw.text.push_str(text);
        raw.spans.push((line_no, start, raw.text.len()));
    }
    let shard = Arc::new(raw);
    let n = shard.spans.len();
    let units: Vec<(usize, usize)> = (0..n)
        .step_by(DECODE_UNIT_LINES)
        .map(|lo| (lo, (lo + DECODE_UNIT_LINES).min(n)))
        .collect();
    let worker_shard = Arc::clone(&shard);
    let decoded: Vec<Vec<DecodedLine>> = pool.install(|| {
        units
            .into_par_iter()
            .map(move |(lo, hi)| decode_range_lenient(&worker_shard, lo, hi, fingerprint))
            .collect()
    });
    decoded.into_iter().flatten().collect()
}

/// The JSONL **batch driver** over [`ServiceCore`]: reads a corpus from a
/// `BufRead`, feeds the core shard by shard, and writes one report line per
/// instance (corpus order) to a `Write`.
///
/// By default lines are decoded inline on the reader thread — the
/// allocation-free steady state asserted by `tests/alloc_free.rs`. With
/// [`set_decode_threads`](Self::set_decode_threads)` > 1` the driver
/// instead accumulates each shard's raw lines and decodes them on pool
/// workers in deterministic fixed-size units, merging in corpus order;
/// output stays byte-identical (the cache probe and solve still run
/// sequentially in the merge), at the cost of materializing every line.
#[derive(Default)]
pub struct JsonlServer {
    core: ServiceCore,
    line_buf: String,
    raw: RawShard,
    decode_threads: usize,
}

impl JsonlServer {
    /// A fresh server (buffers grow on first use, then persist).
    pub fn new() -> Self {
        JsonlServer::default()
    }

    /// Sets the decode fan-out: `0` or `1` decodes inline on the reader
    /// thread (the zero-allocation path), anything larger decodes shards
    /// on that many pool workers.
    pub fn set_decode_threads(&mut self, threads: usize) {
        self.decode_threads = threads;
    }

    /// Builder-style [`set_decode_threads`](Self::set_decode_threads).
    pub fn with_decode_threads(mut self, threads: usize) -> Self {
        self.decode_threads = threads;
        self
    }

    /// Serves a JSONL corpus end to end: decode each line, serve cache hits
    /// straight from the canonical report, batch-solve the misses shard by
    /// shard, and write one report line per instance (corpus order) to
    /// `out`.
    ///
    /// `Err` is returned only for output failures; corpus-level parse
    /// errors end the stream early and come back in
    /// [`StreamOutcome::error`] after all prior reports were written.
    pub fn serve<R: BufRead, W: Write>(
        &mut self,
        engine: &Engine,
        input: R,
        out: &mut W,
        shard_size: usize,
    ) -> io::Result<StreamOutcome> {
        let shard_size = shard_size.max(1);
        let started = Instant::now();
        self.core.begin(shard_size);
        if self.decode_threads > 1 {
            self.serve_parallel(engine, input, out, shard_size, started)
        } else {
            self.serve_sequential(engine, input, out, shard_size, started)
        }
    }

    fn serve_sequential<R: BufRead, W: Write>(
        &mut self,
        engine: &Engine,
        mut input: R,
        out: &mut W,
        shard_size: usize,
        started: Instant,
    ) -> io::Result<StreamOutcome> {
        let mut error: Option<CorpusError> = None;
        let mut line_no = 0usize;
        let mut eof = false;
        while !eof && error.is_none() {
            // ---- Decode one shard. ----------------------------------------
            while self.core.pending() < shard_size {
                let t0 = Instant::now();
                self.line_buf.clear();
                line_no += 1;
                match input.read_line(&mut self.line_buf) {
                    Ok(0) => {
                        eof = true;
                        self.core.note_parse(t0.elapsed());
                        break;
                    }
                    Ok(_) => {}
                    Err(e) => {
                        error = Some(CorpusError::Io {
                            line: line_no,
                            message: e.to_string(),
                        });
                        self.core.note_parse(t0.elapsed());
                        break;
                    }
                }
                let line = self.line_buf.trim();
                if line.is_empty() || line.starts_with('#') {
                    self.core.note_parse(t0.elapsed());
                    continue;
                }
                if let Err(e) = self.core.admit_line(engine, line_no, line, t0) {
                    error = Some(e);
                    break;
                }
            }
            // ---- Solve the misses and emit in corpus order. ---------------
            self.core
                .flush_with(engine, |bytes, _| out.write_all(bytes))?;
        }
        Ok(self.core.finish(started, error))
    }

    fn serve_parallel<R: BufRead, W: Write>(
        &mut self,
        engine: &Engine,
        mut input: R,
        out: &mut W,
        shard_size: usize,
        started: Instant,
    ) -> io::Result<StreamOutcome> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.decode_threads)
            .build()
            .expect("pool handles are always constructible");
        let mut error: Option<CorpusError> = None;
        let mut line_no = 0usize;
        let mut eof = false;
        while !eof && error.is_none() {
            // ---- Accumulate one shard of raw lines. -----------------------
            let t_read = Instant::now();
            self.raw.text.clear();
            self.raw.spans.clear();
            while self.raw.spans.len() < shard_size {
                self.line_buf.clear();
                line_no += 1;
                match input.read_line(&mut self.line_buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(_) => {}
                    Err(e) => {
                        error = Some(CorpusError::Io {
                            line: line_no,
                            message: e.to_string(),
                        });
                        break;
                    }
                }
                let line = self.line_buf.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let start = self.raw.text.len();
                self.raw.text.push_str(line);
                self.raw.spans.push((line_no, start, self.raw.text.len()));
            }
            self.core.note_parse(t_read.elapsed());
            if self.raw.spans.is_empty() {
                continue;
            }
            // ---- Decode the shard on pool workers. ------------------------
            // Fixed-size units keep the fan-out deterministic; the Arc lets
            // the `'static` pool jobs share the raw text without copying.
            let t_decode = Instant::now();
            let shard = Arc::new(std::mem::take(&mut self.raw));
            let lines = shard.spans.len();
            let fingerprint = engine.serve_cache_active();
            let units: Vec<(usize, usize)> = (0..lines)
                .step_by(DECODE_UNIT_LINES)
                .map(|lo| (lo, (lo + DECODE_UNIT_LINES).min(lines)))
                .collect();
            let worker_shard = Arc::clone(&shard);
            let decoded: Vec<Vec<DecodedLine>> = pool.install(|| {
                units
                    .into_par_iter()
                    .map(move |(lo, hi)| decode_range(&worker_shard, lo, hi, fingerprint))
                    .collect()
            });
            self.core.note_parse(t_decode.elapsed());
            // Recycle the raw buffers unless a stranded pool ticket still
            // holds a clone (possible: enqueued-but-unstarted helper jobs
            // may outlive the operation) — then just start fresh.
            if let Ok(mut raw) = Arc::try_unwrap(shard) {
                raw.text.clear();
                raw.spans.clear();
                self.raw = raw;
            }
            // ---- Merge in corpus order: probe, classify, solve, emit. -----
            let t_merge = Instant::now();
            for line in decoded.into_iter().flatten() {
                match line {
                    Ok((fp, request)) => {
                        self.core.admit_prepared(engine, fp, request, t_merge);
                    }
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            self.core
                .flush_with(engine, |bytes, _| out.write_all(bytes))?;
        }
        Ok(self.core.finish(started, error))
    }
}

/// One-shot convenience around [`JsonlServer::serve`].
pub fn serve_jsonl<R: BufRead, W: Write>(
    engine: &Engine,
    input: R,
    out: &mut W,
    shard_size: usize,
) -> io::Result<StreamOutcome> {
    JsonlServer::new().serve(engine, input, out, shard_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use std::io::Cursor;

    #[test]
    fn reader_skips_blanks_and_comments_with_physical_line_numbers() {
        let text = "# header\n\n{\"machines\":2,\"classes\":[[3]]}\n\n# mid\n{\"machines\":1,\"classes\":[[1,2]]}\n";
        let mut reader = JsonlReader::new(Cursor::new(text));
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.instance.machines(), 2);
        assert_eq!(reader.line_no(), 3);
        let second = reader.next().unwrap().unwrap();
        assert_eq!(second.instance.num_jobs(), 2);
        assert_eq!(reader.line_no(), 6);
        assert!(reader.next().is_none());
    }

    #[test]
    fn reader_reports_the_failing_physical_line() {
        let text = "{\"machines\":2,\"classes\":[[3]]}\n\nnot json\n";
        let mut reader = JsonlReader::new(Cursor::new(text));
        assert!(reader.next().unwrap().is_ok());
        match reader.next().unwrap() {
            Err(CorpusError::Json { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Json error, got {other:?}"),
        }
    }

    #[test]
    fn stream_counts_shards_and_bounds_residency() {
        let reqs: Vec<Result<SolveRequest, CorpusError>> = (0..10)
            .map(|seed| {
                Ok(SolveRequest::with_id(
                    format!("u-{seed}"),
                    msrs_gen::uniform(seed, 2, 8, 3, 1, 9),
                ))
            })
            .collect();
        let engine = Engine::new(EngineConfig::default());
        let mut emitted = Vec::new();
        let outcome = solve_stream(&engine, reqs, 4, |r| {
            emitted.push(r.id.clone());
            Ok(())
        })
        .unwrap();
        assert!(outcome.error.is_none());
        assert_eq!(outcome.stats.instances, 10);
        assert_eq!(outcome.stats.shards, 3, "10 instances in shards of 4");
        assert_eq!(outcome.stats.max_resident, 4);
        assert_eq!(emitted.len(), 10);
        assert_eq!(emitted[0].as_deref(), Some("u-0"));
        assert_eq!(emitted[9].as_deref(), Some("u-9"));
        assert!(outcome.stats.ratio_worst >= 1.0);
        assert!(outcome.stats.ratio_mean() >= 1.0);
        // The data-plane split is populated and bounded by the total wall.
        assert!(outcome.stats.solve_micros <= outcome.stats.wall_micros);
        assert!(
            outcome.stats.solve_micros > 0,
            "solving takes measurable time"
        );
    }

    #[test]
    fn serve_splits_canonicalize_time_out_of_parse() {
        // Duplicate-heavy corpus: every line after the first is served at
        // the byte level, so the fingerprint/probe work is exercised often
        // enough to register in the µs-resolution phase counters.
        let line = "{\"machines\":2,\"classes\":[[5,3],[7],[2,2,2]]}\n";
        let corpus = line.repeat(512);
        let cfg = EngineConfig {
            cache_capacity: 64,
            ..EngineConfig::default()
        };
        let engine = Engine::new(cfg);
        let mut out = Vec::new();
        let outcome = serve_jsonl(&engine, Cursor::new(corpus), &mut out, 128).unwrap();
        assert!(outcome.error.is_none());
        assert_eq!(outcome.stats.instances, 512);
        assert!(outcome.stats.fast_path_hits >= 511);
        assert!(
            outcome.stats.canon_micros > 0,
            "cache-active serving fingerprints every line; 512 probes take \
             at least a microsecond in total"
        );
        // The phase accumulators partition the loop body, so their sum
        // never exceeds the wall clock of the whole stream.
        let sum = outcome.stats.parse_micros
            + outcome.stats.canon_micros
            + outcome.stats.solve_micros
            + outcome.stats.serialize_micros;
        assert!(
            sum <= outcome.stats.wall_micros,
            "phase sum {sum} vs wall {}",
            outcome.stats.wall_micros
        );
    }

    /// `wall_micros` and `cache_hit` are serving-dependent; everything else
    /// in a report line is part of the determinism contract.
    fn redact(line: &str) -> String {
        fn walk(json: &mut crate::json::Json) {
            match json {
                crate::json::Json::Obj(pairs) => {
                    for (k, v) in pairs.iter_mut() {
                        if k == "wall_micros" {
                            *v = crate::json::Json::Num(0);
                        } else if k == "cache_hit" {
                            *v = crate::json::Json::Bool(false);
                        } else {
                            walk(v);
                        }
                    }
                }
                crate::json::Json::Arr(items) => items.iter_mut().for_each(walk),
                _ => {}
            }
        }
        let mut v = crate::json::Json::parse(line).expect("report line parses");
        walk(&mut v);
        v.to_string()
    }

    #[test]
    fn parallel_decode_is_bit_identical_to_sequential() {
        // Mixed corpus: duplicates (cache hits + in-shard dups), distinct
        // instances, ids present and absent, blanks and comments.
        let mut corpus = String::from("# parallel decode corpus\n\n");
        for i in 0..96 {
            let inst = msrs_gen::uniform(i % 7, 2, 6, 2, 1, 9);
            let req = SolveRequest::with_id(format!("line-{i}"), inst);
            corpus.push_str(&crate::jsonl::write_instance_line(
                req.id.as_deref(),
                &req.instance,
            ));
            corpus.push('\n');
        }
        corpus.push_str("{\"machines\":2,\"classes\":[[5,3],[7]]}\n");
        for cache_capacity in [0, 1024] {
            let mk = || {
                Engine::new(EngineConfig {
                    threads: 2,
                    cache_capacity,
                    ..EngineConfig::default()
                })
            };
            let mut seq_out = Vec::new();
            let seq = JsonlServer::new()
                .serve(&mk(), Cursor::new(corpus.as_bytes()), &mut seq_out, 32)
                .unwrap();
            let mut par_out = Vec::new();
            let par = JsonlServer::new()
                .with_decode_threads(4)
                .serve(&mk(), Cursor::new(corpus.as_bytes()), &mut par_out, 32)
                .unwrap();
            assert!(seq.error.is_none() && par.error.is_none());
            assert_eq!(seq.stats.instances, 97);
            assert_eq!(par.stats.instances, 97);
            assert_eq!(par.stats.shards, seq.stats.shards);
            assert_eq!(par.stats.fast_path_hits, seq.stats.fast_path_hits);
            let seq_lines: Vec<String> = String::from_utf8(seq_out)
                .unwrap()
                .lines()
                .map(redact)
                .collect();
            let par_lines: Vec<String> = String::from_utf8(par_out)
                .unwrap()
                .lines()
                .map(redact)
                .collect();
            assert_eq!(seq_lines, par_lines, "cache_capacity={cache_capacity}");
        }
    }

    #[test]
    fn parallel_decode_keeps_prefix_error_semantics() {
        let mut corpus = String::new();
        for i in 0..10 {
            let inst = msrs_gen::uniform(i, 2, 5, 2, 1, 9);
            corpus.push_str(&crate::jsonl::write_instance_line(None, &inst));
            corpus.push('\n');
        }
        corpus.push_str("not json\n");
        corpus.push_str("{\"machines\":1,\"classes\":[[1]]}\n");
        let engine = Engine::new(EngineConfig {
            cache_capacity: 64,
            ..EngineConfig::default()
        });
        let mut out = Vec::new();
        let outcome = JsonlServer::new()
            .with_decode_threads(3)
            .serve(&engine, Cursor::new(corpus.as_bytes()), &mut out, 4)
            .unwrap();
        // Every line before the malformed one was emitted; the error names
        // the physical line; nothing after it was served.
        assert_eq!(outcome.stats.instances, 10);
        match outcome.error {
            Some(CorpusError::Json { line, .. }) => assert_eq!(line, 11),
            other => panic!("expected Json error on line 11, got {other:?}"),
        }
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 10);
    }

    #[test]
    fn zero_shard_size_is_clamped_to_one() {
        let reqs = vec![Ok(SolveRequest::new(msrs_gen::uniform(1, 2, 6, 2, 1, 9)))];
        let engine = Engine::new(EngineConfig::default());
        let outcome = solve_stream(&engine, reqs, 0, |_| Ok(())).unwrap();
        assert_eq!(outcome.stats.instances, 1);
        assert_eq!(outcome.stats.shard_size, 1);
    }
}
