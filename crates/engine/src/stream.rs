//! Streaming sharded batch pipeline: solve arbitrarily large JSONL corpora
//! in O(shard) memory.
//!
//! Two entry points share the shard discipline:
//!
//! * [`solve_stream`] — the *typed* pipeline: an iterator of
//!   [`SolveRequest`]s (e.g. a [`JsonlReader`]) is fed through
//!   [`Engine::solve_batch_vec`] shard by shard and each [`SolveReport`] is
//!   handed to a callback in corpus order.
//! * [`serve_jsonl`] / [`JsonlServer`] — the *byte-level serving data
//!   plane*: JSONL in, JSONL out. Each line is decoded into reusable
//!   buffers ([`LineDecoder`]), fingerprinted in place
//!   ([`msrs_core::flat_fingerprint`]), and probed against the engine's
//!   result cache; **hits are serialized straight from the cached canonical
//!   report** into a reusable byte buffer — no `Instance`, no
//!   `SolveRequest`, no report clone, zero heap allocations per instance
//!   once the buffers are warm. Only cache misses materialize requests and
//!   go through the solver batch. Output is byte-identical to piping
//!   [`solve_stream`] reports through
//!   [`SolveReport::write_json_line`] except for the serving-dependent
//!   `wall_micros` timings and `cache_hit` provenance flags.
//!
//! Error semantics are *prefix-faithful* for both: when a malformed line is
//! hit mid-stream, everything successfully parsed before it — including a
//! partial final shard — is solved and emitted, and the error (with its
//! 1-based line number) is surfaced in [`StreamOutcome::error`] afterwards.
//!
//! Determinism: a sharded run's reports are bit-identical to an unsharded
//! [`Engine::solve_batch`] over the same corpus — at any thread count —
//! except for the `wall_micros` timings and `cache_hit` provenance flags
//! (sharding changes *when* a duplicate is served from the cache versus
//! deduplicated within its batch, never what the report says about the
//! schedule). Covered by `tests/stream.rs` and `tests/serve.rs`.

use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use msrs_core::CanonicalScratch;
use msrs_telemetry::{registry, Stage};

use crate::engine::Engine;
use crate::jsonl::{CorpusError, LineDecoder};
use crate::report::{SolveReport, SolveRequest};

/// Default shard size for streamed batches: large enough to keep every pool
/// worker saturated and let intra-shard dedup bite, small enough that a
/// shard of requests plus reports stays a bounded, cache-friendly working
/// set regardless of corpus length.
pub const DEFAULT_SHARD_SIZE: usize = 4096;

/// An incremental JSONL instance reader: yields one [`SolveRequest`] per
/// non-blank, non-`#` line, parsed as it is read (the input is never
/// materialized as a whole). Line numbers are physical and 1-based, exactly
/// as [`crate::jsonl::read_corpus`] reports them. Decoding goes through a
/// retained
/// [`LineDecoder`], so per-line parsing reuses its buffers; only the
/// materialized [`SolveRequest`] itself is allocated.
pub struct JsonlReader<R> {
    inner: R,
    line_no: usize,
    buf: String,
    decoder: LineDecoder,
}

impl<R: BufRead> JsonlReader<R> {
    /// Wraps a buffered reader positioned at the start of a corpus.
    pub fn new(inner: R) -> Self {
        JsonlReader {
            inner,
            line_no: 0,
            buf: String::new(),
            decoder: LineDecoder::new(),
        }
    }

    /// The number of the last physical line read (1-based; 0 before the
    /// first read).
    pub fn line_no(&self) -> usize {
        self.line_no
    }
}

impl<R: BufRead> Iterator for JsonlReader<R> {
    type Item = Result<SolveRequest, CorpusError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            match self.inner.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    return Some(Err(CorpusError::Io {
                        line: self.line_no,
                        message: e.to_string(),
                    }))
                }
            }
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return Some(
                self.decoder
                    .decode(self.line_no, line)
                    .map(|()| self.decoder.build_request()),
            );
        }
    }
}

/// Merged summary statistics of one streamed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Requests solved (and reports emitted).
    pub instances: usize,
    /// Shards dispatched to the engine.
    pub shards: usize,
    /// Configured shard size.
    pub shard_size: usize,
    /// Largest number of requests resident at once (≤ `shard_size`) — the
    /// memory high-water mark of the pipeline, in requests. The byte-level
    /// serve path only materializes cache *misses*, so there this counts
    /// materialized requests (0 for a fully cache-served stream).
    pub max_resident: usize,
    /// Reports with a proven-optimal schedule.
    pub proven_optimal: usize,
    /// Requests served directly from the result cache by the byte-level
    /// serve path (0 for [`solve_stream`], which reports hits per report).
    pub fast_path_hits: usize,
    /// Sum of per-report `makespan / lower_bound` ratios (mean =
    /// `ratio_sum / instances`).
    pub ratio_sum: f64,
    /// Worst per-report ratio (1.0 when no instances were solved).
    pub ratio_worst: f64,
    /// Wall time of the whole stream, µs.
    pub wall_micros: u64,
    /// Time spent reading and decoding input (JSONL parse), µs.
    pub parse_micros: u64,
    /// Time spent fingerprinting/canonicalizing decoded lines and probing
    /// the result cache, µs. Only the byte-level serve path populates this:
    /// the typed pipeline canonicalizes inside the solver batch, where the
    /// time lands in `solve_micros`.
    pub canon_micros: u64,
    /// Time spent inside the solver batches, µs.
    pub solve_micros: u64,
    /// Time spent serializing and writing reports, µs.
    pub serialize_micros: u64,
}

impl Default for StreamStats {
    fn default() -> Self {
        StreamStats {
            instances: 0,
            shards: 0,
            shard_size: DEFAULT_SHARD_SIZE,
            max_resident: 0,
            proven_optimal: 0,
            fast_path_hits: 0,
            ratio_sum: 0.0,
            ratio_worst: 1.0,
            wall_micros: 0,
            parse_micros: 0,
            canon_micros: 0,
            solve_micros: 0,
            serialize_micros: 0,
        }
    }
}

impl StreamStats {
    /// Mean `makespan / lower_bound` ratio (1.0 when nothing was solved).
    pub fn ratio_mean(&self) -> f64 {
        if self.instances == 0 {
            1.0
        } else {
            self.ratio_sum / self.instances as f64
        }
    }

    fn record_report(&mut self, report: &SolveReport) {
        self.instances += 1;
        if report.proven_optimal {
            self.proven_optimal += 1;
        }
        let ratio = report.ratio_vs_bound();
        self.ratio_sum += ratio;
        self.ratio_worst = self.ratio_worst.max(ratio);
    }
}

/// What a streamed run produced: the merged stats, plus the corpus error
/// that cut the stream short, if any. Reports for every line before the
/// error have already been emitted when the error is surfaced.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Merged summary counters.
    pub stats: StreamStats,
    /// `Some` when the stream terminated on a malformed/unreadable line.
    pub error: Option<CorpusError>,
}

/// Saturating nanosecond view of a duration, for stage-histogram recording
/// (a span would need to exceed ~584 years to clip).
fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Counts one request answered on the byte-level fast path (cache hit or
/// in-shard duplicate). Misses are counted once by `Engine::finalize` when
/// their batched solve lands, so the two sites together count every request
/// exactly once.
fn count_fast_path() {
    let reg = registry();
    reg.requests_total.inc();
    reg.serve_fast_path_total.inc();
}

/// Duration accumulators for the data-plane time split (converted to µs
/// once at the end, so sub-µs per-line slices are not truncated away).
#[derive(Default)]
struct Phases {
    parse: Duration,
    canon: Duration,
    solve: Duration,
    serialize: Duration,
}

impl Phases {
    fn write_into(&self, stats: &mut StreamStats) {
        stats.parse_micros = self.parse.as_micros() as u64;
        stats.canon_micros = self.canon.as_micros() as u64;
        stats.solve_micros = self.solve.as_micros() as u64;
        stats.serialize_micros = self.serialize.as_micros() as u64;
    }
}

/// Streams `requests` through `engine` in shards of `shard_size`, calling
/// `emit` for every report in corpus order. Memory stays O(`shard_size`):
/// one shard of requests and its reports at a time.
///
/// `Err` is returned only for `emit` failures (typically downstream I/O);
/// corpus-level parse errors end the stream early and come back in
/// [`StreamOutcome::error`] *after* all prior reports were emitted.
pub fn solve_stream<I, F>(
    engine: &Engine,
    requests: I,
    shard_size: usize,
    mut emit: F,
) -> io::Result<StreamOutcome>
where
    I: IntoIterator<Item = Result<SolveRequest, CorpusError>>,
    F: FnMut(&SolveReport) -> io::Result<()>,
{
    let shard_size = shard_size.max(1);
    let started = Instant::now();
    let mut stats = StreamStats {
        shard_size,
        ..StreamStats::default()
    };
    let mut phases = Phases::default();
    let mut error = None;
    let mut shard: Vec<SolveRequest> = Vec::with_capacity(shard_size.min(1024));
    let mut iter = requests.into_iter();
    loop {
        let t0 = Instant::now();
        let item = iter.next();
        phases.parse += t0.elapsed();
        match item {
            None => break,
            Some(Ok(req)) => {
                shard.push(req);
                if shard.len() >= shard_size {
                    solve_shard(engine, &mut shard, &mut stats, &mut phases, &mut emit)?;
                }
            }
            Some(Err(e)) => {
                error = Some(e);
                break;
            }
        }
    }
    // Flush the partial final shard — on the error path too, so every line
    // parsed before a malformed one still yields its report.
    if !shard.is_empty() {
        solve_shard(engine, &mut shard, &mut stats, &mut phases, &mut emit)?;
    }
    phases.write_into(&mut stats);
    stats.wall_micros = started.elapsed().as_micros() as u64;
    Ok(StreamOutcome { stats, error })
}

fn solve_shard<F>(
    engine: &Engine,
    shard: &mut Vec<SolveRequest>,
    stats: &mut StreamStats,
    phases: &mut Phases,
    emit: &mut F,
) -> io::Result<()>
where
    F: FnMut(&SolveReport) -> io::Result<()>,
{
    let reqs = std::mem::take(shard);
    stats.max_resident = stats.max_resident.max(reqs.len());
    let t0 = Instant::now();
    let reports = engine.solve_batch_vec(reqs);
    phases.solve += t0.elapsed();
    stats.shards += 1;
    for report in &reports {
        stats.record_report(report);
        let t1 = Instant::now();
        emit(report)?;
        phases.serialize += t1.elapsed();
    }
    Ok(())
}

/// One line of an in-flight serve shard: either a cache hit (the shared
/// canonical report, the id span in the server's id arena, and the probe
/// instant for the serving-time stamp) or an index into the materialized
/// miss batch.
enum Slot {
    Hit {
        report: Arc<SolveReport>,
        id: Option<(usize, usize)>,
        /// Serving time (decode + fingerprint + probe), stamped at decode —
        /// the byte-path analogue of the typed path's hit `wall_micros`
        /// (which covers probe + fan-out, never the rest of the batch).
        serve_micros: u64,
    },
    /// An in-shard duplicate of miss `first` (same canonical fingerprint):
    /// served at the byte level from the first occurrence's report — the
    /// duplicate line is never materialized as an `Instance` or request.
    Dup {
        first: usize,
        id: Option<(usize, usize)>,
        /// See [`Slot::Hit::serve_micros`].
        serve_micros: u64,
    },
    Miss(usize),
}

/// The reusable state of the byte-level serving data plane: decoder,
/// canonical scratch, shard slot table, id arena, and the report byte
/// buffer. One warm `JsonlServer` serves an all-cache-hit corpus with zero
/// heap allocations per instance (asserted by `tests/alloc_free.rs`).
#[derive(Default)]
pub struct JsonlServer {
    decoder: LineDecoder,
    scratch: CanonicalScratch,
    line_buf: String,
    slots: Vec<Slot>,
    ids: Vec<u8>,
    misses: Vec<SolveRequest>,
    /// Canonical fingerprint → miss index of its first occurrence in the
    /// current shard (duplicate-heavy traffic collapses here before any
    /// request is materialized).
    shard_forms: std::collections::HashMap<u128, usize>,
    report_buf: Vec<u8>,
}

impl JsonlServer {
    /// A fresh server (buffers grow on first use, then persist).
    pub fn new() -> Self {
        JsonlServer::default()
    }

    /// Serves a JSONL corpus end to end: decode each line, serve cache hits
    /// straight from the canonical report, batch-solve the misses shard by
    /// shard, and write one report line per instance (corpus order) to
    /// `out`.
    ///
    /// `Err` is returned only for output failures; corpus-level parse
    /// errors end the stream early and come back in
    /// [`StreamOutcome::error`] after all prior reports were written.
    pub fn serve<R: BufRead, W: Write>(
        &mut self,
        engine: &Engine,
        mut input: R,
        out: &mut W,
        shard_size: usize,
    ) -> io::Result<StreamOutcome> {
        let shard_size = shard_size.max(1);
        let started = Instant::now();
        let mut stats = StreamStats {
            shard_size,
            ..StreamStats::default()
        };
        let mut phases = Phases::default();
        let mut error: Option<CorpusError> = None;
        let mut line_no = 0usize;
        let mut eof = false;
        while !eof && error.is_none() {
            // ---- Decode one shard. ----------------------------------------
            self.slots.clear();
            self.ids.clear();
            self.misses.clear();
            self.shard_forms.clear();
            while self.slots.len() < shard_size {
                let t0 = Instant::now();
                self.line_buf.clear();
                line_no += 1;
                match input.read_line(&mut self.line_buf) {
                    Ok(0) => {
                        eof = true;
                        phases.parse += t0.elapsed();
                        break;
                    }
                    Ok(_) => {}
                    Err(e) => {
                        error = Some(CorpusError::Io {
                            line: line_no,
                            message: e.to_string(),
                        });
                        phases.parse += t0.elapsed();
                        break;
                    }
                }
                let line = self.line_buf.trim();
                if line.is_empty() || line.starts_with('#') {
                    phases.parse += t0.elapsed();
                    continue;
                }
                if let Err(e) = self.decoder.decode(line_no, line) {
                    error = Some(e);
                    phases.parse += t0.elapsed();
                    break;
                }
                // Decode is done: close the parse slice here so the
                // fingerprint/canonicalize/probe work below is attributed
                // to its own phase (and stage histogram), not folded into
                // parse — the phase sums then track wall time hop by hop.
                let decoded = t0.elapsed();
                phases.parse += decoded;
                Stage::Decode.record_nanos(nanos(decoded));
                // With an active cache, fingerprint the decoded flat data in
                // place and try to serve without materializing anything:
                // first from the result cache, then from an earlier
                // occurrence of the same canonical form in this shard.
                // Without a cache (or with a deadline) every line is
                // materialized, exactly as the typed pipeline behaves.
                let t_canon = Instant::now();
                if engine.serve_cache_active() {
                    let builder = self.decoder.builder();
                    let fp = msrs_core::flat_fingerprint(
                        builder.machines(),
                        builder.sizes(),
                        builder.offsets(),
                        &mut self.scratch,
                    );
                    Stage::Canonicalize.record_nanos(nanos(t_canon.elapsed()));
                    let id = self.decoder.id().map(|bytes| {
                        let start = self.ids.len();
                        self.ids.extend_from_slice(bytes);
                        (start, self.ids.len())
                    });
                    // `serve_cached` times the probe as a `cache_lookup`
                    // stage span inside the cache itself.
                    if let Some(report) = engine.serve_cached(fp) {
                        stats.fast_path_hits += 1;
                        count_fast_path();
                        self.slots.push(Slot::Hit {
                            report,
                            id,
                            serve_micros: t0.elapsed().as_micros() as u64,
                        });
                    } else if let Some(&first) = self.shard_forms.get(&fp) {
                        engine.count_serve_dedup_hit();
                        stats.fast_path_hits += 1;
                        count_fast_path();
                        self.slots.push(Slot::Dup {
                            first,
                            id,
                            serve_micros: t0.elapsed().as_micros() as u64,
                        });
                    } else {
                        self.shard_forms.insert(fp, self.misses.len());
                        self.slots.push(Slot::Miss(self.misses.len()));
                        self.misses.push(self.decoder.build_request());
                    }
                } else {
                    self.slots.push(Slot::Miss(self.misses.len()));
                    self.misses.push(self.decoder.build_request());
                }
                phases.canon += t_canon.elapsed();
            }
            if self.slots.is_empty() {
                continue;
            }
            // ---- Solve the misses. ----------------------------------------
            stats.max_resident = stats.max_resident.max(self.misses.len());
            let reports = if self.misses.is_empty() {
                Vec::new()
            } else {
                let t1 = Instant::now();
                let reports = engine.solve_batch_vec(std::mem::take(&mut self.misses));
                phases.solve += t1.elapsed();
                reports
            };
            stats.shards += 1;
            // ---- Emit in corpus order. ------------------------------------
            for slot in &self.slots {
                let t2 = Instant::now();
                let report: &SolveReport = match slot {
                    Slot::Hit {
                        report,
                        id,
                        serve_micros,
                    } => {
                        let id = id.map(|(start, end)| {
                            std::str::from_utf8(&self.ids[start..end]).expect("decoder emits UTF-8")
                        });
                        report.write_json_line_as(id, true, *serve_micros, &mut self.report_buf);
                        report
                    }
                    Slot::Dup {
                        first,
                        id,
                        serve_micros,
                    } => {
                        let id = id.map(|(start, end)| {
                            std::str::from_utf8(&self.ids[start..end]).expect("decoder emits UTF-8")
                        });
                        reports[*first].write_json_line_as(
                            id,
                            true,
                            *serve_micros,
                            &mut self.report_buf,
                        );
                        &reports[*first]
                    }
                    Slot::Miss(index) => {
                        reports[*index].write_json_line(&mut self.report_buf);
                        &reports[*index]
                    }
                };
                stats.record_report(report);
                self.report_buf.push(b'\n');
                out.write_all(&self.report_buf)?;
                let serialized = t2.elapsed();
                phases.serialize += serialized;
                Stage::Serialize.record_nanos(nanos(serialized));
            }
        }
        phases.write_into(&mut stats);
        stats.wall_micros = started.elapsed().as_micros() as u64;
        Ok(StreamOutcome { stats, error })
    }
}

/// One-shot convenience around [`JsonlServer::serve`].
pub fn serve_jsonl<R: BufRead, W: Write>(
    engine: &Engine,
    input: R,
    out: &mut W,
    shard_size: usize,
) -> io::Result<StreamOutcome> {
    JsonlServer::new().serve(engine, input, out, shard_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use std::io::Cursor;

    #[test]
    fn reader_skips_blanks_and_comments_with_physical_line_numbers() {
        let text = "# header\n\n{\"machines\":2,\"classes\":[[3]]}\n\n# mid\n{\"machines\":1,\"classes\":[[1,2]]}\n";
        let mut reader = JsonlReader::new(Cursor::new(text));
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.instance.machines(), 2);
        assert_eq!(reader.line_no(), 3);
        let second = reader.next().unwrap().unwrap();
        assert_eq!(second.instance.num_jobs(), 2);
        assert_eq!(reader.line_no(), 6);
        assert!(reader.next().is_none());
    }

    #[test]
    fn reader_reports_the_failing_physical_line() {
        let text = "{\"machines\":2,\"classes\":[[3]]}\n\nnot json\n";
        let mut reader = JsonlReader::new(Cursor::new(text));
        assert!(reader.next().unwrap().is_ok());
        match reader.next().unwrap() {
            Err(CorpusError::Json { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Json error, got {other:?}"),
        }
    }

    #[test]
    fn stream_counts_shards_and_bounds_residency() {
        let reqs: Vec<Result<SolveRequest, CorpusError>> = (0..10)
            .map(|seed| {
                Ok(SolveRequest::with_id(
                    format!("u-{seed}"),
                    msrs_gen::uniform(seed, 2, 8, 3, 1, 9),
                ))
            })
            .collect();
        let engine = Engine::new(EngineConfig::default());
        let mut emitted = Vec::new();
        let outcome = solve_stream(&engine, reqs, 4, |r| {
            emitted.push(r.id.clone());
            Ok(())
        })
        .unwrap();
        assert!(outcome.error.is_none());
        assert_eq!(outcome.stats.instances, 10);
        assert_eq!(outcome.stats.shards, 3, "10 instances in shards of 4");
        assert_eq!(outcome.stats.max_resident, 4);
        assert_eq!(emitted.len(), 10);
        assert_eq!(emitted[0].as_deref(), Some("u-0"));
        assert_eq!(emitted[9].as_deref(), Some("u-9"));
        assert!(outcome.stats.ratio_worst >= 1.0);
        assert!(outcome.stats.ratio_mean() >= 1.0);
        // The data-plane split is populated and bounded by the total wall.
        assert!(outcome.stats.solve_micros <= outcome.stats.wall_micros);
        assert!(
            outcome.stats.solve_micros > 0,
            "solving takes measurable time"
        );
    }

    #[test]
    fn serve_splits_canonicalize_time_out_of_parse() {
        // Duplicate-heavy corpus: every line after the first is served at
        // the byte level, so the fingerprint/probe work is exercised often
        // enough to register in the µs-resolution phase counters.
        let line = "{\"machines\":2,\"classes\":[[5,3],[7],[2,2,2]]}\n";
        let corpus = line.repeat(512);
        let cfg = EngineConfig {
            cache_capacity: 64,
            ..EngineConfig::default()
        };
        let engine = Engine::new(cfg);
        let mut out = Vec::new();
        let outcome = serve_jsonl(&engine, Cursor::new(corpus), &mut out, 128).unwrap();
        assert!(outcome.error.is_none());
        assert_eq!(outcome.stats.instances, 512);
        assert!(outcome.stats.fast_path_hits >= 511);
        assert!(
            outcome.stats.canon_micros > 0,
            "cache-active serving fingerprints every line; 512 probes take \
             at least a microsecond in total"
        );
        // The phase accumulators partition the loop body, so their sum
        // never exceeds the wall clock of the whole stream.
        let sum = outcome.stats.parse_micros
            + outcome.stats.canon_micros
            + outcome.stats.solve_micros
            + outcome.stats.serialize_micros;
        assert!(
            sum <= outcome.stats.wall_micros,
            "phase sum {sum} vs wall {}",
            outcome.stats.wall_micros
        );
    }

    #[test]
    fn zero_shard_size_is_clamped_to_one() {
        let reqs = vec![Ok(SolveRequest::new(msrs_gen::uniform(1, 2, 6, 2, 1, 9)))];
        let engine = Engine::new(EngineConfig::default());
        let outcome = solve_stream(&engine, reqs, 0, |_| Ok(())).unwrap();
        assert_eq!(outcome.stats.instances, 1);
        assert_eq!(outcome.stats.shard_size, 1);
    }
}
