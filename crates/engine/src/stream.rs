//! Streaming sharded batch pipeline: solve arbitrarily large JSONL corpora
//! in O(shard) memory.
//!
//! [`JsonlReader`] parses instances incrementally off any [`BufRead`] — one
//! line at a time, with correct 1-based line numbers — and [`solve_stream`]
//! feeds fixed-size shards of requests through
//! [`Engine::solve_batch_vec`], emitting each shard's reports (in corpus
//! order) before the next shard is read. At no point does more than one
//! shard of requests plus its reports live in memory, so a million-instance
//! corpus streams through the same engine that serves point requests.
//!
//! Error semantics are *prefix-faithful*: when a malformed line is hit
//! mid-stream, everything successfully parsed before it — including a
//! partial final shard — is solved and emitted, and the error (with its
//! 1-based line number) is surfaced in [`StreamOutcome::error`] afterwards.
//!
//! Determinism: a sharded run's reports are bit-identical to an unsharded
//! [`Engine::solve_batch`] over the same corpus — at any thread count —
//! except for the `wall_micros` timings and `cache_hit` provenance flags
//! (sharding changes *when* a duplicate is served from the cache versus
//! deduplicated within its batch, never what the report says about the
//! schedule). Covered by `tests/stream.rs`.

use std::io::{self, BufRead};
use std::time::Instant;

use crate::engine::Engine;
use crate::jsonl::{self, CorpusError};
use crate::report::{SolveReport, SolveRequest};

/// Default shard size for streamed batches: large enough to keep every pool
/// worker saturated and let intra-shard dedup bite, small enough that a
/// shard of requests plus reports stays a bounded, cache-friendly working
/// set regardless of corpus length.
pub const DEFAULT_SHARD_SIZE: usize = 4096;

/// An incremental JSONL instance reader: yields one [`SolveRequest`] per
/// non-blank, non-`#` line, parsed as it is read (the input is never
/// materialized as a whole). Line numbers are physical and 1-based, exactly
/// as [`jsonl::read_corpus`] reports them.
pub struct JsonlReader<R> {
    inner: R,
    line_no: usize,
    buf: String,
}

impl<R: BufRead> JsonlReader<R> {
    /// Wraps a buffered reader positioned at the start of a corpus.
    pub fn new(inner: R) -> Self {
        JsonlReader {
            inner,
            line_no: 0,
            buf: String::new(),
        }
    }

    /// The number of the last physical line read (1-based; 0 before the
    /// first read).
    pub fn line_no(&self) -> usize {
        self.line_no
    }
}

impl<R: BufRead> Iterator for JsonlReader<R> {
    type Item = Result<SolveRequest, CorpusError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            match self.inner.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    return Some(Err(CorpusError::Io {
                        line: self.line_no,
                        message: e.to_string(),
                    }))
                }
            }
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return Some(jsonl::read_instance_line(self.line_no, line));
        }
    }
}

/// Merged summary statistics of one streamed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Requests solved (and reports emitted).
    pub instances: usize,
    /// Shards dispatched to the engine.
    pub shards: usize,
    /// Configured shard size.
    pub shard_size: usize,
    /// Largest number of requests resident at once (≤ `shard_size`) — the
    /// memory high-water mark of the pipeline, in requests.
    pub max_resident: usize,
    /// Reports with a proven-optimal schedule.
    pub proven_optimal: usize,
    /// Sum of per-report `makespan / lower_bound` ratios (mean =
    /// `ratio_sum / instances`).
    pub ratio_sum: f64,
    /// Worst per-report ratio (1.0 when no instances were solved).
    pub ratio_worst: f64,
    /// Wall time of the whole stream, µs.
    pub wall_micros: u64,
}

impl Default for StreamStats {
    fn default() -> Self {
        StreamStats {
            instances: 0,
            shards: 0,
            shard_size: DEFAULT_SHARD_SIZE,
            max_resident: 0,
            proven_optimal: 0,
            ratio_sum: 0.0,
            ratio_worst: 1.0,
            wall_micros: 0,
        }
    }
}

impl StreamStats {
    /// Mean `makespan / lower_bound` ratio (1.0 when nothing was solved).
    pub fn ratio_mean(&self) -> f64 {
        if self.instances == 0 {
            1.0
        } else {
            self.ratio_sum / self.instances as f64
        }
    }
}

/// What a streamed run produced: the merged stats, plus the corpus error
/// that cut the stream short, if any. Reports for every line before the
/// error have already been emitted when the error is surfaced.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Merged summary counters.
    pub stats: StreamStats,
    /// `Some` when the stream terminated on a malformed/unreadable line.
    pub error: Option<CorpusError>,
}

/// Streams `requests` through `engine` in shards of `shard_size`, calling
/// `emit` for every report in corpus order. Memory stays O(`shard_size`):
/// one shard of requests and its reports at a time.
///
/// `Err` is returned only for `emit` failures (typically downstream I/O);
/// corpus-level parse errors end the stream early and come back in
/// [`StreamOutcome::error`] *after* all prior reports were emitted.
pub fn solve_stream<I, F>(
    engine: &Engine,
    requests: I,
    shard_size: usize,
    mut emit: F,
) -> io::Result<StreamOutcome>
where
    I: IntoIterator<Item = Result<SolveRequest, CorpusError>>,
    F: FnMut(&SolveReport) -> io::Result<()>,
{
    let shard_size = shard_size.max(1);
    let started = Instant::now();
    let mut stats = StreamStats {
        shard_size,
        ..StreamStats::default()
    };
    let mut error = None;
    let mut shard: Vec<SolveRequest> = Vec::with_capacity(shard_size.min(1024));
    for item in requests {
        match item {
            Ok(req) => {
                shard.push(req);
                if shard.len() >= shard_size {
                    solve_shard(engine, &mut shard, &mut stats, &mut emit)?;
                }
            }
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    // Flush the partial final shard — on the error path too, so every line
    // parsed before a malformed one still yields its report.
    if !shard.is_empty() {
        solve_shard(engine, &mut shard, &mut stats, &mut emit)?;
    }
    stats.wall_micros = started.elapsed().as_micros() as u64;
    Ok(StreamOutcome { stats, error })
}

fn solve_shard<F>(
    engine: &Engine,
    shard: &mut Vec<SolveRequest>,
    stats: &mut StreamStats,
    emit: &mut F,
) -> io::Result<()>
where
    F: FnMut(&SolveReport) -> io::Result<()>,
{
    let reqs = std::mem::take(shard);
    stats.max_resident = stats.max_resident.max(reqs.len());
    let reports = engine.solve_batch_vec(reqs);
    stats.shards += 1;
    for report in &reports {
        stats.instances += 1;
        if report.proven_optimal {
            stats.proven_optimal += 1;
        }
        let ratio = report.ratio_vs_bound();
        stats.ratio_sum += ratio;
        stats.ratio_worst = stats.ratio_worst.max(ratio);
        emit(report)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use std::io::Cursor;

    #[test]
    fn reader_skips_blanks_and_comments_with_physical_line_numbers() {
        let text = "# header\n\n{\"machines\":2,\"classes\":[[3]]}\n\n# mid\n{\"machines\":1,\"classes\":[[1,2]]}\n";
        let mut reader = JsonlReader::new(Cursor::new(text));
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.instance.machines(), 2);
        assert_eq!(reader.line_no(), 3);
        let second = reader.next().unwrap().unwrap();
        assert_eq!(second.instance.num_jobs(), 2);
        assert_eq!(reader.line_no(), 6);
        assert!(reader.next().is_none());
    }

    #[test]
    fn reader_reports_the_failing_physical_line() {
        let text = "{\"machines\":2,\"classes\":[[3]]}\n\nnot json\n";
        let mut reader = JsonlReader::new(Cursor::new(text));
        assert!(reader.next().unwrap().is_ok());
        match reader.next().unwrap() {
            Err(CorpusError::Json { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Json error, got {other:?}"),
        }
    }

    #[test]
    fn stream_counts_shards_and_bounds_residency() {
        let reqs: Vec<Result<SolveRequest, CorpusError>> = (0..10)
            .map(|seed| {
                Ok(SolveRequest::with_id(
                    format!("u-{seed}"),
                    msrs_gen::uniform(seed, 2, 8, 3, 1, 9),
                ))
            })
            .collect();
        let engine = Engine::new(EngineConfig::default());
        let mut emitted = Vec::new();
        let outcome = solve_stream(&engine, reqs, 4, |r| {
            emitted.push(r.id.clone());
            Ok(())
        })
        .unwrap();
        assert!(outcome.error.is_none());
        assert_eq!(outcome.stats.instances, 10);
        assert_eq!(outcome.stats.shards, 3, "10 instances in shards of 4");
        assert_eq!(outcome.stats.max_resident, 4);
        assert_eq!(emitted.len(), 10);
        assert_eq!(emitted[0].as_deref(), Some("u-0"));
        assert_eq!(emitted[9].as_deref(), Some("u-9"));
        assert!(outcome.stats.ratio_worst >= 1.0);
        assert!(outcome.stats.ratio_mean() >= 1.0);
    }

    #[test]
    fn zero_shard_size_is_clamped_to_one() {
        let reqs = vec![Ok(SolveRequest::new(msrs_gen::uniform(1, 2, 6, 2, 1, 9)))];
        let engine = Engine::new(EngineConfig::default());
        let outcome = solve_stream(&engine, reqs, 0, |_| Ok(())).unwrap();
        assert_eq!(outcome.stats.instances, 1);
        assert_eq!(outcome.stats.shard_size, 1);
    }
}
