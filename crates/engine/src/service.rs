//! `msrs serve`: a concurrent JSONL-over-TCP front end on the
//! [`ServiceCore`] data plane.
//!
//! Wire protocol (one JSON value per line, strictly ordered per
//! connection — the N-th response line answers the N-th request line):
//!
//! * **request** — an instance line exactly as `msrs batch` reads it:
//!   `{"id":"r-1","machines":2,"classes":[[3,5],[7]]}` (`id` optional).
//! * **report** — the same report line `msrs batch` writes, e.g.
//!   `{"id":"r-1",…,"cache_hit":true,"wall_micros":12,…}`.
//! * **error** — a malformed request yields
//!   `{"error":"parse","line":N,"message":"…"}` and the session
//!   *continues* (unlike batch mode, where a corpus error is fatal:
//!   a session is a conversation, not a file).
//! * **overloaded** — admission control shed the request without decoding
//!   it: `{"error":"overloaded","max_inflight":N}`. Sent when
//!   `--max-inflight` requests are already being solved across all
//!   sessions. The slot is not consumed; the client may retry.
//! * **idle_timeout** — the session sat idle past `--idle-timeout-ms`:
//!   `{"error":"idle_timeout","idle_ms":D}` is written and the session
//!   closes instead of holding its thread forever.
//! * **session_limit** — the session served `--max-requests-per-session`
//!   requests: `{"error":"session_limit","max_requests":N}` is written
//!   and the session closes (load-balancer-friendly connection churn).
//!
//! A peer that disconnects mid-write (`EPIPE`/connection reset) ends its
//! session cleanly — counted in `msrs_serve_disconnects_total`, never a
//! session-thread error.
//!
//! Control lines start with `#` (comments in batch corpora):
//!
//! * `#stats` — responds with one line: the full telemetry snapshot as
//!   JSON (the same document `msrs stats --json` prints).
//! * `#shutdown` — begins graceful shutdown: every session finishes the
//!   requests it has already admitted, responses are flushed, then
//!   connections close and the listener exits.
//! * anything else starting with `#` is ignored, exactly as in a corpus.
//!
//! Deadlines: a server-wide `--deadline-ms` becomes the engine's
//! per-request deadline — each admitted request gets a fresh
//! [`CancelToken`](msrs_core::CancelToken) budget. As in the rest of the
//! engine, a configured deadline bypasses the result cache (documented
//! opt-in nondeterminism), and a report whose runs include a `timed_out`
//! status counts toward `msrs_serve_deadline_hits_total`.
//!
//! The optional metrics listener (`--metrics-addr`) answers every HTTP
//! GET with the Prometheus rendering of the registry (or JSON when the
//! request path contains `json`) — the live equivalent of
//! `msrs batch --metrics-out`.
//!
//! ## Pipelined decode (`--decode-threads`)
//!
//! With `--decode-threads N` (N > 1) a session coalesces every complete
//! request line a pipelining client has already delivered into one
//! *burst*: admission control runs per line in arrival order, the
//! admitted lines are decoded in parallel on an N-thread pool, and the
//! responses are written strictly in request order (shed and parse-error
//! lines interleaved in place). A control line cuts the burst so its
//! effect stays ordered too. `--decode-threads 1` (the default) keeps
//! the line-at-a-time path.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use msrs_telemetry::registry;

use crate::engine::Engine;
use crate::json::Json;
use crate::report::{RunStatus, SolveReport};
use crate::stream::ServiceCore;

/// How the accept and metrics loops poll for shutdown between
/// non-blocking accepts: long enough to stay invisible in profiles,
/// short enough that shutdown latency is imperceptible.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Configuration of one [`serve`] call.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Bound in-flight (admitted, unanswered) requests across all
    /// sessions; `0` means unlimited. Excess requests are shed with an
    /// `overloaded` line instead of queueing behind a saturated pool.
    pub max_inflight: usize,
    /// Serve the telemetry snapshot over HTTP on this address when set.
    pub metrics_addr: Option<String>,
    /// Close a session (with an `idle_timeout` error line) after this
    /// long without receiving a request; `None` waits forever.
    pub idle_timeout: Option<Duration>,
    /// Close a session (with a `session_limit` error line) after it has
    /// served this many requests; `0` means unlimited.
    pub max_requests_per_session: usize,
    /// Decode pipelined request bursts on this many pool threads per
    /// session; `0` or `1` keeps the sequential line-at-a-time path.
    pub decode_threads: usize,
}

/// Totals of one server lifetime, returned by [`ServerHandle::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Sessions accepted.
    pub sessions: u64,
    /// Request lines answered with a report.
    pub requests: u64,
    /// Request lines shed by admission control.
    pub sheds: u64,
    /// Request lines answered with a parse error.
    pub errors: u64,
}

/// State shared by the accept loop, every session thread, and the handle.
struct ServerShared {
    engine: Engine,
    max_inflight: usize,
    idle_timeout: Option<Duration>,
    max_requests_per_session: usize,
    decode_threads: usize,
    shutdown: AtomicBool,
    /// Admitted-but-unanswered requests across all sessions. The
    /// admission CAS runs against this; the `serve_inflight` gauge
    /// mirrors it for snapshots.
    inflight: AtomicUsize,
    /// One clone per **open** session so shutdown can unblock readers
    /// parked in `read_line` (EOF, never a torn line). Each entry is
    /// removed when its session exits — a lingering clone would keep the
    /// socket's write half open and rob the peer of its EOF.
    sessions: Mutex<Vec<(u64, TcpStream)>>,
    session_threads: Mutex<Vec<JoinHandle<()>>>,
    sessions_total: AtomicU64,
    requests_total: AtomicU64,
    sheds_total: AtomicU64,
    errors_total: AtomicU64,
}

impl ServerShared {
    /// Acquires an in-flight slot unless the bound is reached.
    fn try_admit(&self) -> bool {
        if self.max_inflight == 0 {
            self.inflight.fetch_add(1, Ordering::SeqCst);
            registry().serve_inflight.add(1);
            return true;
        }
        let mut current = self.inflight.load(Ordering::SeqCst);
        loop {
            if current >= self.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    registry().serve_inflight.add(1);
                    return true;
                }
                Err(observed) => current = observed,
            }
        }
    }

    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        registry().serve_inflight.sub(1);
    }

    /// Flips the shutdown flag and unblocks every session reader. The
    /// write halves stay open: in-flight requests still deliver their
    /// responses before the sessions close.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let sessions = self.sessions.lock().expect("session list lock");
        for (_, stream) in sessions.iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// A running server: join it with [`wait`](Self::wait), stop it with
/// [`begin_shutdown`](Self::begin_shutdown) (or a `#shutdown` control
/// line from any client).
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    accept_thread: JoinHandle<()>,
    metrics_thread: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
    metrics_local_addr: Option<SocketAddr>,
}

impl ServerHandle {
    /// The address the JSONL listener actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound metrics address, when a metrics listener was requested.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_local_addr
    }

    /// Begins graceful shutdown: stops accepting, unblocks idle session
    /// readers, lets in-flight requests complete and flush. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the accept loop and every session have exited and
    /// returns the lifetime totals. Call after
    /// [`begin_shutdown`](Self::begin_shutdown) (or rely on a client's
    /// `#shutdown`).
    pub fn wait(self) -> ServeSummary {
        let _ = self.accept_thread.join();
        loop {
            let handle = self.shared.session_threads.lock().expect("threads").pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        if let Some(metrics) = self.metrics_thread {
            let _ = metrics.join();
        }
        ServeSummary {
            sessions: self.shared.sessions_total.load(Ordering::SeqCst),
            requests: self.shared.requests_total.load(Ordering::SeqCst),
            sheds: self.shared.sheds_total.load(Ordering::SeqCst),
            errors: self.shared.errors_total.load(Ordering::SeqCst),
        }
    }
}

/// Binds `addr` and starts serving JSONL sessions on `engine` (one
/// thread per connection, all sharing the engine's result cache and
/// worker pool). Returns once the listener is bound; drive shutdown via
/// the returned handle or a `#shutdown` control line.
pub fn serve(engine: Engine, addr: &str, config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        engine,
        max_inflight: config.max_inflight,
        idle_timeout: config.idle_timeout,
        max_requests_per_session: config.max_requests_per_session,
        decode_threads: config.decode_threads.max(1),
        shutdown: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        sessions: Mutex::new(Vec::new()),
        session_threads: Mutex::new(Vec::new()),
        sessions_total: AtomicU64::new(0),
        requests_total: AtomicU64::new(0),
        sheds_total: AtomicU64::new(0),
        errors_total: AtomicU64::new(0),
    });
    let (metrics_thread, metrics_local_addr) = match config.metrics_addr.as_deref() {
        Some(addr) => {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            let bound = listener.local_addr()?;
            let shared = Arc::clone(&shared);
            let thread = std::thread::Builder::new()
                .name("msrs-metrics".into())
                .spawn(move || metrics_loop(&listener, &shared))
                .expect("metrics thread spawns");
            (Some(thread), Some(bound))
        }
        None => (None, None),
    };
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("msrs-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("accept thread spawns");
    Ok(ServerHandle {
        shared,
        accept_thread,
        metrics_thread,
        local_addr,
        metrics_local_addr,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Responses are small single-line writes in a request-response
                // protocol: leaving Nagle on would stall each one behind the
                // peer's delayed ACK.
                let _ = stream.set_nodelay(true);
                let session_id = shared.sessions_total.fetch_add(1, Ordering::SeqCst);
                registry().serve_sessions_total.inc();
                registry().serve_sessions_open.add(1);
                if let Ok(clone) = stream.try_clone() {
                    shared
                        .sessions
                        .lock()
                        .expect("session list lock")
                        .push((session_id, clone));
                }
                let session_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("msrs-session".into())
                    .spawn(move || {
                        let _ = session_loop(stream, &session_shared);
                        // Deregister so the last handle on the socket drops
                        // with this thread and the peer sees a clean close.
                        session_shared
                            .sessions
                            .lock()
                            .expect("session list lock")
                            .retain(|(id, _)| *id != session_id);
                        registry().serve_sessions_open.sub(1);
                    })
                    .expect("session thread spawns");
                shared
                    .session_threads
                    .lock()
                    .expect("threads lock")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Renders one structured error line (including the trailing newline).
fn error_line_bytes(kind: &str, fields: &[(&str, Json)]) -> Vec<u8> {
    let mut obj = vec![("error".to_string(), Json::Str(kind.to_string()))];
    for (k, v) in fields {
        obj.push(((*k).to_string(), v.clone()));
    }
    let mut line = Json::Obj(obj).to_string();
    line.push('\n');
    line.into_bytes()
}

/// Writes one structured error line.
fn write_error_line(out: &mut TcpStream, kind: &str, fields: &[(&str, Json)]) -> io::Result<()> {
    out.write_all(&error_line_bytes(kind, fields))
}

/// Counts a served report against the deadline-hit counter when any of
/// its solver runs ran out of budget.
fn count_deadline_hit(report: &SolveReport) {
    if report
        .runs
        .iter()
        .any(|run| run.status == RunStatus::TimedOut)
    {
        registry().serve_deadline_hits_total.inc();
    }
}

/// Runs one session and absorbs peer disconnects: a client that hangs up
/// mid-conversation (`EPIPE`, connection reset) is a clean session end,
/// counted in `msrs_serve_disconnects_total` — never an error bubbling out
/// of the session thread.
fn session_loop(stream: TcpStream, shared: &Arc<ServerShared>) -> io::Result<()> {
    match session_conversation(stream, shared) {
        Err(e) if crate::dispatch::is_disconnect(&e) => {
            registry().serve_disconnects_total.inc();
            Ok(())
        }
        other => other,
    }
}

/// `SO_RCVTIMEO` expiry surfaces as `WouldBlock` on Unix and `TimedOut`
/// on Windows.
fn is_idle_expiry(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn session_conversation(stream: TcpStream, shared: &Arc<ServerShared>) -> io::Result<()> {
    if shared.decode_threads > 1 {
        return session_conversation_batched(stream, shared);
    }
    let reader_stream = stream.try_clone()?;
    reader_stream.set_read_timeout(shared.idle_timeout)?;
    let mut reader = BufReader::new(reader_stream);
    let mut out = stream;
    let mut core = ServiceCore::new();
    core.begin(1);
    let mut line_buf = String::new();
    let mut line_no = 0usize;
    let mut served_requests = 0usize;
    loop {
        line_buf.clear();
        line_no += 1;
        match reader.read_line(&mut line_buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if is_idle_expiry(&e) => {
                registry().serve_idle_closes_total.inc();
                let idle_ms = shared
                    .idle_timeout
                    .map(|d| d.as_millis() as i128)
                    .unwrap_or(0);
                write_error_line(&mut out, "idle_timeout", &[("idle_ms", Json::Num(idle_ms))])?;
                out.flush()?;
                break;
            }
            Err(e) => return Err(e),
        }
        let line = line_buf.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(control) = line.strip_prefix('#') {
            match control.trim() {
                "stats" => {
                    let mut doc = registry().snapshot().to_json_string();
                    doc.push('\n');
                    out.write_all(doc.as_bytes())?;
                    out.flush()?;
                }
                "shutdown" => shared.begin_shutdown(),
                _ => {}
            }
            continue;
        }
        // ---- Admission control. -------------------------------------------
        if !shared.try_admit() {
            shared.sheds_total.fetch_add(1, Ordering::SeqCst);
            registry().serve_sheds_total.inc();
            write_error_line(
                &mut out,
                "overloaded",
                &[("max_inflight", Json::Num(shared.max_inflight as i128))],
            )?;
            out.flush()?;
            continue;
        }
        // ---- Serve one request through the core. --------------------------
        let t0 = Instant::now();
        let result = core.admit_line(&shared.engine, line_no, line, t0);
        let admitted = result.is_ok();
        let served = match result {
            Ok(()) => core.flush_with(&shared.engine, |bytes, report| {
                count_deadline_hit(report);
                out.write_all(bytes)
            }),
            Err(e) => {
                shared.errors_total.fetch_add(1, Ordering::SeqCst);
                let (kind, line) = match &e {
                    crate::jsonl::CorpusError::Json { line, .. } => ("parse", *line),
                    crate::jsonl::CorpusError::Malformed { line, .. } => ("parse", *line),
                    crate::jsonl::CorpusError::Io { line, .. } => ("io", *line),
                };
                write_error_line(
                    &mut out,
                    kind,
                    &[
                        ("line", Json::Num(line as i128)),
                        ("message", Json::Str(e.to_string())),
                    ],
                )
            }
        };
        shared.release();
        served?;
        if admitted {
            shared.requests_total.fetch_add(1, Ordering::SeqCst);
            served_requests += 1;
        }
        out.flush()?;
        if shared.max_requests_per_session != 0
            && served_requests >= shared.max_requests_per_session
        {
            registry().serve_limit_closes_total.inc();
            write_error_line(
                &mut out,
                "session_limit",
                &[(
                    "max_requests",
                    Json::Num(shared.max_requests_per_session as i128),
                )],
            )?;
            out.flush()?;
            break;
        }
    }
    Ok(())
}

/// Maximum request lines coalesced into one pipelined burst: bounds the
/// latency of the burst's first response and the per-burst allocations.
const MAX_SERVE_BATCH: usize = 256;

/// One response slot of a burst, in request order.
enum Plan {
    /// Already rendered (shed or parse error) — written in place.
    Immediate(Vec<u8>),
    /// Answered by the next report the core emits.
    Core,
}

/// The `--decode-threads` session path: coalesces every complete request
/// line a pipelining client has already delivered into a burst, decodes
/// the admitted lines in parallel, and answers strictly in request order.
/// Semantics are otherwise identical to the sequential path.
fn session_conversation_batched(stream: TcpStream, shared: &Arc<ServerShared>) -> io::Result<()> {
    let reader_stream = stream.try_clone()?;
    reader_stream.set_read_timeout(shared.idle_timeout)?;
    let mut reader = BufReader::new(reader_stream);
    let mut out = stream;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(shared.decode_threads)
        .build()
        .expect("decode pool builds");
    let mut core = ServiceCore::new();
    core.begin(1);
    let mut line_buf = String::new();
    let mut line_no = 0usize;
    let mut served_requests = 0usize;
    let mut closing = false;
    while !closing {
        line_buf.clear();
        line_no += 1;
        match reader.read_line(&mut line_buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if is_idle_expiry(&e) => {
                registry().serve_idle_closes_total.inc();
                let idle_ms = shared
                    .idle_timeout
                    .map(|d| d.as_millis() as i128)
                    .unwrap_or(0);
                write_error_line(&mut out, "idle_timeout", &[("idle_ms", Json::Num(idle_ms))])?;
                out.flush()?;
                break;
            }
            Err(e) => return Err(e),
        }
        // ---- Coalesce the burst: the line just read plus every complete
        // line already sitting in the read buffer. A control line cuts the
        // burst so its effect stays ordered relative to the responses.
        let mut batch: Vec<(usize, String)> = Vec::new();
        let mut pending_control: Option<String> = None;
        loop {
            let line = line_buf.trim();
            if !line.is_empty() {
                if line.starts_with('#') {
                    pending_control = Some(line.to_string());
                    break;
                }
                batch.push((line_no, line.to_string()));
            }
            if batch.len() >= MAX_SERVE_BATCH || !reader.buffer().contains(&b'\n') {
                break;
            }
            line_buf.clear();
            line_no += 1;
            match reader.read_line(&mut line_buf) {
                Ok(0) => {
                    closing = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    // Only already-buffered lines are drained here, so an
                    // expiry cannot happen — treat anything as session end.
                    if is_idle_expiry(&e) {
                        closing = true;
                        break;
                    }
                    return Err(e);
                }
            }
        }
        if !batch.is_empty() {
            serve_burst(
                &mut core,
                &pool,
                &mut out,
                shared,
                &batch,
                &mut served_requests,
            )?;
        }
        if let Some(control) = pending_control.as_deref().and_then(|l| l.strip_prefix('#')) {
            match control.trim() {
                "stats" => {
                    let mut doc = registry().snapshot().to_json_string();
                    doc.push('\n');
                    out.write_all(doc.as_bytes())?;
                    out.flush()?;
                }
                "shutdown" => shared.begin_shutdown(),
                _ => {}
            }
        }
        if shared.max_requests_per_session != 0
            && served_requests >= shared.max_requests_per_session
        {
            registry().serve_limit_closes_total.inc();
            write_error_line(
                &mut out,
                "session_limit",
                &[(
                    "max_requests",
                    Json::Num(shared.max_requests_per_session as i128),
                )],
            )?;
            out.flush()?;
            break;
        }
    }
    Ok(())
}

/// Serves one burst: admission per line in arrival order, parallel decode
/// of the admitted lines, responses written strictly in request order
/// (the N-th line written answers the N-th line of the burst).
fn serve_burst(
    core: &mut ServiceCore,
    pool: &rayon::ThreadPool,
    out: &mut TcpStream,
    shared: &ServerShared,
    batch: &[(usize, String)],
    served_requests: &mut usize,
) -> io::Result<()> {
    let mut plans: Vec<Plan> = Vec::with_capacity(batch.len());
    let mut to_decode: Vec<(usize, &str)> = Vec::new();
    let mut decode_slots: Vec<usize> = Vec::new();
    for (slot, (line_no, line)) in batch.iter().enumerate() {
        if shared.try_admit() {
            to_decode.push((*line_no, line.as_str()));
            decode_slots.push(slot);
            plans.push(Plan::Core);
        } else {
            shared.sheds_total.fetch_add(1, Ordering::SeqCst);
            registry().serve_sheds_total.inc();
            plans.push(Plan::Immediate(error_line_bytes(
                "overloaded",
                &[("max_inflight", Json::Num(shared.max_inflight as i128))],
            )));
        }
    }
    let t0 = Instant::now();
    let decoded = if to_decode.is_empty() {
        Vec::new()
    } else {
        crate::stream::decode_burst(pool, &to_decode, shared.engine.serve_cache_active())
    };
    let mut admitted = 0usize;
    for (&slot, result) in decode_slots.iter().zip(decoded) {
        match result {
            Ok((fp, request)) => {
                core.admit_prepared(&shared.engine, fp, request, t0);
                admitted += 1;
            }
            Err(e) => {
                shared.release();
                shared.errors_total.fetch_add(1, Ordering::SeqCst);
                let (kind, line) = match &e {
                    crate::jsonl::CorpusError::Json { line, .. } => ("parse", *line),
                    crate::jsonl::CorpusError::Malformed { line, .. } => ("parse", *line),
                    crate::jsonl::CorpusError::Io { line, .. } => ("io", *line),
                };
                plans[slot] = Plan::Immediate(error_line_bytes(
                    kind,
                    &[
                        ("line", Json::Num(line as i128)),
                        ("message", Json::Str(e.to_string())),
                    ],
                ));
            }
        }
    }
    // Emit: each core report answers the next `Core` slot; `Immediate`
    // lines ahead of it are flushed first so ordering holds.
    let mut cursor = 0usize;
    let served = core.flush_with(&shared.engine, |bytes, report| {
        while let Some(Plan::Immediate(line)) = plans.get(cursor) {
            out.write_all(line)?;
            cursor += 1;
        }
        count_deadline_hit(report);
        cursor += 1;
        out.write_all(bytes)
    });
    for _ in 0..admitted {
        shared.release();
    }
    served?;
    while cursor < plans.len() {
        if let Plan::Immediate(line) = &plans[cursor] {
            out.write_all(line)?;
        }
        cursor += 1;
    }
    shared
        .requests_total
        .fetch_add(admitted as u64, Ordering::SeqCst);
    *served_requests += admitted;
    out.flush()
}

/// A minimal HTTP/1.1 responder for the metrics listener: every GET gets
/// the Prometheus rendering (JSON when the path mentions `json`),
/// `Connection: close`.
fn metrics_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = serve_metrics_request(&mut stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_metrics_request(stream: &mut TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read just the request head (first line is all we route on).
    let mut head = [0u8; 1024];
    let n = stream.read(&mut head).unwrap_or(0);
    let request_line = std::str::from_utf8(&head[..n])
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let snapshot = registry().snapshot();
    let (content_type, body) = if request_line.contains("json") {
        ("application/json", snapshot.to_json_string())
    } else {
        ("text/plain; version=0.0.4", snapshot.to_prometheus())
    };
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
