//! Append-only checkpoint journal for `msrs dispatch`.
//!
//! The dispatch coordinator journals one record per *emitted* shard so a
//! crashed or interrupted run can resume from the last completed shard and
//! still produce a report stream bit-identical to an uninterrupted run.
//! The journal is JSONL: a header line keyed by the engine's
//! content-relevant configuration fingerprint and the shard size, followed
//! by shard-completion records in emission (= shard) order. Every append
//! is flushed and `fsync`'d before the coordinator considers the shard
//! durable, and the *output* file is synced first — so a record in the
//! journal always describes bytes that are really on disk.
//!
//! Durability contract for the tail: a crash mid-append can leave at most
//! one torn final line, which [`load`] detects and discards (the shard it
//! described is simply redone). A torn or unparsable line *before* the
//! tail means the file was corrupted by something other than an
//! interrupted append, and loading fails loudly instead of guessing.
//!
//! All numbers in the journal are integers (the crate's JSON layer is
//! integer-exact by design); the two floating-point stats fields travel as
//! IEEE-754 bit patterns, so merging checkpointed stats into a resumed
//! run's summary is bits-exact.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use crate::json::Json;
use crate::stream::StreamStats;

/// Magic string identifying a dispatch checkpoint journal.
pub const CHECKPOINT_MAGIC: &str = "msrs-dispatch";
/// Journal format version; bumped on incompatible record changes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// 64-bit FNV-1a over a byte slice — the same stable, platform-independent
/// hash the engine uses for its configuration fingerprint. Used to
/// fingerprint each shard's raw line text so a resume detects a corpus
/// that changed underneath the journal.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The journal header: what run this checkpoint belongs to. A resume
/// refuses to reuse a journal whose configuration fingerprint or shard
/// size differs — either would change shard boundaries or report content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// [`crate::EngineConfig::content_fingerprint`] of the dispatching
    /// engine configuration.
    pub config_fp: u64,
    /// Shard size the corpus is split with.
    pub shard_size: usize,
}

impl CheckpointHeader {
    fn to_line(self) -> String {
        Json::Obj(vec![
            ("checkpoint".into(), Json::Str(CHECKPOINT_MAGIC.into())),
            ("version".into(), Json::Num(CHECKPOINT_VERSION as i128)),
            ("config_fp".into(), Json::Num(self.config_fp as i128)),
            ("shard_size".into(), Json::Num(self.shard_size as i128)),
        ])
        .to_string()
    }

    fn from_json(v: &Json) -> Option<Self> {
        if v.get("checkpoint")?.as_str()? != CHECKPOINT_MAGIC
            || v.get("version")?.as_u64()? != CHECKPOINT_VERSION
        {
            return None;
        }
        Some(CheckpointHeader {
            config_fp: v.get("config_fp")?.as_u64()?,
            shard_size: v.get("shard_size")?.as_usize()?,
        })
    }
}

/// Per-shard summary stats as they travel on the worker wire protocol and
/// in checkpoint records. Mirrors the summing fields of [`StreamStats`];
/// the two `f64` ratio fields are carried as bit patterns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Reports emitted for the shard.
    pub instances: u64,
    /// Reports with a proven-optimal schedule.
    pub proven_optimal: u64,
    /// Lines served from the worker's result cache or in-shard dedup.
    pub fast_path_hits: u64,
    /// Materialized-request high-water mark inside the worker.
    pub max_resident: u64,
    /// `StreamStats::ratio_sum` as IEEE-754 bits.
    pub ratio_sum_bits: u64,
    /// `StreamStats::ratio_worst` as IEEE-754 bits.
    pub ratio_worst_bits: u64,
    /// Input parse/decode time, µs.
    pub parse_micros: u64,
    /// Canonicalize + cache-probe time, µs.
    pub canon_micros: u64,
    /// Solver time, µs.
    pub solve_micros: u64,
    /// Report serialization time, µs.
    pub serialize_micros: u64,
}

impl ShardStats {
    /// Captures the summing fields of a finished per-shard stream run.
    pub fn from_stream(stats: &StreamStats) -> Self {
        ShardStats {
            instances: stats.instances as u64,
            proven_optimal: stats.proven_optimal as u64,
            fast_path_hits: stats.fast_path_hits as u64,
            max_resident: stats.max_resident as u64,
            ratio_sum_bits: stats.ratio_sum.to_bits(),
            ratio_worst_bits: stats.ratio_worst.to_bits(),
            parse_micros: stats.parse_micros,
            canon_micros: stats.canon_micros,
            solve_micros: stats.solve_micros,
            serialize_micros: stats.serialize_micros,
        }
    }

    /// Adds this shard's contribution into a merged run summary.
    /// (`shards` itself is counted by the caller, which also owns the
    /// wall-clock split.)
    pub fn merge_into(&self, total: &mut StreamStats) {
        total.instances += self.instances as usize;
        total.proven_optimal += self.proven_optimal as usize;
        total.fast_path_hits += self.fast_path_hits as usize;
        total.max_resident = total.max_resident.max(self.max_resident as usize);
        total.ratio_sum += f64::from_bits(self.ratio_sum_bits);
        total.ratio_worst = total.ratio_worst.max(f64::from_bits(self.ratio_worst_bits));
        total.parse_micros += self.parse_micros;
        total.canon_micros += self.canon_micros;
        total.solve_micros += self.solve_micros;
        total.serialize_micros += self.serialize_micros;
    }

    /// The stats fields as JSON object members (spliced into wire `#done`
    /// payloads and checkpoint records).
    pub fn to_json_fields(&self) -> Vec<(String, Json)> {
        let n = |v: u64| Json::Num(v as i128);
        vec![
            ("instances".into(), n(self.instances)),
            ("proven_optimal".into(), n(self.proven_optimal)),
            ("fast_path_hits".into(), n(self.fast_path_hits)),
            ("max_resident".into(), n(self.max_resident)),
            ("ratio_sum_bits".into(), n(self.ratio_sum_bits)),
            ("ratio_worst_bits".into(), n(self.ratio_worst_bits)),
            ("parse_micros".into(), n(self.parse_micros)),
            ("canon_micros".into(), n(self.canon_micros)),
            ("solve_micros".into(), n(self.solve_micros)),
            ("serialize_micros".into(), n(self.serialize_micros)),
        ]
    }

    /// Reads the stats fields back out of a JSON object.
    pub fn from_json(v: &Json) -> Option<Self> {
        let f = |key: &str| v.get(key)?.as_u64();
        Some(ShardStats {
            instances: f("instances")?,
            proven_optimal: f("proven_optimal")?,
            fast_path_hits: f("fast_path_hits")?,
            max_resident: f("max_resident")?,
            ratio_sum_bits: f("ratio_sum_bits")?,
            ratio_worst_bits: f("ratio_worst_bits")?,
            parse_micros: f("parse_micros")?,
            canon_micros: f("canon_micros")?,
            solve_micros: f("solve_micros")?,
            serialize_micros: f("serialize_micros")?,
        })
    }
}

/// One durable shard-completion record. Records are appended in shard
/// order (the coordinator only journals the contiguous completed prefix),
/// so `out_bytes` of the last record is the exact length of the output
/// file a resume may trust.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecord {
    /// 0-based shard index.
    pub shard: usize,
    /// Meaningful corpus lines in the shard.
    pub lines: usize,
    /// FNV-1a fingerprint of the shard's raw line text (each line plus a
    /// `\n`), for detecting a changed corpus on resume.
    pub shard_fp: u64,
    /// Output-file length in bytes after this shard's reports.
    pub out_bytes: u64,
    /// Attempts it took to complete the shard (1 = first try).
    pub attempts: u32,
    /// True when the shard exhausted its retry budget and a structured
    /// error record was emitted in place of its reports.
    pub quarantined: bool,
    /// The shard's summary stats (zeroed for quarantined shards).
    pub stats: ShardStats,
}

impl ShardRecord {
    fn to_line(self) -> String {
        let mut obj = vec![
            ("shard".into(), Json::Num(self.shard as i128)),
            ("lines".into(), Json::Num(self.lines as i128)),
            ("shard_fp".into(), Json::Num(self.shard_fp as i128)),
            ("out_bytes".into(), Json::Num(self.out_bytes as i128)),
            ("attempts".into(), Json::Num(self.attempts as i128)),
            ("quarantined".into(), Json::Bool(self.quarantined)),
        ];
        obj.extend(self.stats.to_json_fields());
        Json::Obj(obj).to_string()
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(ShardRecord {
            shard: v.get("shard")?.as_usize()?,
            lines: v.get("lines")?.as_usize()?,
            shard_fp: v.get("shard_fp")?.as_u64()?,
            out_bytes: v.get("out_bytes")?.as_u64()?,
            attempts: v.get("attempts")?.as_u64()? as u32,
            quarantined: matches!(v.get("quarantined")?, Json::Bool(true)),
            stats: ShardStats::from_json(v)?,
        })
    }
}

/// The append side of the journal. Owns the file handle; every
/// [`append`](Self::append) is write + flush + `sync_data`, so a record
/// that `append` returned `Ok` for survives a process crash.
#[derive(Debug)]
pub struct CheckpointLog {
    file: File,
}

impl CheckpointLog {
    /// Starts a fresh journal at `path` (truncating any previous one) and
    /// durably writes the header.
    pub fn create(path: &Path, header: CheckpointHeader) -> io::Result<Self> {
        let mut file = File::create(path)?;
        writeln!(file, "{}", header.to_line())?;
        file.sync_data()?;
        Ok(CheckpointLog { file })
    }

    /// Reopens an existing journal for appending (resume path). The caller
    /// has already validated the header via [`load`].
    pub fn open_append(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(CheckpointLog { file })
    }

    /// Durably appends one shard-completion record.
    pub fn append(&mut self, record: &ShardRecord) -> io::Result<()> {
        writeln!(self.file, "{}", record.to_line())?;
        self.file.sync_data()
    }
}

/// A journal read back for resume: the validated header plus the
/// contiguous shard records it holds.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The run key the journal was created with.
    pub header: CheckpointHeader,
    /// Shard records in shard order (`records[i].shard == i`).
    pub records: Vec<ShardRecord>,
}

impl LoadedCheckpoint {
    /// Output-file length the records vouch for (0 with no records).
    pub fn out_bytes(&self) -> u64 {
        self.records.last().map(|r| r.out_bytes).unwrap_or(0)
    }
}

/// Reads a journal back. Returns `Ok(None)` when `path` does not exist
/// (fresh run); `Err` when the file exists but is not a valid journal —
/// wrong magic/version, records out of order, or corruption anywhere but
/// the tail. A torn final line (interrupted append) is silently dropped.
pub fn load(path: &Path) -> io::Result<Option<LoadedCheckpoint>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let invalid = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
    let mut lines = Vec::new();
    let mut reader = BufReader::new(file);
    let mut buf = String::new();
    let mut terminated = true;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        terminated = buf.ends_with('\n');
        lines.push(buf.trim_end_matches('\n').to_string());
    }
    // An interrupted append can only tear the tail; drop it.
    if !terminated {
        lines.pop();
    }
    let Some(header_line) = lines.first() else {
        return Ok(None); // empty file: treat as no checkpoint
    };
    let header = Json::parse(header_line)
        .ok()
        .as_ref()
        .and_then(CheckpointHeader::from_json)
        .ok_or_else(|| {
            invalid(format!(
                "{}: not a dispatch checkpoint journal",
                path.display()
            ))
        })?;
    let mut records = Vec::new();
    for (i, line) in lines.iter().enumerate().skip(1) {
        let is_tail = i + 1 == lines.len();
        let parsed = Json::parse(line)
            .ok()
            .as_ref()
            .and_then(ShardRecord::from_json);
        match parsed {
            Some(rec) => {
                if rec.shard != records.len() {
                    return Err(invalid(format!(
                        "{}: record {} out of order (shard {}, expected {})",
                        path.display(),
                        i,
                        rec.shard,
                        records.len()
                    )));
                }
                records.push(rec);
            }
            // A terminated-but-unparsable tail line still means the file
            // ends mid-story (e.g. a torn write that happened to land on
            // `\n`); redoing one shard is always safe.
            None if is_tail => break,
            None => {
                return Err(invalid(format!(
                    "{}: corrupt record at line {}",
                    path.display(),
                    i + 1
                )));
            }
        }
    }
    Ok(Some(LoadedCheckpoint { header, records }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> CheckpointHeader {
        CheckpointHeader {
            config_fp: 0xDEADBEEF,
            shard_size: 8,
        }
    }

    fn record(shard: usize) -> ShardRecord {
        ShardRecord {
            shard,
            lines: 8,
            shard_fp: 42 + shard as u64,
            out_bytes: 100 * (shard as u64 + 1),
            attempts: 1,
            quarantined: false,
            stats: ShardStats {
                instances: 8,
                ratio_sum_bits: 8.25f64.to_bits(),
                ratio_worst_bits: 1.5f64.to_bits(),
                ..ShardStats::default()
            },
        }
    }

    #[test]
    fn round_trips_header_and_records() {
        let dir = std::env::temp_dir().join(format!("msrs-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.ckpt");
        let mut log = CheckpointLog::create(&path, header()).unwrap();
        log.append(&record(0)).unwrap();
        log.append(&record(1)).unwrap();
        drop(log);
        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.header, header());
        assert_eq!(loaded.records, vec![record(0), record(1)]);
        assert_eq!(loaded.out_bytes(), 200);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_fresh_run_and_torn_tail_is_dropped() {
        let dir = std::env::temp_dir().join(format!("msrs-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load(&dir.join("nope.ckpt")).unwrap().is_none());

        let path = dir.join("torn.ckpt");
        let mut log = CheckpointLog::create(&path, header()).unwrap();
        log.append(&record(0)).unwrap();
        drop(log);
        // Simulate a crash mid-append: a record line without its newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"shard\":1,\"lin").unwrap();
        drop(f);
        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.records.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_foreign_files_and_mid_file_corruption() {
        let dir = std::env::temp_dir().join(format!("msrs-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.ckpt");
        std::fs::write(&path, "{\"makespan\":3}\n").unwrap();
        assert!(load(&path).is_err());

        let path2 = dir.join("corrupt.ckpt");
        let mut log = CheckpointLog::create(&path2, header()).unwrap();
        log.append(&record(0)).unwrap();
        drop(log);
        let text = std::fs::read_to_string(&path2).unwrap();
        std::fs::write(
            &path2,
            format!("{}garbage\n{}", &text[..text.len() - 1], ""),
        )
        .unwrap();
        // ("garbage" glued into the record line, then nothing) — the
        // tail record is unparsable and dropped, not an error…
        assert_eq!(load(&path2).unwrap().unwrap().records.len(), 0);
        // …but corruption *before* a valid record is a hard error.
        let mut log = CheckpointLog::create(&path2, header()).unwrap();
        log.append(&record(0)).unwrap();
        log.append(&record(1)).unwrap();
        drop(log);
        let text = std::fs::read_to_string(&path2).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "not json";
        std::fs::write(&path2, format!("{}\n", lines.join("\n"))).unwrap();
        assert!(load(&path2).is_err());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&path2).unwrap();
    }

    #[test]
    fn shard_stats_merge_is_bits_exact() {
        let mut stats = StreamStats {
            ratio_sum: 1.1,
            ..StreamStats::default()
        };
        let shard = ShardStats {
            instances: 3,
            ratio_sum_bits: 2.2f64.to_bits(),
            ratio_worst_bits: 1.75f64.to_bits(),
            ..ShardStats::default()
        };
        shard.merge_into(&mut stats);
        assert_eq!(stats.instances, 3);
        assert_eq!(stats.ratio_sum.to_bits(), (1.1f64 + 2.2f64).to_bits());
        assert_eq!(stats.ratio_worst.to_bits(), 1.75f64.to_bits());
    }
}
