//! Instance classification: the features the portfolio planner keys on.

use msrs_core::{bounds::lower_bound, Instance, Time};

/// Coarse size tier of an instance, from the planner's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeTier {
    /// No jobs, zero total load, or `m ≥ |C|` — the shared trivial fast path
    /// of every algorithm already solves these optimally.
    Trivial,
    /// Small enough for the exact branch-and-bound to finish within a modest
    /// node budget.
    Tiny,
    /// Small enough for the EPTAS race to be worthwhile.
    Small,
    /// Everything else: approximation algorithms only.
    Large,
}

impl SizeTier {
    /// All tiers in [`SizeTier::index`] order.
    pub const ALL: [SizeTier; 4] = [
        SizeTier::Trivial,
        SizeTier::Tiny,
        SizeTier::Small,
        SizeTier::Large,
    ];

    /// Stable row index of this tier (telemetry outcome-table axis).
    pub const fn index(self) -> usize {
        match self {
            SizeTier::Trivial => 0,
            SizeTier::Tiny => 1,
            SizeTier::Small => 2,
            SizeTier::Large => 3,
        }
    }

    /// Stable lowercase label (telemetry outcome-table row name).
    pub const fn name(self) -> &'static str {
        match self {
            SizeTier::Trivial => "trivial",
            SizeTier::Tiny => "tiny",
            SizeTier::Small => "small",
            SizeTier::Large => "large",
        }
    }
}

/// Classification of one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceProfile {
    /// Number of jobs `n`.
    pub jobs: usize,
    /// Number of machines `m`.
    pub machines: usize,
    /// Number of non-empty classes `|C|`.
    pub classes: usize,
    /// Total processing time `p(J)`.
    pub total_load: Time,
    /// The combined lower bound `T ≤ OPT` (Note 1 / Theorem 2).
    pub lower_bound: Time,
    /// Largest class load `max_c p(c)`.
    pub max_class_load: Time,
    /// Largest single job.
    pub max_job: Time,
    /// Whether any job is *huge*: `p_j > (3/4)·T` (triggers the general-case
    /// steps of `Algorithm_3/2`).
    pub has_huge: bool,
    /// The planner's size tier (computed against the default thresholds; the
    /// planner re-derives tier-dependent choices from its own config).
    pub tier: SizeTier,
}

/// Jobs/classes ceilings for [`SizeTier::Tiny`] (exact solver viability).
pub const TINY_MAX_JOBS: usize = 9;
/// Class ceiling for [`SizeTier::Tiny`].
pub const TINY_MAX_CLASSES: usize = 5;
/// Jobs ceiling for [`SizeTier::Small`] (EPTAS race viability).
pub const SMALL_MAX_JOBS: usize = 28;
/// Machine ceiling for [`SizeTier::Small`].
pub const SMALL_MAX_MACHINES: usize = 4;

/// Classifies `inst` into an [`InstanceProfile`].
pub fn classify(inst: &Instance) -> InstanceProfile {
    let jobs = inst.num_jobs();
    let machines = inst.machines();
    let classes = inst.num_nonempty_classes();
    let total_load = inst.total_load();
    let t = lower_bound(inst);
    let max_class_load = inst
        .nonempty_classes()
        .map(|c| inst.class_load(c))
        .max()
        .unwrap_or(0);
    let max_job = inst.jobs().iter().map(|j| j.size).max().unwrap_or(0);
    // p_j > (3/4)·T without floating point: 4·p_j > 3·T in u128.
    let has_huge = t > 0 && 4 * max_job as u128 > 3 * t as u128;
    let tier = if jobs == 0 || total_load == 0 || machines >= classes {
        SizeTier::Trivial
    } else if jobs <= TINY_MAX_JOBS && classes <= TINY_MAX_CLASSES {
        SizeTier::Tiny
    } else if jobs <= SMALL_MAX_JOBS && machines <= SMALL_MAX_MACHINES {
        SizeTier::Small
    } else {
        SizeTier::Large
    };
    InstanceProfile {
        jobs,
        machines,
        classes,
        total_load,
        lower_bound: t,
        max_class_load,
        max_job,
        has_huge,
        tier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_when_enough_machines() {
        let inst = Instance::from_classes(3, &[vec![4], vec![5]]).unwrap();
        assert_eq!(classify(&inst).tier, SizeTier::Trivial);
    }

    #[test]
    fn tiny_small_large_split() {
        let tiny = Instance::from_classes(2, &[vec![4, 3], vec![5], vec![2, 2]]).unwrap();
        assert_eq!(classify(&tiny).tier, SizeTier::Tiny);

        let small = msrs_gen::uniform(1, 3, 20, 6, 1, 9);
        let p = classify(&small);
        assert_eq!(p.tier, SizeTier::Small, "{p:?}");

        let large = msrs_gen::uniform(1, 8, 400, 40, 1, 9);
        assert_eq!(classify(&large).tier, SizeTier::Large);
    }

    #[test]
    fn huge_detection_matches_threshold() {
        // T = max(class bound) here: single class of load 100 on 2 machines.
        let inst = Instance::from_classes(2, &[vec![80, 20], vec![1], vec![1], vec![1]]).unwrap();
        let p = classify(&inst);
        assert_eq!(p.lower_bound, 100);
        assert!(p.has_huge, "80 > (3/4)·100 is false; 80 > 75 is true");

        let inst2 = Instance::from_classes(2, &[vec![70, 30], vec![1], vec![1], vec![1]]).unwrap();
        assert!(!classify(&inst2).has_huge);
    }

    #[test]
    fn profile_features_are_exact() {
        let inst = Instance::from_classes(2, &[vec![5, 3], vec![7], vec![2, 2, 2]]).unwrap();
        let p = classify(&inst);
        assert_eq!(p.jobs, 6);
        assert_eq!(p.machines, 2);
        assert_eq!(p.classes, 3);
        assert_eq!(p.total_load, 21);
        assert_eq!(p.max_class_load, 8);
        assert_eq!(p.max_job, 7);
    }
}
