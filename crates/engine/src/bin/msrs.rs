//! `msrs` — the command-line frontend of the solver-portfolio engine.
//!
//! ```text
//! msrs gen    --family uniform --count 100 --machines 4 --seed 1 --out corpus.jsonl
//! msrs solve  --input instance.txt            # msrs-text or JSONL, `-` = stdin
//! msrs batch  --input corpus.jsonl --threads 8 --shard-size 4096 --out reports.jsonl
//! msrs batch  --input corpus.jsonl --metrics-out metrics.json   # + telemetry snapshot
//! msrs stats  --input metrics.json            # pretty-print a snapshot
//! msrs bench  --families uniform,zipf --count 20 --machines 4
//! msrs bench  --baseline-out BENCH_7.json     # machine-readable perf baseline
//! msrs bench  --compare BENCH_7.json --strict # diff a run against a baseline
//! ```
//!
//! Instances travel as JSON lines (`{"id":…,"machines":…,"classes":[[…]]}`)
//! or in the `msrs-instance v1` text format of `msrs_core::io`; reports come
//! back as JSON lines. `solve` and `batch` read their input incrementally —
//! `batch` streams corpora through the sharded pipeline
//! ([`msrs_engine::stream`]) in O(shard) memory, so corpus length is
//! unbounded. Flag parsing is hand-rolled so the binary stays
//! dependency-free.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use msrs_core::{io as text_io, validate};
use msrs_engine::dispatch;
use msrs_engine::families::FAMILIES;
use msrs_engine::json::Json;
use msrs_engine::service::{self, ServeConfig};
use msrs_engine::stream::{JsonlServer, DEFAULT_SHARD_SIZE};
use msrs_engine::telemetry;
use msrs_engine::{
    family, family_names, jsonl, run_remote_worker, Engine, EngineConfig, RemoteHub,
    RemoteWorkerConfig, SolveReport, SolveRequest, SolverKind, DEFAULT_CACHE_CAPACITY,
};

const USAGE: &str = "msrs — solver-portfolio engine for Scheduling with Many Shared Resources

USAGE:
    msrs <SUBCOMMAND> [FLAGS]

SUBCOMMANDS:
    gen     Generate a JSONL instance corpus from the named families
    solve   Solve one instance (msrs-text or JSONL; `--input -` reads stdin)
    batch   Solve a JSONL corpus in parallel, emitting JSONL reports
    serve   Serve JSONL requests over TCP: concurrent sessions, admission
            control, per-request deadlines, live stats endpoint
    dispatch Solve a JSONL corpus across a worker fleet (child processes
            and/or remote TCP workers): health monitoring, shard leases,
            bounded retry, straggler hedging, poison-shard quarantine, and
            an fsync'd checkpoint journal for crash-tolerant resume
    worker  The dispatch worker loop (spawned by `dispatch`, or dialing a
            remote coordinator with `--connect HOST:PORT`)
    stats   Pretty-print a telemetry snapshot written by `batch --metrics-out`
    bench   Compare the portfolio against each single solver on generated corpora
    help    Show this help

COMMON ENGINE FLAGS (solve, batch, serve, dispatch, worker, bench):
    --threads <N>        Worker threads for the parallel backend (batches,
                         portfolio members; 0 = MSRS_THREADS or all cores)
                                                                 [default: 0]
    --no-baselines       Skip the prior-work baseline solvers
    --deadline-ms <D>    Per-instance wall-clock deadline (opt-in nondeterminism;
                         bypasses the result cache)
    --exact-nodes <N>    Exact-solver node budget
    --no-eptas           Disable the EPTAS portfolio member
    --cache-capacity <N> Canonical-form result-cache capacity  [default: 1024]
    --no-cache           Disable the result cache and intra-batch dedup

GEN FLAGS:
    --family <NAME|all>  uniform|zipf|satellite|photolitho|adversarial|boundary|
                         huge|traffic
    --count <N>          Instances per family                    [default: 10]
    --machines <M>       Machine count                           [default: 4]
    --seed <S>           Base seed                               [default: 1]
    --out <PATH>         Output file (stdout if omitted)

SOLVE FLAGS:
    --input <PATH|->     Instance file (sniffs JSONL vs msrs-text)
    --json               Emit the full JSON report instead of the summary
    --schedule           Also print the schedule in msrs-text format

BATCH FLAGS:
    --input <PATH|->     JSONL corpus (streamed incrementally — never loaded
                         whole; memory stays O(shard))
    --out <PATH>         Report JSONL file (stdout if omitted)
    --shard-size <N>     Requests per pipeline shard             [default: 4096]
    --quiet              Suppress the per-batch summary on stderr
    --metrics-out <P>    Write the end-of-run telemetry snapshot (counters,
                         stage-latency histograms, per-(profile, member)
                         outcome table) to this file
    --metrics-format <F> Snapshot format: json|prometheus        [default: json]
    --decode-threads <N> Decode shards on N pool workers instead of inline on
                         the reader thread (0/1 = inline)        [default: 1]
    --cache-path <P>     Durable result-cache store: warm-load compatible
                         records on start, persist fresh solves write-through
                         (crash-safe append-only segment log)

SERVE FLAGS:
    --addr <A>           JSONL listen address          [default: 127.0.0.1:7463]
    --max-inflight <N>   Bound on concurrently served requests across all
                         sessions (0 = unlimited); excess request lines are
                         shed with an `overloaded` error line    [default: 0]
    --metrics-addr <A>   Also serve the live telemetry snapshot over HTTP
                         (Prometheus text; JSON when the path contains `json`)
                         Control lines: `#stats` returns the snapshot as one
                         JSON line in-session; `#shutdown` drains in-flight
                         work and exits gracefully
    --idle-timeout-ms <D> Close a session with a structured `idle_timeout`
                         error line after D ms without a request
                         (0 = never)                             [default: 0]
    --max-requests-per-session <N> Close a session with a structured
                         `session_limit` error line after N served requests
                         (0 = unlimited)                         [default: 0]
    --decode-threads <N> Decode bursts of pipelined request lines on N pool
                         workers instead of inline (0/1 = inline; response
                         order is preserved)                     [default: 1]
    --cache-path <P>     Durable result-cache store: a restarted server
                         answers previously served traffic from the fast
                         path immediately (warm restart)

DISPATCH FLAGS:
    --input <PATH|->     JSONL corpus (shard boundaries identical to `batch`)
    --out <PATH>         Merged report JSONL file (required; shard order)
    --checkpoint <PATH>  Append-only fsync'd shard journal; if it exists the
                         run resumes after the last completed shard (the
                         corpus and engine config must be unchanged)
    --workers <N>        Worker child processes (0 = remote-only fleet,
                         requires --listen)                      [default: 2]
    --worker-cmd <CMD>   Worker command prefix (whitespace-split) instead of
                         the msrs binary itself; engine flags and
                         --heartbeat-ms are appended
    --listen <ADDR>      Also accept remote `msrs worker --connect` fleets
                         on this TCP address (versioned handshake; engine
                         config fingerprints must match)
    --hedge-multiplier <X> Hedge a straggling shard once its runtime exceeds
                         X × the trailing median shard time and a worker is
                         idle (0 = hedging off)                  [default: 0]
    --hedge-min-ms <D>   Floor for the hedging threshold         [default: 250]
    --shard-size <N>     Meaningful lines per shard              [default: 4096]
    --max-attempts <N>   Attempts per shard before quarantine    [default: 3]
    --retry-backoff-ms <D> Base retry backoff (doubles per failure)
                                                                 [default: 50]
    --heartbeat-timeout-ms <D> Silence deadline for a busy worker
                                                                 [default: 3000]
    --shard-timeout-ms <D> Wall-clock deadline per shard attempt (0 = none)
                                                                 [default: 0]
    --stop-after-shards <N> Graceful drain after N emitted shards (the
                         checkpoint resumes the run) — deterministic
                         mid-run interruption for tests/CI
    --quiet              Suppress the run summary on stderr
    --metrics-out <P>    Write the end-of-run telemetry snapshot
    --metrics-format <F> Snapshot format: json|prometheus        [default: json]
    --cache-path <P>     Durable fleet-shared result cache: the coordinator
                         becomes the cache authority — workers probe it
                         before solving (`#cacheq`) and share fresh solves
                         back (`#cachefill`), all persisted crash-safe
                         A `#shutdown` line on stdin (file-input runs) also
                         drains gracefully; a killed coordinator resumes
                         from the checkpoint.

WORKER FLAGS:
    --heartbeat-ms <D>   Heartbeat period on stdout              [default: 200]
    --connect <ADDR>     Dial a remote coordinator (`msrs dispatch --listen`)
                         instead of speaking stdin/stdout
    --reconnect-ms <D>   Base reconnect backoff after a dropped coordinator
                         connection (doubles per failure, bounded)
                                                                 [default: 200]
    --reconnect-max <N>  Consecutive failed connection attempts before the
                         worker gives up                         [default: 8]
    --decode-threads <N> Decode shard lines on N pool workers instead of
                         inline (0/1 = inline)                   [default: 1]

STATS FLAGS:
    --input <PATH|->     A JSON telemetry snapshot (from `batch --metrics-out`)

BENCH FLAGS:
    --families <LIST>    Comma-separated family names            [default: all]
    --count <N>          Instances per family                    [default: 10]
    --machines <M>       Machine count                           [default: 4]
    --seed <S>           Base seed                               [default: 1]
    --baseline-out <P>   Instead of the comparison table, run the perf
                         baseline suite (tiny-batch serving latency, cache
                         on/off batch throughput at threads 1 and 4, the
                         streamed shard pipeline, exact-solver node
                         throughput) and write it as machine-readable JSON
                         (see BENCH_7.json; suite --count default: 1000)
    --reference <P>      With --baseline-out: embed the experiments of a
                         previously written baseline file as `reference`
    --compare <P>        Run the baseline suite and diff it against a
                         committed baseline JSON, reporting per-experiment
                         deltas and flagging regressions
    --threshold <PCT>    Regression threshold for --compare      [default: 50]
    --strict             With --compare: exit non-zero on any regression
";

/// Engine flags shared by `solve`, `batch`, and `bench`.
const ENGINE_FLAGS: &[&str] = &[
    "--threads",
    "--no-baselines",
    "--no-eptas",
    "--exact-nodes",
    "--deadline-ms",
    "--cache-capacity",
    "--no-cache",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let allowed: &[&str] = match cmd {
        "gen" => &["--family", "--count", "--machines", "--seed", "--out"],
        "solve" => &["--input", "--json", "--schedule"],
        "batch" => &[
            "--input",
            "--out",
            "--quiet",
            "--shard-size",
            "--metrics-out",
            "--metrics-format",
            "--decode-threads",
            "--cache-path",
        ],
        "serve" => &[
            "--addr",
            "--max-inflight",
            "--metrics-addr",
            "--quiet",
            "--idle-timeout-ms",
            "--max-requests-per-session",
            "--decode-threads",
            "--cache-path",
        ],
        "dispatch" => &[
            "--input",
            "--out",
            "--checkpoint",
            "--workers",
            "--worker-cmd",
            "--listen",
            "--shard-size",
            "--max-attempts",
            "--retry-backoff-ms",
            "--heartbeat-timeout-ms",
            "--shard-timeout-ms",
            "--stop-after-shards",
            "--hedge-multiplier",
            "--hedge-min-ms",
            "--heartbeat-ms",
            "--quiet",
            "--metrics-out",
            "--metrics-format",
            "--cache-path",
        ],
        "worker" => &[
            "--heartbeat-ms",
            "--connect",
            "--reconnect-ms",
            "--reconnect-max",
            "--decode-threads",
        ],
        "stats" => &["--input"],
        "bench" => &[
            "--families",
            "--count",
            "--machines",
            "--seed",
            "--baseline-out",
            "--reference",
            "--compare",
            "--threshold",
            "--strict",
        ],
        _ => &[],
    };
    let takes_engine_flags = matches!(
        cmd,
        "solve" | "batch" | "serve" | "dispatch" | "worker" | "bench"
    );
    let flags = match Flags::parse(&args[1..], allowed, takes_engine_flags) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "gen" => cmd_gen(&flags),
        "solve" => cmd_solve(&flags),
        "batch" => cmd_batch(&flags),
        "serve" => cmd_serve(&flags),
        "dispatch" => cmd_dispatch(&flags),
        "worker" => cmd_worker(&flags),
        "stats" => cmd_stats(&flags),
        "bench" => cmd_bench(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}` (try `msrs help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `--flag value` / `--switch` arguments.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], allowed: &[&str], takes_engine_flags: bool) -> Result<Flags, String> {
        const SWITCHES: &[&str] = &[
            "--no-baselines",
            "--no-eptas",
            "--no-cache",
            "--json",
            "--schedule",
            "--quiet",
            "--strict",
        ];
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            if !flag.starts_with("--") {
                return Err(format!("unexpected argument `{flag}`"));
            }
            let known = allowed.contains(&flag.as_str())
                || (takes_engine_flags && ENGINE_FLAGS.contains(&flag.as_str()));
            if !known {
                let mut all: Vec<&str> = allowed.to_vec();
                if takes_engine_flags {
                    all.extend(ENGINE_FLAGS);
                }
                return Err(format!(
                    "unknown flag `{flag}` (accepted here: {})",
                    all.join(", ")
                ));
            }
            if SWITCHES.contains(&flag.as_str()) {
                pairs.push((flag.clone(), None));
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag `{flag}` needs a value"))?;
                pairs.push((flag.clone(), Some(value.clone())));
                i += 2;
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == name)
    }

    fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {name}: `{v}`")),
        }
    }
}

fn engine_from_flags(flags: &Flags) -> Result<Engine, String> {
    engine_config_from_flags(flags).map(Engine::new)
}

/// Wires `--cache-path` (when given) into the engine: warm-loads every
/// compatible record into the in-memory cache and starts write-through
/// persistence. A store written under a different engine configuration
/// is a hard error, not a silent cold start.
fn attach_cache_path(flags: &Flags, engine: &Engine) -> Result<(), String> {
    let Some(path) = flags.get("--cache-path") else {
        return Ok(());
    };
    let stats = engine
        .attach_cache_store(std::path::Path::new(path))
        .map_err(|e| format!("opening cache store {path}: {e}"))?;
    if !flags.has("--quiet") {
        let quarantine = if stats.segments_quarantined > 0 {
            format!(
                ", {} segment(s) quarantined ({} corrupt record(s))",
                stats.segments_quarantined, stats.errors
            )
        } else {
            String::new()
        };
        eprintln!(
            "cache store: {} report(s) warm-loaded from {path}{quarantine}",
            stats.loaded
        );
    }
    Ok(())
}

fn engine_config_from_flags(flags: &Flags) -> Result<EngineConfig, String> {
    let mut cfg = EngineConfig::default();
    cfg.threads = flags.get_num("--threads", cfg.threads)?;
    cfg.run_baselines = !flags.has("--no-baselines");
    cfg.eptas.enabled = !flags.has("--no-eptas");
    cfg.exact.max_nodes = flags.get_num("--exact-nodes", cfg.exact.max_nodes)?;
    // The CLI serves repeated traffic, so the cache defaults ON here (the
    // library default is off unless MSRS_CACHE says otherwise).
    cfg.cache_capacity = if flags.has("--no-cache") {
        0
    } else {
        flags.get_num("--cache-capacity", DEFAULT_CACHE_CAPACITY)?
    };
    if let Some(ms) = flags.get("--deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad --deadline-ms `{ms}`"))?;
        cfg.deadline = Some(Duration::from_millis(ms));
    }
    Ok(cfg)
}

/// Opens `--input` as a buffered incremental reader (`-` = stdin). Neither
/// `solve` nor `batch` ever materializes the input as one `String`; corpora
/// stream line by line.
fn open_input(flags: &Flags) -> Result<Box<dyn BufRead>, String> {
    match flags.get("--input") {
        None => Err("missing --input (use `-` for stdin)".into()),
        Some("-") => Ok(Box::new(BufReader::new(std::io::stdin()))),
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
            Ok(Box::new(BufReader::new(file)))
        }
    }
}

fn write_output(flags: &Flags, content: &str) -> Result<(), String> {
    match flags.get("--out") {
        None => {
            print!("{content}");
            Ok(())
        }
        Some(path) => std::fs::write(path, content).map_err(|e| format!("writing {path}: {e}")),
    }
}

/// `msrs gen`: emit a JSONL corpus.
fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let which = flags.get("--family").unwrap_or("all");
    let count: u64 = flags.get_num("--count", 10)?;
    let machines: usize = flags.get_num("--machines", 4)?;
    let seed: u64 = flags.get_num("--seed", 1)?;
    if machines == 0 {
        return Err("--machines must be ≥ 1".into());
    }
    let specs: Vec<_> = if which == "all" {
        FAMILIES.iter().collect()
    } else {
        which
            .split(',')
            .map(|name| {
                family(name.trim()).ok_or_else(|| {
                    format!(
                        "unknown family `{name}` (known: {})",
                        family_names().join(", ")
                    )
                })
            })
            .collect::<Result<_, _>>()?
    };
    let mut out = String::new();
    for spec in specs {
        for k in 0..count {
            let inst = (spec.generate)(seed.wrapping_add(k), machines);
            let id = format!("{}-m{}-s{}", spec.name, machines, seed.wrapping_add(k));
            out.push_str(&jsonl::write_instance_line(Some(&id), &inst));
            out.push('\n');
        }
    }
    write_output(flags, &out)
}

/// Sniffs JSONL vs msrs-text from the first meaningful line and parses a
/// single instance, reading incrementally: JSONL inputs are parsed line by
/// line (with real line numbers in errors); only the msrs-text format —
/// which always describes exactly one instance — is read to the end.
fn parse_single_instance(input: &mut dyn BufRead) -> Result<SolveRequest, String> {
    let mut line_no = 0usize;
    let mut buf = String::new();
    let first = loop {
        buf.clear();
        line_no += 1;
        let n = input
            .read_line(&mut buf)
            .map_err(|e| format!("reading input: {e}"))?;
        if n == 0 {
            return Err("empty input".into());
        }
        let line = buf.trim();
        if !line.is_empty() && !line.starts_with('#') {
            break line.to_string();
        }
    };
    if first.starts_with('{') {
        let req = jsonl::read_instance_line(line_no, &first).map_err(|e| e.to_string())?;
        let mut extra = 0usize;
        loop {
            buf.clear();
            match input.read_line(&mut buf) {
                Ok(0) => break,
                Ok(_) => {
                    let line = buf.trim();
                    if !line.is_empty() && !line.starts_with('#') {
                        extra += 1;
                    }
                }
                Err(e) => return Err(format!("reading input: {e}")),
            }
        }
        if extra > 0 {
            return Err(format!(
                "`msrs solve` expects exactly one instance, found {} (use `msrs batch`)",
                extra + 1
            ));
        }
        Ok(req)
    } else {
        let mut text = first;
        text.push('\n');
        input
            .read_to_string(&mut text)
            .map_err(|e| format!("reading input: {e}"))?;
        let inst = text_io::read_instance(&text).map_err(|e| e.to_string())?;
        Ok(SolveRequest::new(inst))
    }
}

/// `msrs solve`: one instance, human summary or JSON report.
fn cmd_solve(flags: &Flags) -> Result<(), String> {
    let req = parse_single_instance(&mut *open_input(flags)?)?;
    let engine = engine_from_flags(flags)?;
    let report = engine.solve(&req);
    debug_assert!(validate(&req.instance, &report.schedule).is_ok());
    if flags.has("--json") {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.summary());
        for run in &report.runs {
            println!(
                "  {:>14}  {:>9}  makespan {:>6}  {:>10}",
                run.solver.name(),
                run.status.label(),
                run.makespan.map_or("-".into(), |m| m.to_string()),
                format!("{} µs", run.wall_micros),
            );
        }
    }
    if flags.has("--schedule") {
        print!("{}", text_io::write_schedule(&report.schedule));
    }
    Ok(())
}

/// `msrs batch`: JSONL corpus in, JSONL reports out — streamed through the
/// sharded pipeline in O(shard) memory, reports emitted incrementally.
fn cmd_batch(flags: &Flags) -> Result<(), String> {
    let shard_size: usize = flags.get_num("--shard-size", DEFAULT_SHARD_SIZE)?;
    if shard_size == 0 {
        return Err("--shard-size must be ≥ 1".into());
    }
    let engine = engine_from_flags(flags)?;
    attach_cache_path(flags, &engine)?;
    let input = open_input(flags)?;
    let stdout = std::io::stdout();
    let mut out: Box<dyn Write> = match flags.get("--out") {
        // Buffer the locked stdout too: the raw StdoutLock is line-buffered
        // (one write syscall per report), which a 100k-report stream feels.
        None => Box::new(BufWriter::new(stdout.lock())),
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            Box::new(BufWriter::new(file))
        }
    };
    let metrics_format = match flags.get("--metrics-format") {
        None | Some("json") => "json",
        Some("prometheus") => "prometheus",
        Some(other) => {
            return Err(format!(
                "bad --metrics-format `{other}` (expected json or prometheus)"
            ))
        }
    };
    if flags.has("--metrics-format") && !flags.has("--metrics-out") {
        return Err("--metrics-format requires --metrics-out".into());
    }
    let decode_threads: usize = flags.get_num("--decode-threads", 1)?;
    let before = telemetry::snapshot();
    let outcome = JsonlServer::new()
        .with_decode_threads(decode_threads)
        .serve(&engine, input, &mut out, shard_size)
        .map_err(|e| format!("writing reports: {e}"))?;
    out.flush().map_err(|e| format!("writing reports: {e}"))?;
    drop(out);
    // All summary lines below are rebuilt from registry snapshots (the
    // per-run view is the delta against the pre-run snapshot); the engine's
    // deprecated per-object accessors are no longer consulted.
    let after = telemetry::snapshot();
    if let Some(path) = flags.get("--metrics-out") {
        let rendered = match metrics_format {
            "prometheus" => after.to_prometheus(),
            _ => {
                let mut json = after.to_json_string();
                json.push('\n');
                json
            }
        };
        std::fs::write(path, rendered).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if !flags.has("--quiet") {
        let s = &outcome.stats;
        eprintln!(
            "batch: {} instances in {} shard(s) (shard size {}, max resident {}), \
             {} proven optimal, ratio vs bound mean {:.4} worst {:.4}",
            s.instances,
            s.shards,
            s.shard_size,
            s.max_resident,
            s.proven_optimal,
            s.ratio_mean(),
            s.ratio_worst,
        );
        // The data-plane time split: a regression in any hop (slow parsing,
        // slow fingerprinting, slow emission) is visible here even when
        // solver time is unchanged.
        eprintln!(
            "data plane: parse {} µs, canonicalize {} µs, solve {} µs, serialize {} µs \
             ({} served straight from cache)",
            s.parse_micros, s.canon_micros, s.solve_micros, s.serialize_micros, s.fast_path_hits,
        );
        let delta = |name: &str| after.counter(name) - before.counter(name);
        if after.gauge("msrs_cache_capacity") > 0 {
            eprintln!(
                "cache: {} hits, {} misses, {} evictions, {} entries (capacity {})",
                delta("msrs_cache_hits_total"),
                delta("msrs_cache_misses_total"),
                delta("msrs_cache_evictions_total"),
                after.gauge("msrs_cache_entries"),
                after.gauge("msrs_cache_capacity"),
            );
        }
        // Delta of the process-global pool counters over this run: how the
        // chunks were actually distributed between workers and the caller.
        let mut worker_chunks = after.pool_worker_chunks.clone();
        for (slot, prev) in worker_chunks.iter_mut().zip(&before.pool_worker_chunks) {
            *slot -= prev;
        }
        eprintln!(
            "pool: {} persistent worker(s) ({} spawned, {} reclaimed), {} parallel op(s), \
             {} helper job(s), chunks by caller {}, by worker {:?}",
            after.gauge("msrs_pool_workers_alive"),
            after.counter("msrs_pool_spawns_total"),
            after.counter("msrs_pool_reclaims_total"),
            delta("msrs_pool_ops_total"),
            delta("msrs_pool_helper_jobs_total"),
            delta("msrs_pool_caller_chunks_total"),
            worker_chunks,
        );
    }
    if let Some(err) = outcome.error {
        return Err(err.to_string());
    }
    if outcome.stats.instances == 0 {
        return Err("corpus contains no instances".into());
    }
    Ok(())
}

/// `msrs serve`: a long-lived JSONL-over-TCP front end on the same
/// `ServiceCore` data plane as `msrs batch`. Runs until a client sends the
/// `#shutdown` control line (graceful: in-flight requests complete and
/// flush before the listener exits) or the process is killed.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let engine = engine_from_flags(flags)?;
    attach_cache_path(flags, &engine)?;
    let addr = flags.get("--addr").unwrap_or("127.0.0.1:7463");
    let idle_timeout = match flags.get_num("--idle-timeout-ms", 0u64)? {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let config = ServeConfig {
        max_inflight: flags.get_num("--max-inflight", 0usize)?,
        metrics_addr: flags.get("--metrics-addr").map(String::from),
        idle_timeout,
        max_requests_per_session: flags.get_num("--max-requests-per-session", 0usize)?,
        decode_threads: flags.get_num("--decode-threads", 1usize)?,
    };
    let handle =
        service::serve(engine, addr, config).map_err(|e| format!("binding {addr}: {e}"))?;
    let quiet = flags.has("--quiet");
    if !quiet {
        eprintln!("serve: listening on {}", handle.local_addr());
        if let Some(metrics) = handle.metrics_local_addr() {
            eprintln!("serve: metrics on http://{metrics}/metrics");
        }
        eprintln!("serve: `#stats` returns a snapshot, `#shutdown` drains and exits");
    }
    let summary = handle.wait();
    if !quiet {
        eprintln!(
            "serve: {} session(s), {} request(s) answered, {} shed, {} error line(s)",
            summary.sessions, summary.requests, summary.sheds, summary.errors,
        );
    }
    Ok(())
}

/// `msrs dispatch`: crash-tolerant multi-process batch — shards the corpus
/// across `msrs worker` child processes, merges reports in shard order,
/// and (with `--checkpoint`) journals completed shards durably so an
/// interrupted run resumes bit-identically.
fn cmd_dispatch(flags: &Flags) -> Result<(), String> {
    let shard_size: usize = flags.get_num("--shard-size", DEFAULT_SHARD_SIZE)?;
    if shard_size == 0 {
        return Err("--shard-size must be ≥ 1".into());
    }
    let out_path = flags
        .get("--out")
        .ok_or("dispatch needs --out (reports must land in a real file)")?;
    let engine_cfg = engine_config_from_flags(flags)?;
    let mut worker_cmd = match flags.get("--worker-cmd") {
        Some(cmd) => {
            let parts: Vec<String> = cmd.split_whitespace().map(String::from).collect();
            if parts.is_empty() {
                return Err("--worker-cmd must not be blank".into());
            }
            parts
        }
        None => {
            let exe = std::env::current_exe().map_err(|e| format!("locating msrs binary: {e}"))?;
            vec![exe.to_string_lossy().into_owned(), "worker".into()]
        }
    };
    for (flag, value) in &flags.pairs {
        let forwarded = ENGINE_FLAGS.contains(&flag.as_str()) || flag == "--heartbeat-ms";
        if forwarded {
            worker_cmd.push(flag.clone());
            if let Some(v) = value {
                worker_cmd.push(v.clone());
            }
        }
    }
    let workers: usize = flags.get_num("--workers", 2usize)?;
    if workers == 0 && !flags.has("--listen") {
        return Err("--workers 0 needs --listen (a remote-only fleet)".into());
    }
    let cfg = dispatch::DispatchConfig {
        worker_cmd,
        workers,
        shard_size,
        max_attempts: flags.get_num("--max-attempts", 3u32)?,
        retry_backoff: Duration::from_millis(flags.get_num("--retry-backoff-ms", 50u64)?),
        heartbeat_timeout: Duration::from_millis(flags.get_num(
            "--heartbeat-timeout-ms",
            dispatch::DEFAULT_HEARTBEAT_TIMEOUT.as_millis() as u64,
        )?),
        shard_timeout: match flags.get_num("--shard-timeout-ms", 0u64)? {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        stop_after_shards: match flags.get("--stop-after-shards") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("bad --stop-after-shards `{v}`"))?,
            ),
        },
        hedge_multiplier: flags.get_num("--hedge-multiplier", 0.0f64)?,
        hedge_min: Duration::from_millis(flags.get_num("--hedge-min-ms", 250u64)?),
        config_fp: engine_cfg.content_fingerprint(),
        cache_path: flags.get("--cache-path").map(std::path::PathBuf::from),
    };
    let metrics_format = match flags.get("--metrics-format") {
        None | Some("json") => "json",
        Some("prometheus") => "prometheus",
        Some(other) => {
            return Err(format!(
                "bad --metrics-format `{other}` (expected json or prometheus)"
            ))
        }
    };
    if flags.has("--metrics-format") && !flags.has("--metrics-out") {
        return Err("--metrics-format requires --metrics-out".into());
    }
    // A `#shutdown` line on our own stdin requests a graceful drain (only
    // when the corpus comes from a file — stdin corpora own the stream).
    let shutdown = Arc::new(AtomicBool::new(false));
    if flags.get("--input") != Some("-") {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                match stdin.lock().read_line(&mut line) {
                    Ok(0) | Err(_) => return,
                    Ok(_) if line.trim() == "#shutdown" => {
                        shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
                        return;
                    }
                    Ok(_) => {}
                }
            }
        });
    }
    let hub = match flags.get("--listen") {
        None => None,
        Some(addr) => {
            let hub = RemoteHub::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            if !flags.has("--quiet") {
                eprintln!("dispatch: accepting remote workers on {}", hub.local_addr());
            }
            Some(hub)
        }
    };
    let input = open_input(flags)?;
    let checkpoint = flags.get("--checkpoint").map(std::path::PathBuf::from);
    let outcome = dispatch::dispatch_fleet(
        input,
        std::path::Path::new(out_path),
        checkpoint.as_deref(),
        &cfg,
        Some(&shutdown),
        hub,
    )
    .map_err(|e| format!("dispatch: {e}"))?;
    if let Some(path) = flags.get("--metrics-out") {
        let snapshot = telemetry::snapshot();
        let rendered = match metrics_format {
            "prometheus" => snapshot.to_prometheus(),
            _ => {
                let mut json = snapshot.to_json_string();
                json.push('\n');
                json
            }
        };
        std::fs::write(path, rendered).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if !flags.has("--quiet") {
        let s = &outcome.stats;
        eprintln!(
            "dispatch: {} instances in {} shard(s) (shard size {}, {} resumed from checkpoint), \
             {} proven optimal, ratio vs bound mean {:.4} worst {:.4}",
            s.instances,
            outcome.shards_total,
            s.shard_size,
            outcome.shards_resumed,
            s.proven_optimal,
            s.ratio_mean(),
            s.ratio_worst,
        );
        eprintln!(
            "fleet: {} worker(s) spawned for {} slot(s), {} retry(ies), {} quarantined shard(s)",
            outcome.workers_spawned,
            cfg.workers,
            outcome.retries,
            outcome.quarantined.len(),
        );
        if flags.has("--listen")
            || outcome.lease_expiries > 0
            || outcome.hedges_launched > 0
            || outcome.stale_drops > 0
        {
            eprintln!(
                "leases: {} remote worker(s) ({} reconnect(s)), {} lease expiry(ies), \
                 hedges {} launched / {} won / {} wasted, {} stale attempt(s) dropped",
                outcome.remote_workers,
                outcome.reconnects,
                outcome.lease_expiries,
                outcome.hedges_launched,
                outcome.hedges_won,
                outcome.hedges_wasted,
                outcome.stale_drops,
            );
        }
        if flags.has("--cache-path") {
            eprintln!(
                "cache plane: {} probe(s) answered from the shared store, \
                 {} stale fill(s) dropped",
                outcome.fleet_cache_hits, outcome.stale_fills_dropped,
            );
        }
        for q in &outcome.quarantined {
            let worker = q
                .worker
                .map_or(String::new(), |w| format!(" (last worker {w})"));
            eprintln!(
                "quarantined: shard {} after {} attempt(s){worker}: {}",
                q.shard, q.attempts, q.message
            );
        }
        if outcome.interrupted {
            eprintln!("dispatch: drained early — rerun with the same --checkpoint to resume");
        }
    }
    if let Some(err) = outcome.error {
        return Err(err.to_string());
    }
    if !outcome.quarantined.is_empty() {
        return Err(format!(
            "{} shard(s) quarantined (structured error records emitted in place of reports)",
            outcome.quarantined.len()
        ));
    }
    if outcome.stats.instances == 0 && !outcome.interrupted {
        return Err("corpus contains no instances".into());
    }
    Ok(())
}

/// `msrs worker`: the dispatch worker loop — shard assignments in,
/// reports + heartbeats + `#done`/`#error` records out. Speaks
/// stdin/stdout when spawned by `msrs dispatch`, or dials a remote
/// coordinator with `--connect HOST:PORT` (versioned handshake, bounded
/// reconnect backoff across coordinator restarts).
fn cmd_worker(flags: &Flags) -> Result<(), String> {
    let engine_cfg = engine_config_from_flags(flags)?;
    let config_fp = engine_cfg.content_fingerprint();
    let engine = Engine::new(engine_cfg);
    let hb: u64 = flags.get_num(
        "--heartbeat-ms",
        dispatch::DEFAULT_HEARTBEAT.as_millis() as u64,
    )?;
    let decode_threads: usize = flags.get_num("--decode-threads", 1)?;
    if let Some(addr) = flags.get("--connect") {
        let defaults = RemoteWorkerConfig::default();
        let cfg = RemoteWorkerConfig {
            addr: addr.to_string(),
            heartbeat: Duration::from_millis(hb.max(1)),
            config_fp,
            reconnect_base: Duration::from_millis(
                flags
                    .get_num("--reconnect-ms", defaults.reconnect_base.as_millis() as u64)?
                    .max(1),
            ),
            reconnect_attempts: flags.get_num("--reconnect-max", defaults.reconnect_attempts)?,
            decode_threads,
            ..defaults
        };
        return run_remote_worker(&engine, &cfg).map_err(|e| format!("worker: {e}"));
    }
    let stdin = std::io::stdin();
    dispatch::run_worker(
        &engine,
        stdin.lock(),
        std::io::stdout(),
        Duration::from_millis(hb.max(1)),
        decode_threads,
    )
    .map_err(|e| format!("worker: {e}"))
}

/// `msrs stats`: pretty-print a JSON telemetry snapshot written by
/// `msrs batch --metrics-out` (counters, gauges, stage-latency quantiles,
/// and the per-(profile, member) outcome table).
fn cmd_stats(flags: &Flags) -> Result<(), String> {
    use std::fmt::Write as _;
    let mut text = String::new();
    open_input(flags)?
        .read_to_string(&mut text)
        .map_err(|e| format!("reading input: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parsing snapshot: {e}"))?;
    if doc.get("telemetry").and_then(Json::as_str) != Some("msrs") {
        return Err("not an msrs telemetry snapshot (missing `\"telemetry\":\"msrs\"`)".into());
    }
    let num = |v: &Json| v.as_u64().unwrap_or(0);
    // Render into a buffer and write once at the end: stdout may be a pipe
    // that closes early (`msrs stats | head`), which must truncate the
    // output, not panic.
    let mut buf = String::new();
    macro_rules! out {
        ($($t:tt)*) => {{ let _ = writeln!(buf, $($t)*); }};
    }
    if let Some(Json::Obj(counters)) = doc.get("counters") {
        out!("counters:");
        for (name, v) in counters {
            out!("  {name:<34} {}", num(v));
        }
    }
    if let Some(Json::Obj(gauges)) = doc.get("gauges") {
        out!("gauges:");
        for (name, v) in gauges {
            match v {
                Json::Num(n) => out!("  {name:<34} {n}"),
                _ => out!("  {name:<34} ?"),
            }
        }
    }
    // Dispatch/fleet summary: the operator-facing counter families from
    // the coordinator (worker health, leases, hedging, cache plane),
    // surfaced with labels instead of leaving them buried in the raw
    // counter dump above.
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .map_or(0, |v| v.as_u64().unwrap_or(0))
    };
    let dispatch_active = [
        "msrs_dispatch_shards_total",
        "msrs_dispatch_workers_spawned_total",
        "msrs_dispatch_remote_workers_total",
        "msrs_cache_store_loads_total",
        "msrs_cache_store_flushes_total",
    ]
    .iter()
    .any(|name| counter(name) > 0);
    if dispatch_active {
        out!("dispatch/fleet:");
        out!(
            "  shards: {} emitted ({} resumed from checkpoint), {} retry(ies), \
             {} quarantined",
            counter("msrs_dispatch_shards_total"),
            counter("msrs_dispatch_shards_resumed_total"),
            counter("msrs_dispatch_retries_total"),
            counter("msrs_dispatch_quarantines_total"),
        );
        out!(
            "  workers: {} spawned, {} crash(es), {} remote ({} reconnect(s), \
             {} handshake reject(s))",
            counter("msrs_dispatch_workers_spawned_total"),
            counter("msrs_dispatch_worker_crashes_total"),
            counter("msrs_dispatch_remote_workers_total"),
            counter("msrs_dispatch_reconnects_total"),
            counter("msrs_dispatch_handshake_rejects_total"),
        );
        out!(
            "  leases: {} expiry(ies), {} stale attempt(s) dropped; hedges \
             {} launched / {} won / {} wasted",
            counter("msrs_dispatch_lease_expiries_total"),
            counter("msrs_dispatch_stale_drops_total"),
            counter("msrs_dispatch_hedges_total"),
            counter("msrs_dispatch_hedge_wins_total"),
            counter("msrs_dispatch_hedge_wasted_total"),
        );
        out!(
            "  cache plane: {} fleet hit(s), {} stale fill(s) dropped; store \
             {} loaded / {} load error(s) / {} segment(s) quarantined / \
             {} flush(es) / {} queue drop(s)",
            counter("msrs_dispatch_fleet_cache_hits_total"),
            counter("msrs_dispatch_stale_fills_dropped_total"),
            counter("msrs_cache_store_loads_total"),
            counter("msrs_cache_store_load_errors_total"),
            counter("msrs_cache_store_segments_quarantined_total"),
            counter("msrs_cache_store_flushes_total"),
            counter("msrs_cache_store_queue_drops_total"),
        );
    }
    let field = |o: &Json, key: &str| o.get(key).map_or(0, num);
    if let Some(stages) = doc.get("stages").and_then(Json::as_arr) {
        out!(
            "stages (ns): {:<28} {:>10} {:>12} {:>10} {:>10} {:>10} {:>12}",
            "",
            "count",
            "sum",
            "p50",
            "p90",
            "p99",
            "max"
        );
        for stage in stages {
            let name = stage.get("name").and_then(Json::as_str).unwrap_or("?");
            out!(
                "  {name:<38} {:>10} {:>12} {:>10} {:>10} {:>10} {:>12}",
                field(stage, "count"),
                field(stage, "sum"),
                field(stage, "p50"),
                field(stage, "p90"),
                field(stage, "p99"),
                field(stage, "max"),
            );
        }
    }
    if let Some(outcomes) = doc.get("outcomes").and_then(Json::as_arr) {
        out!(
            "outcomes: {:<10} {:<14} {:>8} {:>8} {:>10} {:>9} {:>9} {:>12} {:>12}",
            "profile",
            "member",
            "runs",
            "wins",
            "completed",
            "timeout",
            "budget",
            "nodes",
            "p90 µs"
        );
        for o in outcomes {
            let profile = o.get("profile").and_then(Json::as_str).unwrap_or("?");
            let member = o.get("member").and_then(Json::as_str).unwrap_or("?");
            let wall_p90 = o.get("wall").map_or(0, |w| field(w, "p90"));
            out!(
                "  {profile:<8} {member:<14} {:>8} {:>8} {:>10} {:>9} {:>9} {:>12} {:>12}",
                field(o, "runs"),
                field(o, "wins"),
                field(o, "completed"),
                field(o, "timed_out"),
                field(o, "exhausted"),
                field(o, "nodes_total"),
                wall_p90,
            );
        }
    }
    if let Some(chunks) = doc.get("pool_worker_chunks").and_then(Json::as_arr) {
        if !chunks.is_empty() {
            let chunks: Vec<u64> = chunks.iter().map(num).collect();
            out!("pool worker chunks: {chunks:?}");
        }
    }
    let mut stdout = std::io::stdout().lock();
    match stdout
        .write_all(buf.as_bytes())
        .and_then(|()| stdout.flush())
    {
        Err(e) if e.kind() != std::io::ErrorKind::BrokenPipe => Err(format!("writing stats: {e}")),
        _ => Ok(()),
    }
}

/// `msrs bench`: portfolio vs every single solver over generated corpora,
/// or (with `--baseline-out`) the machine-readable perf-baseline suite.
fn cmd_bench(flags: &Flags) -> Result<(), String> {
    if flags.get("--baseline-out").is_some() || flags.get("--compare").is_some() {
        return cmd_bench_suite(flags);
    }
    for f in ["--strict", "--threshold", "--reference"] {
        if flags.has(f) {
            return Err(format!("{f} requires --baseline-out or --compare"));
        }
    }
    let which = flags.get("--families").unwrap_or("all");
    let count: u64 = flags.get_num("--count", 10)?;
    let machines: usize = flags.get_num("--machines", 4)?;
    let seed: u64 = flags.get_num("--seed", 1)?;
    let engine = engine_from_flags(flags)?;
    let specs: Vec<_> = if which == "all" {
        FAMILIES.iter().collect()
    } else {
        which
            .split(',')
            .map(|name| family(name.trim()).ok_or_else(|| format!("unknown family `{name}`")))
            .collect::<Result<_, _>>()?
    };
    println!(
        "{:<12} {:>6} | {:>14} {:>9} {:>9} | portfolio vs single-solver mean ratio",
        "family", "n", "solver", "mean", "worst"
    );
    for spec in specs {
        let reqs: Vec<SolveRequest> = (0..count)
            .map(|k| {
                SolveRequest::with_id(
                    format!("{}-{k}", spec.name),
                    (spec.generate)(seed.wrapping_add(k), machines),
                )
            })
            .collect();
        let start = std::time::Instant::now();
        let reports = engine.solve_batch(&reqs);
        let elapsed = start.elapsed();
        let mean =
            reports.iter().map(SolveReport::ratio_vs_bound).sum::<f64>() / reports.len() as f64;
        let worst = reports
            .iter()
            .map(SolveReport::ratio_vs_bound)
            .fold(1.0f64, f64::max);
        println!(
            "{:<12} {:>6} | {:>14} {:>9.4} {:>9.4} | engine ({:?} total)",
            spec.name,
            reports.len(),
            "portfolio",
            mean,
            worst,
            elapsed,
        );
        // Single-solver comparison rows (certifying + baseline members).
        for kind in [
            SolverKind::FiveThirds,
            SolverKind::ThreeHalves,
            SolverKind::HebrardGreedy,
            SolverKind::ListScheduler,
            SolverKind::MergedLpt,
        ] {
            let mut mean = 0.0f64;
            let mut worst = 1.0f64;
            for req in &reqs {
                let result = match kind {
                    SolverKind::FiveThirds => msrs_approx::five_thirds(&req.instance),
                    SolverKind::ThreeHalves => msrs_approx::three_halves(&req.instance),
                    SolverKind::HebrardGreedy => {
                        msrs_approx::baselines::hebrard_greedy(&req.instance)
                    }
                    SolverKind::ListScheduler => {
                        msrs_approx::baselines::list_scheduler(&req.instance)
                    }
                    SolverKind::MergedLpt => msrs_approx::baselines::merged_lpt(&req.instance),
                    SolverKind::Exact | SolverKind::Eptas => {
                        unreachable!("not in the single-solver comparison row set")
                    }
                };
                let ratio = result.ratio_vs_bound(&req.instance);
                mean += ratio;
                worst = worst.max(ratio);
            }
            mean /= reqs.len() as f64;
            println!(
                "{:<12} {:>6} | {:>14} {:>9.4} {:>9.4} |",
                "",
                "",
                kind.name(),
                mean,
                worst
            );
        }
    }
    Ok(())
}

/// Compact per-experiment telemetry attachment: the nonzero counter deltas
/// and stage-histogram sample-count deltas between two snapshots. Extra
/// keys are ignored by [`experiment_key`] / [`experiment_metric`], so
/// attaching this to baseline JSON stays compare-compatible.
fn telemetry_delta(before: &telemetry::Snapshot, after: &telemetry::Snapshot) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::new();
    for (name, v) in &after.counters {
        let delta = v - before.counter(name);
        if delta > 0 {
            fields.push(((*name).into(), Json::Num(delta as i128)));
        }
    }
    for stage in &after.stages {
        let prior = before
            .stages
            .iter()
            .find(|h| h.name == stage.name)
            .map_or(0, |h| h.count);
        let delta = stage.count - prior;
        if delta > 0 {
            fields.push((format!("{}_count", stage.name), Json::Num(delta as i128)));
        }
    }
    Json::Obj(fields)
}

/// The perf-baseline suite behind `msrs bench --baseline-out` / `--compare`
/// (committed as `BENCH_7.json`): machine-readable wall times and node
/// counts that later PRs diff against. Every experiment carries a
/// `telemetry` object — the registry counter deltas over its timed
/// section — so baseline files double as observability fixtures.
///
/// * `tiny_batch_1` / `tiny_batch_8` — per-call serving latency of a
///   1-instance `Engine::solve` (parallel portfolio wave) and an
///   8-instance `Engine::solve_batch`, cache off: the per-operation
///   worker-dispatch overhead a persistent pool is supposed to shave.
/// * `traffic_batch` — a `--count`-instance, 90%-duplicate `traffic`
///   corpus solved with the cache off and on, at 1 and 4 worker threads:
///   the cache/dedup throughput win.
/// * `stream_traffic` — a `100 × --count`-instance pre-rendered JSONL
///   corpus pushed through the byte-level serving data plane
///   (`JsonlServer`, default shard size) at 4 threads with the default
///   cache: sustained bytes-in→bytes-out throughput in O(shard) memory,
///   with the parse/solve/serialize time split recorded — once with the
///   sequential zero-allocation decode and once with `--decode-threads 4`
///   (`stream_traffic_pardecode`, the parallel-decode ablation).
/// * `serve_tcp` — the same traffic family served over loopback TCP
///   through `msrs serve`: 4 concurrent sessions in request-response
///   lockstep against one shared engine, measuring per-request service
///   latency including the wire.
/// * `exact_*` — exact branch-and-bound workloads (the E9 gap proofs to
///   completion, plus a budget-capped sweep of the hard parity-gap
///   partition instance) at 1 search thread: node counts and node
///   throughput of the allocation-free hot loop, with and without the
///   symmetry-dominance rule.
fn run_baseline_suite(machines: usize, count: u64) -> Result<Vec<Json>, String> {
    use msrs_exact::{solve_configured, BoundConfig, SolveLimits, SolveOutcome};

    let mut experiments: Vec<Json> = Vec::new();

    // -- Tiny-batch serving latency (per-call dispatch overhead). ----------
    // 9 jobs spread over `machines + 1` non-empty classes: Tiny-tier at the
    // default machine count (exact member planned) but strictly more
    // classes than machines, so the full portfolio — not the trivial
    // single-member short-circuit — runs, and `Engine::solve` exercises the
    // parallel member wave whose dispatch cost this experiment measures.
    let tiny = |seed: u64| {
        let k = machines + 1;
        let mut classes: Vec<Vec<msrs_core::Time>> = vec![Vec::new(); k];
        for j in 0..9u64 {
            classes[(j as usize) % k].push(1 + (seed.wrapping_mul(7) + j * 3) % 9);
        }
        msrs_core::Instance::from_classes(machines, &classes).expect("valid microbench instance")
    };
    let calls = count.max(1) as usize;
    for threads in [1usize, 4] {
        let engine = Engine::new(EngineConfig {
            threads,
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        let one_req = SolveRequest::with_id("tiny-1", tiny(1));
        std::hint::black_box(engine.solve(&one_req));
        let t_before = telemetry::snapshot();
        let start = std::time::Instant::now();
        for _ in 0..calls {
            std::hint::black_box(engine.solve(&one_req));
        }
        let wall = start.elapsed().as_micros() as i128;
        eprintln!(
            "tiny_batch_1 threads={threads}: {calls} calls in {wall} µs ({} µs/call)",
            wall / calls as i128
        );
        experiments.push(Json::Obj(vec![
            ("name".into(), Json::Str("tiny_batch_1".into())),
            ("threads".into(), Json::Num(threads as i128)),
            ("cache_capacity".into(), Json::Num(0)),
            ("calls".into(), Json::Num(calls as i128)),
            ("wall_micros".into(), Json::Num(wall)),
            ("per_call_micros".into(), Json::Num(wall / calls as i128)),
            (
                "telemetry".into(),
                telemetry_delta(&t_before, &telemetry::snapshot()),
            ),
        ]));

        let reqs8: Vec<SolveRequest> = (0..8)
            .map(|s| SolveRequest::with_id(format!("tiny8-{s}"), tiny(s)))
            .collect();
        let calls8 = (calls / 4).max(10);
        std::hint::black_box(engine.solve_batch(&reqs8));
        let t_before = telemetry::snapshot();
        let start = std::time::Instant::now();
        for _ in 0..calls8 {
            std::hint::black_box(engine.solve_batch(&reqs8));
        }
        let wall = start.elapsed().as_micros() as i128;
        eprintln!(
            "tiny_batch_8 threads={threads}: {calls8} calls in {wall} µs ({} µs/call)",
            wall / calls8 as i128
        );
        experiments.push(Json::Obj(vec![
            ("name".into(), Json::Str("tiny_batch_8".into())),
            ("threads".into(), Json::Num(threads as i128)),
            ("cache_capacity".into(), Json::Num(0)),
            ("calls".into(), Json::Num(calls8 as i128)),
            ("wall_micros".into(), Json::Num(wall)),
            ("per_call_micros".into(), Json::Num(wall / calls8 as i128)),
            (
                "telemetry".into(),
                telemetry_delta(&t_before, &telemetry::snapshot()),
            ),
        ]));
    }

    // -- Traffic batch: cache off vs on, threads 1 and 4. ------------------
    let reqs: Vec<SolveRequest> = (0..count)
        .map(|seed| {
            SolveRequest::with_id(
                format!("traffic-{seed}"),
                msrs_gen::traffic(seed, machines, 10),
            )
        })
        .collect();
    for threads in [1usize, 4] {
        for cache_capacity in [0usize, DEFAULT_CACHE_CAPACITY] {
            let engine = Engine::new(EngineConfig {
                threads,
                cache_capacity,
                ..EngineConfig::default()
            });
            // Two passes: `traffic_batch` lands on a cold cache (its win is
            // intra-batch dedup — Amdahl-capped at 10× by the 100 distinct
            // forms that still need solving), `traffic_batch_warm` replays
            // the corpus against the primed cache (the steady state of
            // repeated traffic — every request is a hit).
            for pass in ["traffic_batch", "traffic_batch_warm"] {
                let before = telemetry::snapshot();
                let start = std::time::Instant::now();
                let reports = engine.solve_batch(&reqs);
                let wall = start.elapsed().as_micros() as i128;
                let after = telemetry::snapshot();
                // One engine is live at a time here, so the global registry
                // delta is exactly this pass's cache activity.
                let hits = after.counter("msrs_cache_hits_total")
                    - before.counter("msrs_cache_hits_total");
                let misses = after.counter("msrs_cache_misses_total")
                    - before.counter("msrs_cache_misses_total");
                eprintln!(
                    "{pass} threads={threads} cache={cache_capacity}: {} instances in {wall} µs \
                     ({hits} hits, {misses} misses)",
                    reports.len(),
                );
                experiments.push(Json::Obj(vec![
                    ("name".into(), Json::Str(pass.into())),
                    ("threads".into(), Json::Num(threads as i128)),
                    ("cache_capacity".into(), Json::Num(cache_capacity as i128)),
                    ("instances".into(), Json::Num(reports.len() as i128)),
                    ("wall_micros".into(), Json::Num(wall)),
                    ("cache_hits".into(), Json::Num(hits as i128)),
                    ("cache_misses".into(), Json::Num(misses as i128)),
                    ("telemetry".into(), telemetry_delta(&before, &after)),
                ]));
            }
        }
    }

    // -- Streamed serving data plane over a large generated corpus. --------
    // End to end in *bytes*: the corpus is pre-rendered as JSONL (not
    // timed), then pushed through the zero-allocation serve path — decode
    // into reusable buffers, in-place canonical fingerprint, cache probe,
    // serialize straight from the cached canonical report. This is the
    // request→report pipeline a service front end runs per line.
    {
        let stream_n = count.saturating_mul(100);
        let mut corpus = String::new();
        for seed in 0..stream_n {
            let inst = msrs_gen::traffic(seed, machines, 10);
            corpus.push_str(&jsonl::write_instance_line(
                Some(&format!("t-{seed}")),
                &inst,
            ));
            corpus.push('\n');
        }
        // Sequential decode (the zero-allocation path) vs the same corpus
        // with shard decode fanned out over 4 pool workers: the ablation
        // isolating the single-reader parse bottleneck.
        for (name, decode_threads) in [("stream_traffic", 1usize), ("stream_traffic_pardecode", 4)]
        {
            let engine = Engine::new(EngineConfig {
                threads: 4,
                cache_capacity: DEFAULT_CACHE_CAPACITY,
                ..EngineConfig::default()
            });
            let mut sink = std::io::sink();
            let t_before = telemetry::snapshot();
            let start = std::time::Instant::now();
            let outcome = JsonlServer::new()
                .with_decode_threads(decode_threads)
                .serve(&engine, corpus.as_bytes(), &mut sink, DEFAULT_SHARD_SIZE)
                .map_err(|e| format!("stream: {e}"))?;
            let wall = start.elapsed().as_micros() as i128;
            let s = outcome.stats;
            let ips = s.instances as f64 / (wall.max(1) as f64 / 1e6);
            eprintln!(
                "{name}: {} instances in {} shard(s), {wall} µs \
                 ({ips:.0} inst/s, {} cache-served, max resident {}; \
                 parse {} µs, canonicalize {} µs, solve {} µs, serialize {} µs)",
                s.instances,
                s.shards,
                s.fast_path_hits,
                s.max_resident,
                s.parse_micros,
                s.canon_micros,
                s.solve_micros,
                s.serialize_micros,
            );
            experiments.push(Json::Obj(vec![
                ("name".into(), Json::Str(name.into())),
                ("threads".into(), Json::Num(4)),
                (
                    "cache_capacity".into(),
                    Json::Num(DEFAULT_CACHE_CAPACITY as i128),
                ),
                ("decode_threads".into(), Json::Num(decode_threads as i128)),
                ("instances".into(), Json::Num(s.instances as i128)),
                ("shards".into(), Json::Num(s.shards as i128)),
                ("shard_size".into(), Json::Num(s.shard_size as i128)),
                ("max_resident".into(), Json::Num(s.max_resident as i128)),
                ("fast_path_hits".into(), Json::Num(s.fast_path_hits as i128)),
                ("wall_micros".into(), Json::Num(wall)),
                ("parse_micros".into(), Json::Num(s.parse_micros as i128)),
                ("canon_micros".into(), Json::Num(s.canon_micros as i128)),
                ("solve_micros".into(), Json::Num(s.solve_micros as i128)),
                (
                    "serialize_micros".into(),
                    Json::Num(s.serialize_micros as i128),
                ),
                ("instances_per_sec".into(), Json::Num(ips as i128)),
                (
                    "telemetry".into(),
                    telemetry_delta(&t_before, &telemetry::snapshot()),
                ),
            ]));
        }
    }

    // -- Concurrent TCP serving through `msrs serve`. ----------------------
    // Loopback end-to-end: 4 client threads in request-response lockstep
    // against one server (shared engine: 4 workers, default cache) — the
    // per-request service latency including the wire, not just the data
    // plane.
    {
        const CLIENTS: usize = 4;
        // Per-request cost folds in fixed setup (engine spawn, accepts,
        // connects) amortized over the run, so short `--count` runs would
        // look slower than a full-volume baseline on the same hardware.
        // Floor the volume at the full-suite default (10k requests, ~250 ms)
        // so CI's shortened counts compare on equal footing.
        let per_client = ((count.saturating_mul(10)) as usize / CLIENTS).max(2500);
        let engine = Engine::new(EngineConfig {
            threads: 4,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            ..EngineConfig::default()
        });
        let handle = service::serve(engine, "127.0.0.1:0", ServeConfig::default())
            .map_err(|e| format!("serve_tcp: bind: {e}"))?;
        let addr = handle.local_addr();
        // Pre-render each request with its terminating newline so every
        // request is a single `write_all` — a trailing one-byte write would
        // sit behind Nagle waiting on the peer's delayed ACK (~40 ms per
        // request in lockstep traffic).
        let lines: std::sync::Arc<Vec<String>> = std::sync::Arc::new(
            (0..per_client as u64)
                .map(|seed| {
                    let mut line = jsonl::write_instance_line(
                        Some(&format!("s-{seed}")),
                        &msrs_gen::traffic(seed, machines, 10),
                    );
                    line.push('\n');
                    line
                })
                .collect(),
        );
        let t_before = telemetry::snapshot();
        let start = std::time::Instant::now();
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let lines = std::sync::Arc::clone(&lines);
                std::thread::spawn(move || -> Result<usize, String> {
                    let err = |e: std::io::Error| format!("serve_tcp client {c}: {e}");
                    let mut stream = std::net::TcpStream::connect(addr).map_err(err)?;
                    stream.set_nodelay(true).map_err(err)?;
                    let mut reader = BufReader::new(stream.try_clone().map_err(err)?);
                    let mut resp = String::new();
                    for line in lines.iter() {
                        stream.write_all(line.as_bytes()).map_err(err)?;
                        resp.clear();
                        reader.read_line(&mut resp).map_err(err)?;
                        if !resp.ends_with('\n') {
                            return Err(format!("serve_tcp client {c}: truncated response"));
                        }
                    }
                    Ok(lines.len())
                })
            })
            .collect();
        let mut served = 0usize;
        for client in clients {
            served += client
                .join()
                .map_err(|_| "serve_tcp: client thread panicked".to_string())??;
        }
        let wall = start.elapsed().as_micros() as i128;
        handle.begin_shutdown();
        let summary = handle.wait();
        if summary.requests != served as u64 || summary.errors != 0 || summary.sheds != 0 {
            return Err(format!(
                "serve_tcp: server answered {} of {served} requests \
                 ({} errors, {} sheds)",
                summary.requests, summary.errors, summary.sheds
            ));
        }
        let ips = served as f64 / (wall.max(1) as f64 / 1e6);
        eprintln!(
            "serve_tcp: {served} requests over {CLIENTS} sessions in {wall} µs \
             ({ips:.0} req/s, {} µs/request)",
            wall / served.max(1) as i128
        );
        experiments.push(Json::Obj(vec![
            ("name".into(), Json::Str("serve_tcp".into())),
            ("threads".into(), Json::Num(4)),
            (
                "cache_capacity".into(),
                Json::Num(DEFAULT_CACHE_CAPACITY as i128),
            ),
            ("sessions".into(), Json::Num(CLIENTS as i128)),
            ("instances".into(), Json::Num(served as i128)),
            ("wall_micros".into(), Json::Num(wall)),
            ("requests_per_sec".into(), Json::Num(ips as i128)),
            (
                "telemetry".into(),
                telemetry_delta(&t_before, &telemetry::snapshot()),
            ),
        ]));
    }

    // -- Exact-solver node throughput (single search thread). --------------
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .map_err(|e| format!("pool: {e}"))?;
    let gap7: Vec<Vec<u64>> = vec![
        vec![4],
        vec![4],
        vec![4],
        vec![4],
        vec![4],
        vec![3],
        vec![3],
    ];
    let gap7_inst =
        msrs_core::Instance::from_classes(2, &gap7).map_err(|e| format!("gap7: {e}"))?;
    let parity21 = msrs_gen::parity_gap_partition(21);
    let workloads: [(&str, &msrs_core::Instance, u64); 3] = [
        ("exact_e9_gap7", &gap7_inst, 200_000_000),
        ("exact_parity21_capped", &parity21, 2_000_000),
        ("exact_parity21_capped_nosym", &parity21, 2_000_000),
    ];
    for (name, inst, max_nodes) in workloads {
        let bounds = BoundConfig {
            symmetry: !name.ends_with("_nosym"),
            ..BoundConfig::default()
        };
        let t_before = telemetry::snapshot();
        let start = std::time::Instant::now();
        let outcome =
            one.install(|| solve_configured(inst, SolveLimits { max_nodes }, bounds, None));
        let wall = start.elapsed().as_micros() as i128;
        let (status, nodes) = match outcome {
            SolveOutcome::Optimal(r) => ("optimal", r.nodes),
            SolveOutcome::Exhausted { nodes } => ("exhausted", nodes),
            SolveOutcome::Cancelled { nodes } => ("cancelled", nodes),
        };
        let nps = nodes as f64 / (wall.max(1) as f64 / 1e6);
        eprintln!("{name}: {status}, {nodes} nodes in {wall} µs ({nps:.0} nodes/s)");
        experiments.push(Json::Obj(vec![
            ("name".into(), Json::Str(name.into())),
            ("threads".into(), Json::Num(1)),
            ("status".into(), Json::Str(status.into())),
            ("nodes".into(), Json::Num(nodes as i128)),
            ("wall_micros".into(), Json::Num(wall)),
            ("nodes_per_sec".into(), Json::Num(nps as i128)),
            (
                "telemetry".into(),
                telemetry_delta(&t_before, &telemetry::snapshot()),
            ),
        ]));
    }

    Ok(experiments)
}

/// `msrs bench --baseline-out` / `--compare`: run the pinned perf-baseline
/// suite once, then write it as JSON and/or diff it against a committed
/// baseline file.
fn cmd_bench_suite(flags: &Flags) -> Result<(), String> {
    // The suite pins its own thread counts, cache capacities, and solver
    // configuration (that is what makes baselines comparable across PRs);
    // reject flags it would otherwise silently ignore.
    let ignored: Vec<&str> = [
        "--families",
        "--seed",
        "--threads",
        "--no-baselines",
        "--no-eptas",
        "--exact-nodes",
        "--deadline-ms",
        "--cache-capacity",
        "--no-cache",
    ]
    .into_iter()
    .filter(|f| flags.has(f))
    .collect();
    if !ignored.is_empty() {
        return Err(format!(
            "the baseline suite pins its own configuration; remove: {}",
            ignored.join(", ")
        ));
    }
    if flags.has("--reference") && !flags.has("--baseline-out") {
        return Err("--reference requires --baseline-out".into());
    }
    for f in ["--strict", "--threshold"] {
        if flags.has(f) && !flags.has("--compare") {
            return Err(format!("{f} requires --compare"));
        }
    }

    let machines: usize = flags.get_num("--machines", 4)?;
    let count: u64 = flags.get_num("--count", 1000)?;
    let experiments = run_baseline_suite(machines, count)?;

    if let Some(path) = flags.get("--baseline-out") {
        let mut doc = vec![
            ("bench".into(), Json::Str("BENCH_7".into())),
            ("machines".into(), Json::Num(machines as i128)),
            ("experiments".into(), Json::Arr(experiments.clone())),
        ];
        if let Some(ref_path) = flags.get("--reference") {
            let text = std::fs::read_to_string(ref_path)
                .map_err(|e| format!("reading {ref_path}: {e}"))?;
            let reference = Json::parse(&text).map_err(|e| format!("parsing {ref_path}: {e}"))?;
            let ref_experiments = reference
                .get("experiments")
                .cloned()
                .ok_or_else(|| format!("{ref_path} has no `experiments` array"))?;
            doc.push((
                "reference".into(),
                Json::Obj(vec![
                    (
                        "note".into(),
                        Json::Str(format!(
                            "experiments embedded from {ref_path} (the previous committed baseline)"
                        )),
                    ),
                    ("experiments".into(), ref_experiments),
                ]),
            ));
        }
        let doc = Json::Obj(doc);
        std::fs::write(path, format!("{doc}\n")).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("baseline written to {path}");
    }

    if let Some(base_path) = flags.get("--compare") {
        let threshold: f64 = flags.get_num("--threshold", 50.0)?;
        let text =
            std::fs::read_to_string(base_path).map_err(|e| format!("reading {base_path}: {e}"))?;
        let base = Json::parse(&text).map_err(|e| format!("parsing {base_path}: {e}"))?;
        let regressions = compare_with_baseline(&base, base_path, &experiments, threshold);
        if regressions > 0 && flags.has("--strict") {
            return Err(format!(
                "{regressions} experiment(s) regressed beyond {threshold}% (--strict)"
            ));
        }
    }
    Ok(())
}

/// Experiments whose measured wall time falls below this are compared
/// warn-only even under `--strict`: microsecond-scale measurements on
/// shared machines swing past any sane threshold out of pure noise.
const STRICT_WALL_FLOOR_MICROS: i128 = 5_000;

/// The comparable headline metric of one suite experiment, as
/// `(label, value, higher_is_better)`. Rates are preferred over raw walls so
/// runs with different `--count` scales still compare per unit of work.
fn experiment_metric(e: &Json) -> Option<(&'static str, f64, bool)> {
    let num = |key: &str| -> Option<f64> {
        match e.get(key) {
            Some(Json::Num(n)) => Some(*n as f64),
            _ => None,
        }
    };
    let wall = num("wall_micros");
    if let (Some(wall), Some(calls)) = (wall, num("calls")) {
        if calls > 0.0 {
            return Some(("µs/call", wall / calls, false));
        }
    }
    if let (Some(wall), Some(instances)) = (wall, num("instances")) {
        if instances > 0.0 {
            return Some(("µs/instance", wall / instances, false));
        }
    }
    if let Some(nps) = num("nodes_per_sec") {
        return Some(("nodes/s", nps, true));
    }
    wall.map(|w| ("µs", w, false))
}

/// A stable identity for matching experiments across baseline files.
fn experiment_key(e: &Json) -> String {
    let name = e.get("name").and_then(Json::as_str).unwrap_or("?");
    let field = |key: &str| match e.get(key) {
        Some(Json::Num(n)) => n.to_string(),
        _ => "-".into(),
    };
    format!("{name}|t{}|c{}", field("threads"), field("cache_capacity"))
}

/// Prints the per-experiment deltas of `current` against `base` and returns
/// how many experiments regressed beyond `threshold` percent.
fn compare_with_baseline(base: &Json, base_path: &str, current: &[Json], threshold: f64) -> usize {
    // Throughput baselines are recorded on multi-core hosts; on a 1-core
    // host every parallel experiment loses its speedup and the gate fails
    // on topology, not on a code change. Report the deltas, but downgrade
    // them to warnings. Vanished experiments still gate — lost coverage is
    // host-independent.
    let single_core = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        == 1;
    if single_core {
        eprintln!(
            "compare: single-core host — slowdowns reported as warnings only \
             (baselines assume parallelism)"
        );
    }
    let empty = Vec::new();
    let base_experiments = base
        .get("experiments")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let mut base_by_key = std::collections::HashMap::new();
    for e in base_experiments {
        base_by_key.insert(experiment_key(e), e);
    }
    let heading = format!("bench compare vs {base_path}");
    println!(
        "{heading:<34} {:>12} {:>12} {:>12}  (regression threshold {threshold}%)",
        "baseline", "current", "delta",
    );
    let mut regressions = 0usize;
    let mut missing = 0usize;
    let mut seen = std::collections::HashSet::new();
    for e in current {
        let key = experiment_key(e);
        seen.insert(key.clone());
        let Some((label, cur, higher_better)) = experiment_metric(e) else {
            continue;
        };
        let Some(base_e) = base_by_key.get(&key) else {
            println!(
                "{key:<34} {:>12} {cur:>12.1} {:>12}  {label} (not in baseline)",
                "-", "-"
            );
            missing += 1;
            continue;
        };
        let Some((_, base_v, _)) = experiment_metric(base_e) else {
            continue;
        };
        // Positive = better, for both metric orientations.
        let change_pct = if base_v.abs() < f64::EPSILON {
            0.0
        } else if higher_better {
            (cur - base_v) / base_v * 100.0
        } else {
            (base_v - cur) / base_v * 100.0
        };
        // Sub-floor experiments (total wall below STRICT_WALL_FLOOR_MICROS
        // in the *current* run) are too noisy to gate — a 35 µs measurement
        // swings far past any sane threshold on a shared machine. They are
        // reported, but never counted as regressions.
        let too_small =
            matches!(e.get("wall_micros"), Some(Json::Num(w)) if *w < STRICT_WALL_FLOOR_MICROS);
        let regressed = change_pct < -threshold && !too_small && !single_core;
        if regressed {
            regressions += 1;
        }
        println!(
            "{key:<34} {base_v:>12.1} {cur:>12.1} {change_pct:>+11.1}%  {label}{}",
            if regressed {
                "  ** REGRESSION **"
            } else if change_pct < -threshold && single_core {
                "  (single-core host, warn only)"
            } else if change_pct < -threshold {
                "  (below strict floor, not gated)"
            } else {
                ""
            }
        );
    }
    // The other direction: baseline experiments this run no longer
    // produces. A vanished benchmark is lost coverage, not a clean pass —
    // it counts as a regression so `--strict` catches it.
    let mut vanished: Vec<&String> = base_by_key
        .keys()
        .filter(|key| !seen.contains(*key))
        .collect();
    vanished.sort();
    for key in vanished {
        println!(
            "{key:<34} {:>12} {:>12} {:>12}  ** MISSING FROM CURRENT RUN **",
            "?", "-", "-"
        );
        regressions += 1;
    }
    if regressions > 0 {
        eprintln!("warning: {regressions} experiment(s) regressed beyond {threshold}% or vanished");
    }
    if missing > 0 {
        eprintln!("note: {missing} experiment(s) had no match in the baseline file");
    }
    regressions
}
