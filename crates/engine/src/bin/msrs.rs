//! `msrs` — the command-line frontend of the solver-portfolio engine.
//!
//! ```text
//! msrs gen    --family uniform --count 100 --machines 4 --seed 1 --out corpus.jsonl
//! msrs solve  --input instance.txt            # msrs-text or JSONL, `-` = stdin
//! msrs batch  --input corpus.jsonl --threads 8 --out reports.jsonl
//! msrs bench  --families uniform,zipf --count 20 --machines 4
//! msrs bench  --baseline-out BENCH_3.json     # machine-readable perf baseline
//! ```
//!
//! Instances travel as JSON lines (`{"id":…,"machines":…,"classes":[[…]]}`)
//! or in the `msrs-instance v1` text format of `msrs_core::io`; reports come
//! back as JSON lines. Flag parsing is hand-rolled so the binary stays
//! dependency-free.

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

use msrs_core::{io as text_io, validate};
use msrs_engine::families::FAMILIES;
use msrs_engine::json::Json;
use msrs_engine::{
    family, family_names, jsonl, Engine, EngineConfig, SolveReport, SolveRequest, SolverKind,
    DEFAULT_CACHE_CAPACITY,
};

const USAGE: &str = "msrs — solver-portfolio engine for Scheduling with Many Shared Resources

USAGE:
    msrs <SUBCOMMAND> [FLAGS]

SUBCOMMANDS:
    gen     Generate a JSONL instance corpus from the named families
    solve   Solve one instance (msrs-text or JSONL; `--input -` reads stdin)
    batch   Solve a JSONL corpus in parallel, emitting JSONL reports
    bench   Compare the portfolio against each single solver on generated corpora
    help    Show this help

COMMON ENGINE FLAGS (solve, batch, bench):
    --threads <N>        Worker threads for the parallel backend (batches,
                         portfolio members; 0 = MSRS_THREADS or all cores)
                                                                 [default: 0]
    --no-baselines       Skip the prior-work baseline solvers
    --deadline-ms <D>    Per-instance wall-clock deadline (opt-in nondeterminism;
                         bypasses the result cache)
    --exact-nodes <N>    Exact-solver node budget
    --no-eptas           Disable the EPTAS portfolio member
    --cache-capacity <N> Canonical-form result-cache capacity  [default: 1024]
    --no-cache           Disable the result cache and intra-batch dedup

GEN FLAGS:
    --family <NAME|all>  uniform|zipf|satellite|photolitho|adversarial|boundary|
                         huge|traffic
    --count <N>          Instances per family                    [default: 10]
    --machines <M>       Machine count                           [default: 4]
    --seed <S>           Base seed                               [default: 1]
    --out <PATH>         Output file (stdout if omitted)

SOLVE FLAGS:
    --input <PATH|->     Instance file (sniffs JSONL vs msrs-text)
    --json               Emit the full JSON report instead of the summary
    --schedule           Also print the schedule in msrs-text format

BATCH FLAGS:
    --input <PATH|->     JSONL corpus
    --out <PATH>         Report JSONL file (stdout if omitted)
    --quiet              Suppress the per-batch summary on stderr

BENCH FLAGS:
    --families <LIST>    Comma-separated family names            [default: all]
    --count <N>          Instances per family                    [default: 10]
    --machines <M>       Machine count                           [default: 4]
    --seed <S>           Base seed                               [default: 1]
    --baseline-out <P>   Instead of the comparison table, run the perf
                         baseline suite (cache on/off batch throughput at
                         threads 1 and 4, exact-solver node throughput) and
                         write it as machine-readable JSON (see BENCH_3.json)
";

/// Engine flags shared by `solve`, `batch`, and `bench`.
const ENGINE_FLAGS: &[&str] = &[
    "--threads",
    "--no-baselines",
    "--no-eptas",
    "--exact-nodes",
    "--deadline-ms",
    "--cache-capacity",
    "--no-cache",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let allowed: &[&str] = match cmd {
        "gen" => &["--family", "--count", "--machines", "--seed", "--out"],
        "solve" => &["--input", "--json", "--schedule"],
        "batch" => &["--input", "--out", "--quiet"],
        "bench" => &[
            "--families",
            "--count",
            "--machines",
            "--seed",
            "--baseline-out",
        ],
        _ => &[],
    };
    let takes_engine_flags = matches!(cmd, "solve" | "batch" | "bench");
    let flags = match Flags::parse(&args[1..], allowed, takes_engine_flags) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "gen" => cmd_gen(&flags),
        "solve" => cmd_solve(&flags),
        "batch" => cmd_batch(&flags),
        "bench" => cmd_bench(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}` (try `msrs help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `--flag value` / `--switch` arguments.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], allowed: &[&str], takes_engine_flags: bool) -> Result<Flags, String> {
        const SWITCHES: &[&str] = &[
            "--no-baselines",
            "--no-eptas",
            "--no-cache",
            "--json",
            "--schedule",
            "--quiet",
        ];
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            if !flag.starts_with("--") {
                return Err(format!("unexpected argument `{flag}`"));
            }
            let known = allowed.contains(&flag.as_str())
                || (takes_engine_flags && ENGINE_FLAGS.contains(&flag.as_str()));
            if !known {
                let mut all: Vec<&str> = allowed.to_vec();
                if takes_engine_flags {
                    all.extend(ENGINE_FLAGS);
                }
                return Err(format!(
                    "unknown flag `{flag}` (accepted here: {})",
                    all.join(", ")
                ));
            }
            if SWITCHES.contains(&flag.as_str()) {
                pairs.push((flag.clone(), None));
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag `{flag}` needs a value"))?;
                pairs.push((flag.clone(), Some(value.clone())));
                i += 2;
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == name)
    }

    fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {name}: `{v}`")),
        }
    }
}

fn engine_from_flags(flags: &Flags) -> Result<Engine, String> {
    let mut cfg = EngineConfig::default();
    cfg.threads = flags.get_num("--threads", cfg.threads)?;
    cfg.run_baselines = !flags.has("--no-baselines");
    cfg.eptas.enabled = !flags.has("--no-eptas");
    cfg.exact.max_nodes = flags.get_num("--exact-nodes", cfg.exact.max_nodes)?;
    // The CLI serves repeated traffic, so the cache defaults ON here (the
    // library default is off unless MSRS_CACHE says otherwise).
    cfg.cache_capacity = if flags.has("--no-cache") {
        0
    } else {
        flags.get_num("--cache-capacity", DEFAULT_CACHE_CAPACITY)?
    };
    if let Some(ms) = flags.get("--deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad --deadline-ms `{ms}`"))?;
        cfg.deadline = Some(Duration::from_millis(ms));
    }
    Ok(Engine::new(cfg))
}

fn read_input(flags: &Flags) -> Result<String, String> {
    match flags.get("--input") {
        None => Err("missing --input (use `-` for stdin)".into()),
        Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(buf)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}")),
    }
}

fn write_output(flags: &Flags, content: &str) -> Result<(), String> {
    match flags.get("--out") {
        None => {
            print!("{content}");
            Ok(())
        }
        Some(path) => std::fs::write(path, content).map_err(|e| format!("writing {path}: {e}")),
    }
}

/// `msrs gen`: emit a JSONL corpus.
fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let which = flags.get("--family").unwrap_or("all");
    let count: u64 = flags.get_num("--count", 10)?;
    let machines: usize = flags.get_num("--machines", 4)?;
    let seed: u64 = flags.get_num("--seed", 1)?;
    if machines == 0 {
        return Err("--machines must be ≥ 1".into());
    }
    let specs: Vec<_> = if which == "all" {
        FAMILIES.iter().collect()
    } else {
        which
            .split(',')
            .map(|name| {
                family(name.trim()).ok_or_else(|| {
                    format!(
                        "unknown family `{name}` (known: {})",
                        family_names().join(", ")
                    )
                })
            })
            .collect::<Result<_, _>>()?
    };
    let mut out = String::new();
    for spec in specs {
        for k in 0..count {
            let inst = (spec.generate)(seed.wrapping_add(k), machines);
            let id = format!("{}-m{}-s{}", spec.name, machines, seed.wrapping_add(k));
            out.push_str(&jsonl::write_instance_line(Some(&id), &inst));
            out.push('\n');
        }
    }
    write_output(flags, &out)
}

/// Sniffs JSONL vs msrs-text and parses a single instance.
fn parse_single_instance(text: &str) -> Result<SolveRequest, String> {
    let first = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .ok_or("empty input")?;
    if first.starts_with('{') {
        let reqs = jsonl::read_corpus(text).map_err(|e| e.to_string())?;
        match <[SolveRequest; 1]>::try_from(reqs) {
            Ok([req]) => Ok(req),
            Err(reqs) => Err(format!(
                "`msrs solve` expects exactly one instance, found {} (use `msrs batch`)",
                reqs.len()
            )),
        }
    } else {
        let inst = text_io::read_instance(text).map_err(|e| e.to_string())?;
        Ok(SolveRequest::new(inst))
    }
}

/// `msrs solve`: one instance, human summary or JSON report.
fn cmd_solve(flags: &Flags) -> Result<(), String> {
    let req = parse_single_instance(&read_input(flags)?)?;
    let engine = engine_from_flags(flags)?;
    let report = engine.solve(&req);
    debug_assert!(validate(&req.instance, &report.schedule).is_ok());
    if flags.has("--json") {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.summary());
        for run in &report.runs {
            println!(
                "  {:>14}  {:>9}  makespan {:>6}  {:>10}",
                run.solver.name(),
                run.status.label(),
                run.makespan.map_or("-".into(), |m| m.to_string()),
                format!("{} µs", run.wall_micros),
            );
        }
    }
    if flags.has("--schedule") {
        print!("{}", text_io::write_schedule(&report.schedule));
    }
    Ok(())
}

/// `msrs batch`: JSONL corpus in, JSONL reports out.
fn cmd_batch(flags: &Flags) -> Result<(), String> {
    let reqs = jsonl::read_corpus(&read_input(flags)?).map_err(|e| e.to_string())?;
    if reqs.is_empty() {
        return Err("corpus contains no instances".into());
    }
    let engine = engine_from_flags(flags)?;
    let reports = engine.solve_batch(&reqs);
    let mut out = String::new();
    for report in &reports {
        out.push_str(&report.to_json().to_string());
        out.push('\n');
    }
    write_output(flags, &out)?;
    if !flags.has("--quiet") {
        let n = reports.len();
        let optimal = reports.iter().filter(|r| r.proven_optimal).count();
        let worst = reports
            .iter()
            .map(SolveReport::ratio_vs_bound)
            .fold(1.0f64, f64::max);
        let mean = reports.iter().map(SolveReport::ratio_vs_bound).sum::<f64>() / n as f64;
        eprintln!(
            "batch: {n} instances, {optimal} proven optimal, \
             ratio vs bound mean {mean:.4} worst {worst:.4}"
        );
        let stats = engine.cache_stats();
        if stats.capacity > 0 {
            eprintln!(
                "cache: {} hits, {} misses, {} evictions, {} entries (capacity {})",
                stats.hits, stats.misses, stats.evictions, stats.entries, stats.capacity
            );
        }
    }
    Ok(())
}

/// `msrs bench`: portfolio vs every single solver over generated corpora,
/// or (with `--baseline-out`) the machine-readable perf-baseline suite.
fn cmd_bench(flags: &Flags) -> Result<(), String> {
    if let Some(path) = flags.get("--baseline-out") {
        return cmd_bench_baseline(flags, path);
    }
    let which = flags.get("--families").unwrap_or("all");
    let count: u64 = flags.get_num("--count", 10)?;
    let machines: usize = flags.get_num("--machines", 4)?;
    let seed: u64 = flags.get_num("--seed", 1)?;
    let engine = engine_from_flags(flags)?;
    let specs: Vec<_> = if which == "all" {
        FAMILIES.iter().collect()
    } else {
        which
            .split(',')
            .map(|name| family(name.trim()).ok_or_else(|| format!("unknown family `{name}`")))
            .collect::<Result<_, _>>()?
    };
    println!(
        "{:<12} {:>6} | {:>14} {:>9} {:>9} | portfolio vs single-solver mean ratio",
        "family", "n", "solver", "mean", "worst"
    );
    for spec in specs {
        let reqs: Vec<SolveRequest> = (0..count)
            .map(|k| {
                SolveRequest::with_id(
                    format!("{}-{k}", spec.name),
                    (spec.generate)(seed.wrapping_add(k), machines),
                )
            })
            .collect();
        let start = std::time::Instant::now();
        let reports = engine.solve_batch(&reqs);
        let elapsed = start.elapsed();
        let mean =
            reports.iter().map(SolveReport::ratio_vs_bound).sum::<f64>() / reports.len() as f64;
        let worst = reports
            .iter()
            .map(SolveReport::ratio_vs_bound)
            .fold(1.0f64, f64::max);
        println!(
            "{:<12} {:>6} | {:>14} {:>9.4} {:>9.4} | engine ({:?} total)",
            spec.name,
            reports.len(),
            "portfolio",
            mean,
            worst,
            elapsed,
        );
        // Single-solver comparison rows (certifying + baseline members).
        for kind in [
            SolverKind::FiveThirds,
            SolverKind::ThreeHalves,
            SolverKind::HebrardGreedy,
            SolverKind::ListScheduler,
            SolverKind::MergedLpt,
        ] {
            let mut mean = 0.0f64;
            let mut worst = 1.0f64;
            for req in &reqs {
                let result = match kind {
                    SolverKind::FiveThirds => msrs_approx::five_thirds(&req.instance),
                    SolverKind::ThreeHalves => msrs_approx::three_halves(&req.instance),
                    SolverKind::HebrardGreedy => {
                        msrs_approx::baselines::hebrard_greedy(&req.instance)
                    }
                    SolverKind::ListScheduler => {
                        msrs_approx::baselines::list_scheduler(&req.instance)
                    }
                    SolverKind::MergedLpt => msrs_approx::baselines::merged_lpt(&req.instance),
                    SolverKind::Exact | SolverKind::Eptas => {
                        unreachable!("not in the single-solver comparison row set")
                    }
                };
                let ratio = result.ratio_vs_bound(&req.instance);
                mean += ratio;
                worst = worst.max(ratio);
            }
            mean /= reqs.len() as f64;
            println!(
                "{:<12} {:>6} | {:>14} {:>9.4} {:>9.4} |",
                "",
                "",
                kind.name(),
                mean,
                worst
            );
        }
    }
    Ok(())
}

/// The perf-baseline suite behind `msrs bench --baseline-out` (committed as
/// `BENCH_3.json`): machine-readable wall times and node counts that later
/// PRs diff against.
///
/// * `traffic_batch` — a 1000-instance, 90%-duplicate `traffic` corpus
///   solved with the cache off and on, at 1 and 4 worker threads: the
///   cache/dedup throughput win.
/// * `exact_*` — exact branch-and-bound workloads (the E9 gap proofs to
///   completion, plus a budget-capped sweep of the hard parity-gap
///   partition instance) at 1 search thread: node counts and node
///   throughput of the allocation-free hot loop, with and without the
///   symmetry-dominance rule.
fn cmd_bench_baseline(flags: &Flags, path: &str) -> Result<(), String> {
    use msrs_exact::{solve_configured, BoundConfig, SolveLimits, SolveOutcome};

    // The suite pins its own thread counts, cache capacities, and solver
    // configuration (that is what makes baselines comparable across PRs);
    // reject flags it would otherwise silently ignore.
    let ignored: Vec<&str> = [
        "--families",
        "--seed",
        "--threads",
        "--no-baselines",
        "--no-eptas",
        "--exact-nodes",
        "--deadline-ms",
        "--cache-capacity",
        "--no-cache",
    ]
    .into_iter()
    .filter(|f| flags.has(f))
    .collect();
    if !ignored.is_empty() {
        return Err(format!(
            "--baseline-out pins its own configuration; remove: {}",
            ignored.join(", ")
        ));
    }

    let machines: usize = flags.get_num("--machines", 4)?;
    let count: u64 = flags.get_num("--count", 1000)?;
    let mut experiments: Vec<Json> = Vec::new();

    // -- Traffic batch: cache off vs on, threads 1 and 4. ------------------
    let reqs: Vec<SolveRequest> = (0..count)
        .map(|seed| {
            SolveRequest::with_id(
                format!("traffic-{seed}"),
                msrs_gen::traffic(seed, machines, 10),
            )
        })
        .collect();
    for threads in [1usize, 4] {
        for cache_capacity in [0usize, DEFAULT_CACHE_CAPACITY] {
            let engine = Engine::new(EngineConfig {
                threads,
                cache_capacity,
                ..EngineConfig::default()
            });
            // Two passes: `traffic_batch` lands on a cold cache (its win is
            // intra-batch dedup — Amdahl-capped at 10× by the 100 distinct
            // forms that still need solving), `traffic_batch_warm` replays
            // the corpus against the primed cache (the steady state of
            // repeated traffic — every request is a hit).
            for pass in ["traffic_batch", "traffic_batch_warm"] {
                let before = engine.cache_stats();
                let start = std::time::Instant::now();
                let reports = engine.solve_batch(&reqs);
                let wall = start.elapsed().as_micros() as i128;
                let stats = engine.cache_stats();
                let (hits, misses) = (stats.hits - before.hits, stats.misses - before.misses);
                eprintln!(
                    "{pass} threads={threads} cache={cache_capacity}: {} instances in {wall} µs \
                     ({hits} hits, {misses} misses)",
                    reports.len(),
                );
                experiments.push(Json::Obj(vec![
                    ("name".into(), Json::Str(pass.into())),
                    ("threads".into(), Json::Num(threads as i128)),
                    ("cache_capacity".into(), Json::Num(cache_capacity as i128)),
                    ("instances".into(), Json::Num(reports.len() as i128)),
                    ("wall_micros".into(), Json::Num(wall)),
                    ("cache_hits".into(), Json::Num(hits as i128)),
                    ("cache_misses".into(), Json::Num(misses as i128)),
                ]));
            }
        }
    }

    // -- Exact-solver node throughput (single search thread). --------------
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .map_err(|e| format!("pool: {e}"))?;
    let gap7: Vec<Vec<u64>> = vec![
        vec![4],
        vec![4],
        vec![4],
        vec![4],
        vec![4],
        vec![3],
        vec![3],
    ];
    let gap7_inst =
        msrs_core::Instance::from_classes(2, &gap7).map_err(|e| format!("gap7: {e}"))?;
    let parity21 = msrs_gen::parity_gap_partition(21);
    let workloads: [(&str, &msrs_core::Instance, u64); 3] = [
        ("exact_e9_gap7", &gap7_inst, 200_000_000),
        ("exact_parity21_capped", &parity21, 2_000_000),
        ("exact_parity21_capped_nosym", &parity21, 2_000_000),
    ];
    for (name, inst, max_nodes) in workloads {
        let bounds = BoundConfig {
            symmetry: !name.ends_with("_nosym"),
            ..BoundConfig::default()
        };
        let start = std::time::Instant::now();
        let outcome =
            one.install(|| solve_configured(inst, SolveLimits { max_nodes }, bounds, None));
        let wall = start.elapsed().as_micros() as i128;
        let (status, nodes) = match outcome {
            SolveOutcome::Optimal(r) => ("optimal", r.nodes),
            SolveOutcome::Exhausted { nodes } => ("exhausted", nodes),
            SolveOutcome::Cancelled { nodes } => ("cancelled", nodes),
        };
        let nps = nodes as f64 / (wall.max(1) as f64 / 1e6);
        eprintln!("{name}: {status}, {nodes} nodes in {wall} µs ({nps:.0} nodes/s)");
        experiments.push(Json::Obj(vec![
            ("name".into(), Json::Str(name.into())),
            ("threads".into(), Json::Num(1)),
            ("status".into(), Json::Str(status.into())),
            ("nodes".into(), Json::Num(nodes as i128)),
            ("wall_micros".into(), Json::Num(wall)),
            ("nodes_per_sec".into(), Json::Num(nps as i128)),
        ]));
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("BENCH_3".into())),
        ("machines".into(), Json::Num(machines as i128)),
        ("experiments".into(), Json::Arr(experiments)),
    ]);
    std::fs::write(path, format!("{doc}\n")).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("baseline written to {path}");
    Ok(())
}
