//! `msrs` — the command-line frontend of the solver-portfolio engine.
//!
//! ```text
//! msrs gen    --family uniform --count 100 --machines 4 --seed 1 --out corpus.jsonl
//! msrs solve  --input instance.txt            # msrs-text or JSONL, `-` = stdin
//! msrs batch  --input corpus.jsonl --threads 8 --out reports.jsonl
//! msrs bench  --families uniform,zipf --count 20 --machines 4
//! ```
//!
//! Instances travel as JSON lines (`{"id":…,"machines":…,"classes":[[…]]}`)
//! or in the `msrs-instance v1` text format of `msrs_core::io`; reports come
//! back as JSON lines. Flag parsing is hand-rolled so the binary stays
//! dependency-free.

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

use msrs_core::{io as text_io, validate};
use msrs_engine::families::FAMILIES;
use msrs_engine::{
    family, family_names, jsonl, Engine, EngineConfig, SolveReport, SolveRequest, SolverKind,
};

const USAGE: &str = "msrs — solver-portfolio engine for Scheduling with Many Shared Resources

USAGE:
    msrs <SUBCOMMAND> [FLAGS]

SUBCOMMANDS:
    gen     Generate a JSONL instance corpus from the named families
    solve   Solve one instance (msrs-text or JSONL; `--input -` reads stdin)
    batch   Solve a JSONL corpus in parallel, emitting JSONL reports
    bench   Compare the portfolio against each single solver on generated corpora
    help    Show this help

COMMON ENGINE FLAGS (solve, batch, bench):
    --threads <N>        Worker threads for the parallel backend (batches,
                         portfolio members; 0 = MSRS_THREADS or all cores)
                                                                 [default: 0]
    --no-baselines       Skip the prior-work baseline solvers
    --deadline-ms <D>    Per-instance wall-clock deadline (opt-in nondeterminism)
    --exact-nodes <N>    Exact-solver node budget
    --no-eptas           Disable the EPTAS portfolio member

GEN FLAGS:
    --family <NAME|all>  uniform|zipf|satellite|photolitho|adversarial|boundary|huge
    --count <N>          Instances per family                    [default: 10]
    --machines <M>       Machine count                           [default: 4]
    --seed <S>           Base seed                               [default: 1]
    --out <PATH>         Output file (stdout if omitted)

SOLVE FLAGS:
    --input <PATH|->     Instance file (sniffs JSONL vs msrs-text)
    --json               Emit the full JSON report instead of the summary
    --schedule           Also print the schedule in msrs-text format

BATCH FLAGS:
    --input <PATH|->     JSONL corpus
    --out <PATH>         Report JSONL file (stdout if omitted)
    --quiet              Suppress the per-batch summary on stderr

BENCH FLAGS:
    --families <LIST>    Comma-separated family names            [default: all]
    --count <N>          Instances per family                    [default: 10]
    --machines <M>       Machine count                           [default: 4]
    --seed <S>           Base seed                               [default: 1]
";

/// Engine flags shared by `solve`, `batch`, and `bench`.
const ENGINE_FLAGS: &[&str] = &[
    "--threads",
    "--no-baselines",
    "--no-eptas",
    "--exact-nodes",
    "--deadline-ms",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let allowed: &[&str] = match cmd {
        "gen" => &["--family", "--count", "--machines", "--seed", "--out"],
        "solve" => &["--input", "--json", "--schedule"],
        "batch" => &["--input", "--out", "--quiet"],
        "bench" => &["--families", "--count", "--machines", "--seed"],
        _ => &[],
    };
    let takes_engine_flags = matches!(cmd, "solve" | "batch" | "bench");
    let flags = match Flags::parse(&args[1..], allowed, takes_engine_flags) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "gen" => cmd_gen(&flags),
        "solve" => cmd_solve(&flags),
        "batch" => cmd_batch(&flags),
        "bench" => cmd_bench(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}` (try `msrs help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `--flag value` / `--switch` arguments.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], allowed: &[&str], takes_engine_flags: bool) -> Result<Flags, String> {
        const SWITCHES: &[&str] = &[
            "--no-baselines",
            "--no-eptas",
            "--json",
            "--schedule",
            "--quiet",
        ];
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            if !flag.starts_with("--") {
                return Err(format!("unexpected argument `{flag}`"));
            }
            let known = allowed.contains(&flag.as_str())
                || (takes_engine_flags && ENGINE_FLAGS.contains(&flag.as_str()));
            if !known {
                let mut all: Vec<&str> = allowed.to_vec();
                if takes_engine_flags {
                    all.extend(ENGINE_FLAGS);
                }
                return Err(format!(
                    "unknown flag `{flag}` (accepted here: {})",
                    all.join(", ")
                ));
            }
            if SWITCHES.contains(&flag.as_str()) {
                pairs.push((flag.clone(), None));
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag `{flag}` needs a value"))?;
                pairs.push((flag.clone(), Some(value.clone())));
                i += 2;
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == name)
    }

    fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {name}: `{v}`")),
        }
    }
}

fn engine_from_flags(flags: &Flags) -> Result<Engine, String> {
    let mut cfg = EngineConfig::default();
    cfg.threads = flags.get_num("--threads", cfg.threads)?;
    cfg.run_baselines = !flags.has("--no-baselines");
    cfg.eptas.enabled = !flags.has("--no-eptas");
    cfg.exact.max_nodes = flags.get_num("--exact-nodes", cfg.exact.max_nodes)?;
    if let Some(ms) = flags.get("--deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad --deadline-ms `{ms}`"))?;
        cfg.deadline = Some(Duration::from_millis(ms));
    }
    Ok(Engine::new(cfg))
}

fn read_input(flags: &Flags) -> Result<String, String> {
    match flags.get("--input") {
        None => Err("missing --input (use `-` for stdin)".into()),
        Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(buf)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}")),
    }
}

fn write_output(flags: &Flags, content: &str) -> Result<(), String> {
    match flags.get("--out") {
        None => {
            print!("{content}");
            Ok(())
        }
        Some(path) => std::fs::write(path, content).map_err(|e| format!("writing {path}: {e}")),
    }
}

/// `msrs gen`: emit a JSONL corpus.
fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let which = flags.get("--family").unwrap_or("all");
    let count: u64 = flags.get_num("--count", 10)?;
    let machines: usize = flags.get_num("--machines", 4)?;
    let seed: u64 = flags.get_num("--seed", 1)?;
    if machines == 0 {
        return Err("--machines must be ≥ 1".into());
    }
    let specs: Vec<_> = if which == "all" {
        FAMILIES.iter().collect()
    } else {
        which
            .split(',')
            .map(|name| {
                family(name.trim()).ok_or_else(|| {
                    format!(
                        "unknown family `{name}` (known: {})",
                        family_names().join(", ")
                    )
                })
            })
            .collect::<Result<_, _>>()?
    };
    let mut out = String::new();
    for spec in specs {
        for k in 0..count {
            let inst = (spec.generate)(seed.wrapping_add(k), machines);
            let id = format!("{}-m{}-s{}", spec.name, machines, seed.wrapping_add(k));
            out.push_str(&jsonl::write_instance_line(Some(&id), &inst));
            out.push('\n');
        }
    }
    write_output(flags, &out)
}

/// Sniffs JSONL vs msrs-text and parses a single instance.
fn parse_single_instance(text: &str) -> Result<SolveRequest, String> {
    let first = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .ok_or("empty input")?;
    if first.starts_with('{') {
        let reqs = jsonl::read_corpus(text).map_err(|e| e.to_string())?;
        match <[SolveRequest; 1]>::try_from(reqs) {
            Ok([req]) => Ok(req),
            Err(reqs) => Err(format!(
                "`msrs solve` expects exactly one instance, found {} (use `msrs batch`)",
                reqs.len()
            )),
        }
    } else {
        let inst = text_io::read_instance(text).map_err(|e| e.to_string())?;
        Ok(SolveRequest::new(inst))
    }
}

/// `msrs solve`: one instance, human summary or JSON report.
fn cmd_solve(flags: &Flags) -> Result<(), String> {
    let req = parse_single_instance(&read_input(flags)?)?;
    let engine = engine_from_flags(flags)?;
    let report = engine.solve(&req);
    debug_assert!(validate(&req.instance, &report.schedule).is_ok());
    if flags.has("--json") {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.summary());
        for run in &report.runs {
            println!(
                "  {:>14}  {:>9}  makespan {:>6}  {:>10}",
                run.solver.name(),
                run.status.label(),
                run.makespan.map_or("-".into(), |m| m.to_string()),
                format!("{} µs", run.wall_micros),
            );
        }
    }
    if flags.has("--schedule") {
        print!("{}", text_io::write_schedule(&report.schedule));
    }
    Ok(())
}

/// `msrs batch`: JSONL corpus in, JSONL reports out.
fn cmd_batch(flags: &Flags) -> Result<(), String> {
    let reqs = jsonl::read_corpus(&read_input(flags)?).map_err(|e| e.to_string())?;
    if reqs.is_empty() {
        return Err("corpus contains no instances".into());
    }
    let engine = engine_from_flags(flags)?;
    let reports = engine.solve_batch(&reqs);
    let mut out = String::new();
    for report in &reports {
        out.push_str(&report.to_json().to_string());
        out.push('\n');
    }
    write_output(flags, &out)?;
    if !flags.has("--quiet") {
        let n = reports.len();
        let optimal = reports.iter().filter(|r| r.proven_optimal).count();
        let worst = reports
            .iter()
            .map(SolveReport::ratio_vs_bound)
            .fold(1.0f64, f64::max);
        let mean = reports.iter().map(SolveReport::ratio_vs_bound).sum::<f64>() / n as f64;
        eprintln!(
            "batch: {n} instances, {optimal} proven optimal, \
             ratio vs bound mean {mean:.4} worst {worst:.4}"
        );
    }
    Ok(())
}

/// `msrs bench`: portfolio vs every single solver over generated corpora.
fn cmd_bench(flags: &Flags) -> Result<(), String> {
    let which = flags.get("--families").unwrap_or("all");
    let count: u64 = flags.get_num("--count", 10)?;
    let machines: usize = flags.get_num("--machines", 4)?;
    let seed: u64 = flags.get_num("--seed", 1)?;
    let engine = engine_from_flags(flags)?;
    let specs: Vec<_> = if which == "all" {
        FAMILIES.iter().collect()
    } else {
        which
            .split(',')
            .map(|name| family(name.trim()).ok_or_else(|| format!("unknown family `{name}`")))
            .collect::<Result<_, _>>()?
    };
    println!(
        "{:<12} {:>6} | {:>14} {:>9} {:>9} | portfolio vs single-solver mean ratio",
        "family", "n", "solver", "mean", "worst"
    );
    for spec in specs {
        let reqs: Vec<SolveRequest> = (0..count)
            .map(|k| {
                SolveRequest::with_id(
                    format!("{}-{k}", spec.name),
                    (spec.generate)(seed.wrapping_add(k), machines),
                )
            })
            .collect();
        let start = std::time::Instant::now();
        let reports = engine.solve_batch(&reqs);
        let elapsed = start.elapsed();
        let mean =
            reports.iter().map(SolveReport::ratio_vs_bound).sum::<f64>() / reports.len() as f64;
        let worst = reports
            .iter()
            .map(SolveReport::ratio_vs_bound)
            .fold(1.0f64, f64::max);
        println!(
            "{:<12} {:>6} | {:>14} {:>9.4} {:>9.4} | engine ({:?} total)",
            spec.name,
            reports.len(),
            "portfolio",
            mean,
            worst,
            elapsed,
        );
        // Single-solver comparison rows (certifying + baseline members).
        for kind in [
            SolverKind::FiveThirds,
            SolverKind::ThreeHalves,
            SolverKind::HebrardGreedy,
            SolverKind::ListScheduler,
            SolverKind::MergedLpt,
        ] {
            let mut mean = 0.0f64;
            let mut worst = 1.0f64;
            for req in &reqs {
                let result = match kind {
                    SolverKind::FiveThirds => msrs_approx::five_thirds(&req.instance),
                    SolverKind::ThreeHalves => msrs_approx::three_halves(&req.instance),
                    SolverKind::HebrardGreedy => {
                        msrs_approx::baselines::hebrard_greedy(&req.instance)
                    }
                    SolverKind::ListScheduler => {
                        msrs_approx::baselines::list_scheduler(&req.instance)
                    }
                    SolverKind::MergedLpt => msrs_approx::baselines::merged_lpt(&req.instance),
                    SolverKind::Exact | SolverKind::Eptas => {
                        unreachable!("not in the single-solver comparison row set")
                    }
                };
                let ratio = result.ratio_vs_bound(&req.instance);
                mean += ratio;
                worst = worst.max(ratio);
            }
            mean /= reqs.len() as f64;
            println!(
                "{:<12} {:>6} | {:>14} {:>9.4} {:>9.4} |",
                "",
                "",
                kind.name(),
                mean,
                worst
            );
        }
    }
    Ok(())
}
